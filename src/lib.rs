//! # spasm — facade crate for the `spasm-rs` workspace
//!
//! A Rust reproduction of *"Abstracting Network Characteristics and
//! Locality Properties of Parallel Systems"* (Sivasubramaniam, Singla,
//! Ramachandran & Venkateswaran, HPCA-1, 1995): an execution-driven
//! simulator for CC-NUMA shared-memory machines, the LogP and
//! ideal-coherent-cache (CLogP) abstractions of them, the paper's
//! five-application suite, and the harness that regenerates every figure
//! of its evaluation.
//!
//! This crate re-exports the workspace's public API under one roof:
//!
//! * [`desim`] — deterministic discrete-event kernel and coroutine
//!   processes;
//! * [`exec`] — deterministic bounded worker pool that parallelizes
//!   independent experiments with order-preserving results;
//! * [`journal`] — durable write-ahead journal (CRC64-framed, atomic
//!   commits) behind crash-safe sweep checkpoint/resume;
//! * [`topology`] — fully connected / hypercube / mesh networks and
//!   routing;
//! * [`net`] — the link-level circuit-switched wormhole network;
//! * [`logp`] — the LogP L/g parameters and gap enforcement;
//! * [`cache`] — set-associative caches, Berkeley protocol, directory;
//! * [`check`] — online invariant checkers (coherence, timing, network)
//!   that run inside the models when enabled and cost nothing when off;
//! * [`machine`] — the four machine characterizations and the
//!   execution-driven engine;
//! * [`apps`] — EP, FFT, IS, CG, CHOLESKY;
//! * [`core`] — experiments, SPASM overhead separation, figure harness;
//! * [`scenario`] — declarative `.scn` workloads compiled onto the
//!   figure harness, with streaming interval telemetry.
//!
//! # Quickstart
//!
//! ```
//! use spasm::core::{Experiment, Machine, Net};
//! use spasm::apps::{AppId, SizeClass};
//!
//! let metrics = Experiment {
//!     app: AppId::Is,
//!     size: SizeClass::Test,
//!     net: Net::Mesh,
//!     machine: Machine::Target,
//!     procs: 4,
//!     seed: 42,
//! }
//! .run()
//! .unwrap();
//! println!(
//!     "exec {:.1}us, latency {:.1}us, contention {:.1}us",
//!     metrics.exec_us, metrics.latency_us, metrics.contention_us
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spasm_apps as apps;
pub use spasm_cache as cache;
pub use spasm_check as check;
pub use spasm_core as core;
pub use spasm_desim as desim;
pub use spasm_exec as exec;
pub use spasm_journal as journal;
pub use spasm_logp as logp;
pub use spasm_machine as machine;
pub use spasm_net as net;
pub use spasm_scenario as scenario;
pub use spasm_topology as topology;
