//! Property-based certification of the snapshot machinery the optimistic
//! engine's rollback path stands on: `save`/`restore` on the coherence
//! state machine (per-node caches plus the directory).
//!
//! Three laws are checked over testkit-generated mutation sequences, under
//! both coherence protocols:
//!
//! 1. `restore(save(s)) == s` — restoring reverts *every* component, no
//!    matter what ran in between;
//! 2. rollback past K events then replaying the same K events
//!    reconstructs the identical state (hash *and* per-access outcomes) —
//!    the exact contract the optimistic engine's replay relies on;
//! 3. an access perturbs only the components its outcome names — no
//!    hidden coupling that a snapshot could miss.
//!
//! Failures shrink (testkit halves and drops ops from the generated
//! sequence) and every comparison goes through [`first_divergence`], so a
//! shrunk counterexample names the first diverging field — `cache[n]` or
//! `directory` — rather than an opaque whole-state hash mismatch.

use spasm_cache::{AccessKind, CacheConfig, CoherenceController, Outcome, ProtocolKind, Supplier};
use spasm_testkit::{check_with, gens, prop_assert, prop_assert_eq, Config, Gen};

/// Nodes in the generated machine.
const NODES: usize = 4;
/// Block-address universe: small enough that generated sequences collide
/// in sets and evict (the cache below holds 8 lines), large enough to
/// exercise the directory's growth path.
const BLOCKS: u64 = 24;

/// A deliberately tiny cache — 4 sets × 2 ways — so short generated
/// sequences reach the interesting transitions: evictions, writebacks,
/// cache-to-cache supply, invalidation storms.
fn tiny_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 256,
        assoc: 2,
        block_bytes: 32,
    }
}

/// One generated access: (node, block, write?).
type RawOp = (u32, u64, u32);

fn decode(op: RawOp) -> (usize, u64, AccessKind) {
    let (node, block, kind) = op;
    let kind = if kind == 0 {
        AccessKind::Read
    } else {
        AccessKind::Write
    };
    (node as usize % NODES, block % BLOCKS, kind)
}

fn protocol_of(flag: u32) -> ProtocolKind {
    if flag == 0 {
        ProtocolKind::Berkeley
    } else {
        ProtocolKind::WriteBackOnRead
    }
}

/// A mutation sequence plus a protocol selector.
fn sequences() -> Gen<(Vec<RawOp>, u32)> {
    let op = gens::tuple3(
        gens::u32s(0..NODES as u32),
        gens::u64s(0..BLOCKS),
        gens::u32s(0..2),
    );
    gens::tuple2(gens::vecs(op, 1..48), gens::u32s(0..2))
}

fn apply(c: &mut CoherenceController, ops: &[RawOp]) -> Vec<Outcome> {
    ops.iter()
        .map(|&op| {
            let (node, block, kind) = decode(op);
            c.access(node, block, kind)
        })
        .collect()
}

/// Per-component digests: one per cache, one for the directory. Named so
/// divergence reports localize to a field.
fn component_hashes(c: &CoherenceController) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = (0..c.nodes())
        .map(|n| (format!("cache[{n}]"), c.cache(n).state_hash()))
        .collect();
    v.push(("directory".to_string(), c.directory().state_hash()));
    v
}

/// The first component whose digest differs between two states, if any.
fn first_divergence(a: &[(String, u64)], b: &[(String, u64)]) -> Option<String> {
    a.iter()
        .zip(b)
        .find(|((_, ha), (_, hb))| ha != hb)
        .map(|((name, _), _)| name.clone())
}

/// Law 1: restore reverts every component, regardless of what ran between
/// save and restore. The sequence is split in half: the prefix builds an
/// arbitrary warm state, the suffix is the speculation to be undone.
#[test]
fn restore_reverts_every_component() {
    check_with(
        Config::default(),
        "restore_reverts_every_component",
        &sequences(),
        |(ops, proto)| {
            let mut c =
                CoherenceController::with_protocol(NODES, tiny_cache(), protocol_of(*proto));
            let split = ops.len() / 2;
            apply(&mut c, &ops[..split]);
            let snap = c.save();
            let at_save = component_hashes(&c);
            let whole = c.state_hash();
            apply(&mut c, &ops[split..]);
            c.restore(&snap);
            prop_assert_eq!(
                first_divergence(&component_hashes(&c), &at_save),
                None,
                "restore failed to revert this component"
            );
            prop_assert_eq!(c.state_hash(), whole, "aggregate hash diverged");
            Ok(())
        },
    );
}

/// Law 2: the optimistic engine's replay contract. Restoring a snapshot
/// taken K events back and re-applying the identical K events must land
/// on the identical state *and* reproduce the identical outcomes — replay
/// is not merely convergent, it is exact.
#[test]
fn rollback_replay_reconstructs_state_exactly() {
    check_with(
        Config::default(),
        "rollback_replay_reconstructs_state_exactly",
        &sequences(),
        |(ops, proto)| {
            let proto = protocol_of(*proto);
            // Straight-line reference run.
            let mut reference = CoherenceController::with_protocol(NODES, tiny_cache(), proto);
            let ref_outcomes = apply(&mut reference, ops);
            let ref_components = component_hashes(&reference);

            // Rolled-back run: save K events before the end, run to the
            // end (the doomed speculation), roll back, replay.
            let k = ops.len() - ops.len() / 3;
            let mut c = CoherenceController::with_protocol(NODES, tiny_cache(), proto);
            let prefix_outcomes = apply(&mut c, &ops[..k]);
            let snap = c.save();
            apply(&mut c, &ops[k..]);
            c.restore(&snap);
            let replay_outcomes = apply(&mut c, &ops[k..]);

            prop_assert_eq!(
                first_divergence(&component_hashes(&c), &ref_components),
                None,
                "replay after rollback diverged from the straight-line run"
            );
            let mut rolled = prefix_outcomes;
            rolled.extend(replay_outcomes);
            prop_assert_eq!(&rolled, &ref_outcomes, "replayed outcomes diverged");
            Ok(())
        },
    );
}

/// Law 3: an access perturbs only the components its outcome names — the
/// accessor's cache, the caches the outcome says were invalidated or
/// supplied/downgraded from, and the directory. Anything outside that set
/// must hash identically before and after. This is what makes component
/// snapshots trustworthy: there is no hidden cross-component coupling.
#[test]
fn access_perturbs_only_named_components() {
    let gen = gens::tuple2(
        sequences(),
        gens::tuple3(
            gens::u32s(0..NODES as u32),
            gens::u64s(0..BLOCKS),
            gens::u32s(0..2),
        ),
    );
    check_with(
        Config::default(),
        "access_perturbs_only_named_components",
        &gen,
        |((ops, proto), probe)| {
            let mut c =
                CoherenceController::with_protocol(NODES, tiny_cache(), protocol_of(*proto));
            apply(&mut c, ops);
            let before = component_hashes(&c);
            let (node, block, kind) = decode(*probe);
            let outcome = c.access(node, block, kind);
            let after = component_hashes(&c);

            // Upper bound on what this outcome is allowed to touch.
            let mut allowed = vec![format!("cache[{node}]"), "directory".to_string()];
            match &outcome {
                Outcome::Hit => {}
                Outcome::UpgradeHit { invalidated } => {
                    allowed.extend(invalidated.iter().map(|n| format!("cache[{n}]")));
                }
                Outcome::Miss {
                    supplier,
                    invalidated,
                    downgrade_writeback,
                    ..
                } => {
                    allowed.extend(invalidated.iter().map(|n| format!("cache[{n}]")));
                    if let Supplier::Owner(o) = supplier {
                        allowed.push(format!("cache[{o}]"));
                    }
                    if let Some(wb) = downgrade_writeback {
                        allowed.push(format!("cache[{}]", wb.from));
                    }
                }
            }
            for ((name, ha), (_, hb)) in before.iter().zip(&after) {
                if ha != hb {
                    prop_assert!(
                        allowed.contains(name),
                        "{name} changed but outcome {outcome:?} does not name it"
                    );
                }
            }
            // The accessor's own cache always records the access (at
            // minimum its hit/miss counters move).
            prop_assert!(
                before[node].1 != after[node].1,
                "cache[{node}] made an access yet its state hash is unchanged"
            );
            Ok(())
        },
    );
}
