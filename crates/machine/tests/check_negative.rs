//! Fault-negative proof for the invariant layer: each injected fault
//! species, applied with probability 1 under [`CheckMode::Strict`],
//! must surface as a *typed* [`RunError::Check`] naming its own
//! invariant — never a panic, never a silently wrong run. Lenient mode
//! ([`CheckMode::On`]) must tolerate the same injections, because a
//! faulted-but-internally-consistent run is exactly what it certifies.

use spasm_machine::{
    CheckMode, Engine, FaultPlan, MachineConfig, MachineKind, MemCtx, Pred, ProcBody, RunError,
    SetupCtx,
};
use spasm_topology::Topology;

/// Explicit message passing: one send, one receive. The only network
/// traffic is the message itself, so message-path faults (delay, dup)
/// hit exactly one checker hook.
fn msgpass_workload() -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::full(2);
    let setup = SetupCtx::new(2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(|_, ctx| {
            MemCtx::new(ctx).send(1, 8, 42, 1234);
        }),
        Box::new(|_, ctx| {
            assert_eq!(MemCtx::new(ctx).recv(42), 1234);
        }),
    ];
    (topo, setup, bodies)
}

/// Shared-memory traffic: a flag handshake over remote blocks, so
/// access-path faults (retries) have transactions to NACK.
fn shmem_workload() -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let counter = setup.alloc(0, 1);
    let flag = setup.alloc(1, 1);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.wait_until(flag, Pred::Eq(1));
            assert_eq!(mem.read(counter), 7);
        }),
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.write(counter, 7);
            mem.write(flag, 1);
        }),
    ];
    (topo, setup, bodies)
}

fn run(
    kind: MachineKind,
    mode: CheckMode,
    plan: FaultPlan,
    workload: fn() -> (Topology, SetupCtx, Vec<ProcBody>),
) -> Result<(), RunError> {
    let (topo, setup, bodies) = workload();
    let config = MachineConfig {
        check: mode,
        faults: Some(plan),
        ..MachineConfig::default()
    };
    Engine::with_config(kind, &topo, config, setup, bodies)
        .run()
        .map(|_| ())
}

/// Runs under strict checking and demands a `CheckViolation` for the
/// named invariant — as a value, not a panic.
fn expect_violation(
    kind: MachineKind,
    plan: FaultPlan,
    workload: fn() -> (Topology, SetupCtx, Vec<ProcBody>),
    invariant: &str,
) {
    match run(kind, CheckMode::Strict, plan, workload) {
        Err(RunError::Check(v)) => {
            assert_eq!(v.invariant, invariant, "{kind}: wrong invariant fired: {v}")
        }
        other => panic!("{kind}: expected a {invariant} violation, got {other:?}"),
    }
}

#[test]
fn duplicated_message_trips_message_conservation() {
    let plan = FaultPlan {
        dup_prob: 1.0,
        ..FaultPlan::quiet(1)
    };
    expect_violation(
        MachineKind::Target,
        plan,
        msgpass_workload,
        "message-conservation",
    );
}

#[test]
fn delayed_message_trips_delivery_conformance() {
    let plan = FaultPlan {
        delay_prob: 1.0,
        max_delay_ns: 500,
        ..FaultPlan::quiet(2)
    };
    expect_violation(
        MachineKind::Target,
        plan,
        msgpass_workload,
        "delivery-conformance",
    );
}

#[test]
fn dropped_message_trips_message_conservation() {
    let plan = FaultPlan {
        loss_prob: 1.0,
        retransmit_ns: 1_000,
        max_retransmits: 1,
        ..FaultPlan::quiet(6)
    };
    expect_violation(
        MachineKind::Target,
        plan,
        msgpass_workload,
        "message-conservation",
    );
}

#[test]
fn stalled_processor_trips_dispatch_conformance() {
    let plan = FaultPlan {
        stall_prob: 1.0,
        stall_ns: 1_000,
        ..FaultPlan::quiet(3)
    };
    for kind in [MachineKind::Pram, MachineKind::Target, MachineKind::CLogP] {
        expect_violation(kind, plan, shmem_workload, "dispatch-conformance");
    }
}

#[test]
fn forced_retry_trips_access_conformance() {
    let plan = FaultPlan {
        retry_prob: 1.0,
        max_retries: 1,
        ..FaultPlan::quiet(4)
    };
    for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
        expect_violation(kind, plan, shmem_workload, "access-conformance");
    }
}

/// A schedule that reliably mis-speculates under the optimistic engine:
/// two processors race bare `fetch_add`s on one word homed at node 0,
/// so the remote RMW's dispatch-to-commit window keeps containing the
/// local one's commit. Every mis-speculation forces a rollback, and
/// every rollback must annihilate exactly one speculation — the ledger
/// entry the anti-loss fault forges away.
fn speculative_engine(plan: FaultPlan, mode: CheckMode) -> Engine {
    fn bodies(counter: spasm_machine::Addr) -> Vec<ProcBody> {
        (0..2)
            .map(|_| {
                let b: ProcBody = Box::new(move |_, ctx| {
                    let mem = MemCtx::new(ctx);
                    for _ in 0..30 {
                        mem.fetch_add(counter, 1);
                        mem.compute(5);
                    }
                });
                b
            })
            .collect()
    }
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let counter = setup.alloc(0, 1);
    let config = MachineConfig {
        check: mode,
        faults: Some(plan),
        engine: spasm_machine::EngineMode::Optimistic { workers: 4 },
        ..MachineConfig::default()
    };
    let mut eng = Engine::with_config(MachineKind::CLogP, &topo, config, setup, bodies(counter));
    eng.set_body_factory(Box::new(move |proc| {
        bodies(counter).into_iter().nth(proc).expect("two bodies")
    }));
    eng
}

#[test]
fn lost_anti_message_trips_speculation_annihilation() {
    // Forge every anti-message lost: rollbacks still happen, but the
    // ledger never sees their annihilations, so the books cannot
    // balance. Strict mode must say so by name.
    let plan = FaultPlan {
        anti_loss_prob: 1.0,
        ..FaultPlan::quiet(7)
    };
    match speculative_engine(plan, CheckMode::Strict).run() {
        Err(RunError::Check(v)) => assert_eq!(
            v.invariant, "speculation-annihilation",
            "wrong invariant fired: {v}"
        ),
        other => panic!("expected a speculation-annihilation violation, got {other:?}"),
    }
}

#[test]
fn lenient_mode_credits_lost_anti_messages() {
    // Lenient mode certifies the perturbed-but-consistent run: the
    // injected losses are credited against the ledger, the run
    // completes, and the commutative increments still all land.
    let plan = FaultPlan {
        anti_loss_prob: 1.0,
        ..FaultPlan::quiet(7)
    };
    let report = speculative_engine(plan, CheckMode::On)
        .run()
        .expect("lenient mode tolerates forged anti-message loss");
    assert!(report.spec.rollbacks > 0, "schedule must roll back");
    assert!(
        report.faults.anti_losses > 0,
        "every rollback's anti-message was forged lost"
    );
    assert_eq!(
        report.spec.annihilated, 0,
        "forged losses must not be double-counted as annihilations"
    );
}

#[test]
fn lenient_mode_tolerates_every_species() {
    // CheckMode::On certifies internal consistency of the perturbed
    // schedule; injections must pass through it cleanly.
    let plans = [
        FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::quiet(1)
        },
        FaultPlan {
            delay_prob: 1.0,
            max_delay_ns: 500,
            ..FaultPlan::quiet(2)
        },
        FaultPlan {
            stall_prob: 1.0,
            stall_ns: 1_000,
            ..FaultPlan::quiet(3)
        },
        FaultPlan {
            retry_prob: 1.0,
            max_retries: 1,
            ..FaultPlan::quiet(4)
        },
        FaultPlan {
            loss_prob: 1.0,
            retransmit_ns: 1_000,
            max_retransmits: 2,
            ..FaultPlan::quiet(6)
        },
    ];
    for plan in plans {
        run(MachineKind::Target, CheckMode::On, plan, msgpass_workload)
            .unwrap_or_else(|e| panic!("msgpass under {plan:?}: {e}"));
        run(MachineKind::Target, CheckMode::On, plan, shmem_workload)
            .unwrap_or_else(|e| panic!("shmem under {plan:?}: {e}"));
    }
}

#[test]
fn violations_render_the_event_ring() {
    // A delayed message fires inside the popped `Send` event, so the
    // ring has history to dump (a stall on the *first* dispatch would
    // legitimately precede any popped event).
    let plan = FaultPlan {
        delay_prob: 1.0,
        max_delay_ns: 500,
        ..FaultPlan::quiet(5)
    };
    match run(
        MachineKind::Target,
        CheckMode::Strict,
        plan,
        msgpass_workload,
    ) {
        Err(RunError::Check(v)) => {
            let rendered = v.to_string();
            assert!(rendered.contains("invariant"), "{rendered}");
            assert!(
                !v.recent.is_empty(),
                "violation should carry recent events for diagnosis"
            );
        }
        other => panic!("expected a check violation, got {other:?}"),
    }
}
