//! Property-based tests of the engine: for data-race-free programs, the
//! machine model changes *time*, never *semantics* — all four machines
//! must produce the identical final memory state.

use proptest::prelude::*;
use spasm_machine::{
    sync, Addr, Engine, MachineKind, MemCtx, ProcBody, RunReport, SetupCtx,
};
use spasm_topology::Topology;

/// A race-free operation in the generated programs.
#[derive(Debug, Clone)]
enum Op {
    /// Charge some computation.
    Compute(u64),
    /// Read an arbitrary shared word (reads never race).
    Read(usize),
    /// Write a constant to one of the processor's own words.
    WriteOwn(usize, u64),
    /// Atomically add to a shared counter (commutative: final value is
    /// order-independent).
    Add(usize, u64),
    /// Lock-protected increment of a shared cell.
    LockedIncrement(usize),
    /// Barrier with all processors.
    Barrier,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..50).prop_map(Op::Compute),
        (0usize..16).prop_map(Op::Read),
        ((0usize..4), (0u64..1000)).prop_map(|(s, v)| Op::WriteOwn(s, v)),
        ((0usize..4), (1u64..9)).prop_map(|(c, n)| Op::Add(c, n)),
        (0usize..2).prop_map(Op::LockedIncrement),
        Just(Op::Barrier),
    ]
}

/// Per-processor programs; barrier counts must match, so barriers are
/// appended uniformly afterwards.
fn arb_programs(p: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    let per_proc = prop::collection::vec(arb_op(), 0..25).prop_map(|ops| {
        // Strip barriers from the random stream; they are re-inserted at
        // matching positions below.
        ops.into_iter()
            .filter(|op| !matches!(op, Op::Barrier))
            .collect::<Vec<_>>()
    });
    (
        prop::collection::vec(per_proc, p..=p),
        prop::collection::vec(Just(Op::Barrier), 0..3),
    )
        .prop_map(|(mut programs, barriers)| {
            for program in &mut programs {
                program.extend(barriers.iter().cloned());
            }
            programs
        })
}

struct World {
    shared: Addr,   // 16 read-anywhere words
    own: Addr,      // 4 words per proc
    counters: Addr, // 4 fetch-add counters
    cells: Addr,    // 2 lock-protected cells
    locks: Addr,    // 2 locks
}

fn run_world(kind: MachineKind, p: usize, programs: &[Vec<Op>]) -> (World, RunReport) {
    let topo = Topology::hypercube(p);
    let mut setup = SetupCtx::new(p);
    let shared = setup.alloc_init(0, &(0..16u64).collect::<Vec<_>>());
    let own = setup.alloc(0, (4 * p) as u64);
    let counters = setup.alloc(0, 4);
    let cells = setup.alloc(0, 2);
    let locks = setup.alloc(0, 2);
    let barrier = sync::Barrier::alloc(&mut setup, 0, p);
    let world = World {
        shared,
        own,
        counters,
        cells,
        locks,
    };

    let bodies: Vec<ProcBody> = programs
        .iter()
        .cloned()
        .map(|program| {
            let body: ProcBody = Box::new(move |me, ctx| {
                let mem = MemCtx::new(ctx);
                let mut bar = barrier.handle();
                for op in &program {
                    match *op {
                        Op::Compute(c) => mem.compute(c),
                        Op::Read(w) => {
                            mem.read(shared.offset_words(w as u64));
                        }
                        Op::WriteOwn(slot, v) => {
                            mem.write(own.offset_words((me * 4 + slot) as u64), v);
                        }
                        Op::Add(c, n) => {
                            mem.fetch_add(counters.offset_words(c as u64), n);
                        }
                        Op::LockedIncrement(c) => {
                            let lock = locks.offset_words(c as u64);
                            sync::lock(&mem, lock);
                            let cell = cells.offset_words(c as u64);
                            let v = mem.read(cell);
                            mem.write(cell, v + 1);
                            sync::unlock(&mem, lock);
                        }
                        Op::Barrier => bar.wait(&mem),
                    }
                }
            });
            body
        })
        .collect();

    let report = Engine::new(kind, &topo, setup, bodies).run().unwrap();
    (world, report)
}

fn snapshot(world: &World, report: &RunReport, p: usize) -> Vec<u64> {
    let mut v = Vec::new();
    for w in 0..16 {
        v.push(report.final_store.read_word(world.shared.offset_words(w)));
    }
    for w in 0..(4 * p as u64) {
        v.push(report.final_store.read_word(world.own.offset_words(w)));
    }
    for c in 0..4 {
        v.push(report.final_store.read_word(world.counters.offset_words(c)));
    }
    for c in 0..2 {
        v.push(report.final_store.read_word(world.cells.offset_words(c)));
        // Locks must end free.
        v.push(report.final_store.read_word(world.locks.offset_words(c)));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four machines agree on the final memory of race-free programs.
    #[test]
    fn machines_agree_on_final_memory(programs in arb_programs(4)) {
        let (w0, r0) = run_world(MachineKind::Pram, 4, &programs);
        let reference = snapshot(&w0, &r0, 4);
        for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
            let (w, r) = run_world(kind, 4, &programs);
            prop_assert_eq!(&snapshot(&w, &r, 4), &reference, "{} diverged", kind);
        }
    }

    /// Execution time is bounded below by the PRAM ideal time on every
    /// machine (no machine can beat unit-cost conflict-free memory).
    #[test]
    fn pram_is_the_floor(programs in arb_programs(2)) {
        let (_, ideal) = run_world(MachineKind::Pram, 2, &programs);
        for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
            let (_, r) = run_world(kind, 2, &programs);
            prop_assert!(
                r.exec_time >= ideal.exec_time,
                "{} finished before the PRAM: {} < {}",
                kind, r.exec_time, ideal.exec_time
            );
        }
    }

    /// Bucket sanity on every machine: totals are internally consistent.
    #[test]
    fn buckets_are_consistent(programs in arb_programs(2)) {
        for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
            let (_, r) = run_world(kind, 2, &programs);
            // Per-proc finish times never exceed the reported exec time.
            for s in &r.per_proc {
                prop_assert!(s.finish <= r.exec_time);
            }
            // Message byte counts are consistent with message counts.
            prop_assert!(r.totals.bytes >= r.totals.msgs * 8);
            prop_assert!(r.totals.bytes <= r.totals.msgs * 32);
        }
    }
}
