//! Property-based tests of the engine: for data-race-free programs, the
//! machine model changes *time*, never *semantics* — all four machines
//! must produce the identical final memory state. (spasm-testkit)

use spasm_machine::{sync, Addr, Engine, MachineKind, MemCtx, ProcBody, RunReport, SetupCtx};
use spasm_testkit::{check_with, gens, prop_assert, prop_assert_eq, Config, Gen};
use spasm_topology::Topology;

/// A race-free operation in the generated programs.
#[derive(Debug, Clone)]
enum Op {
    /// Charge some computation.
    Compute(u64),
    /// Read an arbitrary shared word (reads never race).
    Read(usize),
    /// Write a constant to one of the processor's own words.
    WriteOwn(usize, u64),
    /// Atomically add to a shared counter (commutative: final value is
    /// order-independent).
    Add(usize, u64),
    /// Lock-protected increment of a shared cell.
    LockedIncrement(usize),
    /// Barrier with all processors.
    Barrier,
}

/// Decodes a raw generated (tag, a, b) triple into a race-free op.
/// Barriers are deliberately absent from the per-processor stream —
/// their counts must match, so a uniform suffix is appended instead.
fn decode(tag: u32, a: u64, b: u64) -> Op {
    match tag {
        0 => Op::Compute(1 + a % 49),
        1 => Op::Read((a % 16) as usize),
        2 => Op::WriteOwn((a % 4) as usize, b % 1000),
        3 => Op::Add((a % 4) as usize, 1 + b % 8),
        _ => Op::LockedIncrement((a % 2) as usize),
    }
}

/// Undecoded per-processor op streams: `(tag, a, b)` triples.
type RawStreams = Vec<Vec<(u32, u64, u64)>>;

/// Per-processor raw programs plus a uniform trailing barrier count.
fn raw_programs(p: usize) -> Gen<(RawStreams, usize)> {
    let op = gens::tuple3(gens::u32s(0..5), gens::u64s(0..1_000), gens::u64s(0..1_000));
    gens::tuple2(
        gens::vecs(gens::vecs(op, 0..25), p..p + 1),
        gens::usizes(0..3),
    )
}

fn programs_of(raw: &(RawStreams, usize), p: usize) -> Vec<Vec<Op>> {
    let (streams, barriers) = raw;
    let mut programs: Vec<Vec<Op>> = streams
        .iter()
        .map(|ops| ops.iter().map(|&(t, a, b)| decode(t, a, b)).collect())
        .collect();
    programs.resize_with(p, Vec::new); // vec length is fixed to p by the gen
    for program in &mut programs {
        program.extend(std::iter::repeat_with(|| Op::Barrier).take(*barriers));
    }
    programs
}

struct World {
    shared: Addr,   // 16 read-anywhere words
    own: Addr,      // 4 words per proc
    counters: Addr, // 4 fetch-add counters
    cells: Addr,    // 2 lock-protected cells
    locks: Addr,    // 2 locks
}

fn run_world(kind: MachineKind, p: usize, programs: &[Vec<Op>]) -> (World, RunReport) {
    let topo = Topology::hypercube(p);
    let mut setup = SetupCtx::new(p);
    let shared = setup.alloc_init(0, &(0..16u64).collect::<Vec<_>>());
    let own = setup.alloc(0, (4 * p) as u64);
    let counters = setup.alloc(0, 4);
    let cells = setup.alloc(0, 2);
    let locks = setup.alloc(0, 2);
    let barrier = sync::Barrier::alloc(&mut setup, 0, p);
    let world = World {
        shared,
        own,
        counters,
        cells,
        locks,
    };

    let bodies: Vec<ProcBody> = programs
        .iter()
        .cloned()
        .map(|program| {
            let body: ProcBody = Box::new(move |me, ctx| {
                let mem = MemCtx::new(ctx);
                let mut bar = barrier.handle();
                for op in &program {
                    match *op {
                        Op::Compute(c) => mem.compute(c),
                        Op::Read(w) => {
                            mem.read(shared.offset_words(w as u64));
                        }
                        Op::WriteOwn(slot, v) => {
                            mem.write(own.offset_words((me * 4 + slot) as u64), v);
                        }
                        Op::Add(c, n) => {
                            mem.fetch_add(counters.offset_words(c as u64), n);
                        }
                        Op::LockedIncrement(c) => {
                            let lock = locks.offset_words(c as u64);
                            sync::lock(&mem, lock);
                            let cell = cells.offset_words(c as u64);
                            let v = mem.read(cell);
                            mem.write(cell, v + 1);
                            sync::unlock(&mem, lock);
                        }
                        Op::Barrier => bar.wait(&mem),
                    }
                }
            });
            body
        })
        .collect();

    let report = Engine::new(kind, &topo, setup, bodies).run().unwrap();
    (world, report)
}

fn snapshot(world: &World, report: &RunReport, p: usize) -> Vec<u64> {
    let mut v = Vec::new();
    for w in 0..16 {
        v.push(report.final_store.read_word(world.shared.offset_words(w)));
    }
    for w in 0..(4 * p as u64) {
        v.push(report.final_store.read_word(world.own.offset_words(w)));
    }
    for c in 0..4 {
        v.push(report.final_store.read_word(world.counters.offset_words(c)));
    }
    for c in 0..2 {
        v.push(report.final_store.read_word(world.cells.offset_words(c)));
        // Locks must end free.
        v.push(report.final_store.read_word(world.locks.offset_words(c)));
    }
    v
}

/// 24 cases, matching the seed suite's proptest config for these
/// whole-engine properties.
fn cfg() -> Config {
    Config {
        cases: 24,
        ..Config::default()
    }
}

/// All four machines agree on the final memory of race-free programs.
#[test]
fn machines_agree_on_final_memory() {
    check_with(
        cfg(),
        "machines_agree_on_final_memory",
        &raw_programs(4),
        |raw| {
            let programs = programs_of(raw, 4);
            let (w0, r0) = run_world(MachineKind::Pram, 4, &programs);
            let reference = snapshot(&w0, &r0, 4);
            for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
                let (w, r) = run_world(kind, 4, &programs);
                prop_assert_eq!(&snapshot(&w, &r, 4), &reference, "{kind} diverged");
            }
            Ok(())
        },
    );
}

/// Execution time is bounded below by the PRAM ideal time on every
/// machine (no machine can beat unit-cost conflict-free memory).
#[test]
fn pram_is_the_floor() {
    check_with(cfg(), "pram_is_the_floor", &raw_programs(2), |raw| {
        let programs = programs_of(raw, 2);
        let (_, ideal) = run_world(MachineKind::Pram, 2, &programs);
        for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
            let (_, r) = run_world(kind, 2, &programs);
            prop_assert!(
                r.exec_time >= ideal.exec_time,
                "{kind} finished before the PRAM: {} < {}",
                r.exec_time,
                ideal.exec_time
            );
        }
        Ok(())
    });
}

/// Bucket sanity on every machine: totals are internally consistent.
#[test]
fn buckets_are_consistent() {
    check_with(cfg(), "buckets_are_consistent", &raw_programs(2), |raw| {
        let programs = programs_of(raw, 2);
        for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
            let (_, r) = run_world(kind, 2, &programs);
            // Per-proc finish times never exceed the reported exec time.
            for s in &r.per_proc {
                prop_assert!(s.finish <= r.exec_time);
            }
            // Message byte counts are consistent with message counts.
            prop_assert!(r.totals.bytes >= r.totals.msgs * 8);
            prop_assert!(r.totals.bytes <= r.totals.msgs * 32);
        }
        Ok(())
    });
}
