//! Engine-level telemetry: interval invariants on whole simulations.

use spasm_machine::{
    sync, Engine, IntervalRecord, MachineConfig, MachineKind, MemCtx, ProcBody, SetupCtx,
    TelemetryConfig,
};
use spasm_topology::Topology;

const ALL_MACHINES: [MachineKind; 4] = [
    MachineKind::Pram,
    MachineKind::Target,
    MachineKind::LogP,
    MachineKind::CLogP,
];

/// A small mixed workload: compute, shared reads/writes, a barrier, and
/// explicit messages, so every overhead class has a chance to move.
fn workload(p: usize) -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::hypercube(p);
    let mut setup = SetupCtx::new(p);
    let shared = setup.alloc(0, p as u64);
    let barrier = sync::Barrier::alloc(&mut setup, 0, p);
    let bodies: Vec<ProcBody> = (0..p)
        .map(|me| {
            let mut bh = barrier.handle();
            let b: ProcBody = Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                for round in 0..4u64 {
                    mem.compute(50);
                    let v = mem.read(shared.offset_words(((me + 1) % p) as u64));
                    mem.write(shared.offset_words(me as u64), v + round);
                    mem.send((me + 1) % p, 16, 7, round);
                    mem.recv(7);
                    bh.wait(&mem);
                }
            });
            b
        })
        .collect();
    (topo, setup, bodies)
}

fn run_with_telemetry(kind: MachineKind, interval_us: u64) -> spasm_machine::RunReport {
    let (topo, setup, bodies) = workload(4);
    let config = MachineConfig {
        telemetry: Some(TelemetryConfig::every_us(interval_us)),
        ..MachineConfig::default()
    };
    Engine::with_config(kind, &topo, config, setup, bodies)
        .run()
        .unwrap()
}

#[test]
fn telemetry_off_by_default_and_report_is_unchanged() {
    let (topo, setup, bodies) = workload(4);
    let r = Engine::new(MachineKind::Target, &topo, setup, bodies)
        .run()
        .unwrap();
    assert!(r.telemetry.is_empty());

    let with = run_with_telemetry(MachineKind::Target, 5);
    assert_eq!(r.exec_time, with.exec_time, "telemetry must be passive");
    assert_eq!(r.events, with.events);
    assert_eq!(r.totals, with.totals);
}

#[test]
fn intervals_conserve_events_and_stay_monotone_on_all_machines() {
    for kind in ALL_MACHINES {
        let r = run_with_telemetry(kind, 5);
        assert!(!r.telemetry.is_empty(), "{kind}");
        let total: u64 = r.telemetry.iter().map(|i| i.events).sum();
        assert_eq!(total, r.events, "{kind}: interval events must conserve");
        for w in r.telemetry.windows(2) {
            assert!(w[0].index < w[1].index, "{kind}: indices strictly rise");
            assert!(w[0].t1_ns <= w[1].t0_ns, "{kind}: buckets must not overlap");
        }
        for i in &r.telemetry {
            assert!(i.t0_ns < i.t1_ns, "{kind}: empty span");
            assert!(i.events > 0, "{kind}: empty buckets are skipped");
        }
        let busy: u64 = r.telemetry.iter().map(|i| i.busy_ns).sum();
        assert_eq!(busy, r.totals.busy.as_ns(), "{kind}: busy deltas conserve");
        let sync_ns: u64 = r.telemetry.iter().map(|i| i.sync_ns).sum();
        assert_eq!(
            sync_ns,
            r.totals.sync.as_ns(),
            "{kind}: sync deltas conserve"
        );
    }
}

#[test]
fn telemetry_is_deterministic_across_runs() {
    for kind in ALL_MACHINES {
        let a: Vec<IntervalRecord> = run_with_telemetry(kind, 2).telemetry;
        let b: Vec<IntervalRecord> = run_with_telemetry(kind, 2).telemetry;
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn cached_machines_report_hit_and_miss_deltas() {
    let r = run_with_telemetry(MachineKind::Target, 5);
    let hits: u64 = r.telemetry.iter().map(|i| i.cache_hits).sum();
    let misses: u64 = r.telemetry.iter().map(|i| i.cache_misses).sum();
    assert_eq!(hits, r.summary.cache_hits);
    assert_eq!(misses, r.summary.cache_misses);
}
