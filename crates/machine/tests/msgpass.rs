//! Message-passing platform tests: explicit SEND/RECEIVE, the other
//! platform family the SPASM simulator supports.

use spasm_desim::SimTime;
use spasm_machine::{Engine, MachineKind, MemCtx, ProcBody, RunError, SetupCtx};
use spasm_topology::Topology;

const ALL: [MachineKind; 4] = [
    MachineKind::Pram,
    MachineKind::Target,
    MachineKind::LogP,
    MachineKind::CLogP,
];

#[test]
fn ping_pong_roundtrips_value_on_all_machines() {
    for kind in ALL {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        let out = setup.alloc(0, 1);
        let bodies: Vec<ProcBody> = vec![
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                mem.send(1, 32, 7, 41);
                let v = mem.recv(8);
                mem.write(out, v);
            }),
            Box::new(|_, ctx| {
                let mem = MemCtx::new(ctx);
                let v = mem.recv(7);
                mem.send(0, 32, 8, v + 1);
            }),
        ];
        let r = Engine::new(kind, &topo, setup, bodies).run().unwrap();
        assert_eq!(r.final_store.read_word(out), 42, "{kind}");
    }
}

#[test]
fn recv_before_send_blocks_and_accumulates_sync() {
    let topo = Topology::full(2);
    let setup = SetupCtx::new(2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(|_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.compute(10_000); // 300us of work before sending
            mem.send(1, 8, 1, 99);
        }),
        Box::new(|_, ctx| {
            assert_eq!(MemCtx::new(ctx).recv(1), 99);
        }),
    ];
    let r = Engine::new(MachineKind::Target, &topo, setup, bodies)
        .run()
        .unwrap();
    assert!(r.per_proc[1].buckets.sync >= SimTime::from_us(250));
}

#[test]
fn messages_with_same_tag_are_fifo() {
    for kind in ALL {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        let out = setup.alloc(0, 3);
        let bodies: Vec<ProcBody> = vec![
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                for i in 0..3u64 {
                    mem.send(1, 16, 5, 100 + i);
                }
            }),
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                for i in 0..3u64 {
                    let v = mem.recv(5);
                    mem.write(out.offset_words(i), v);
                }
            }),
        ];
        let r = Engine::new(kind, &topo, setup, bodies).run().unwrap();
        for i in 0..3u64 {
            assert_eq!(
                r.final_store.read_word(out.offset_words(i)),
                100 + i,
                "{kind}"
            );
        }
    }
}

#[test]
fn tags_demultiplex_independent_streams() {
    let topo = Topology::hypercube(2);
    let mut setup = SetupCtx::new(2);
    let out = setup.alloc(0, 2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.send(1, 8, 2, 222);
            mem.send(1, 8, 1, 111);
        }),
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            // Receive in the opposite order of sending: tag matching, not
            // arrival order, decides.
            let a = mem.recv(1);
            let b = mem.recv(2);
            mem.write(out, a);
            mem.write(out.offset_words(1), b);
        }),
    ];
    let r = Engine::new(MachineKind::CLogP, &topo, setup, bodies)
        .run()
        .unwrap();
    assert_eq!(r.final_store.read_word(out), 111);
    assert_eq!(r.final_store.read_word(out.offset_words(1)), 222);
}

#[test]
fn ring_all_reduce_computes_global_sum() {
    // Each processor contributes (me+1); a token circulates the ring twice
    // (accumulate, then broadcast). Verified on every machine.
    for kind in ALL {
        let p = 8;
        let topo = Topology::hypercube(p);
        let mut setup = SetupCtx::new(p);
        let out = setup.alloc(0, p as u64);
        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let b: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let next = (me + 1) % p;
                    let mine = me as u64 + 1;
                    // Accumulation pass.
                    let acc = if me == 0 { mine } else { mem.recv(1) + mine };
                    mem.send(next, 32, if next == 0 { 2 } else { 1 }, acc);
                    // Broadcast pass.
                    let total = if me == 0 {
                        let t = mem.recv(2);
                        mem.send(next, 32, 3, t);
                        t
                    } else {
                        let t = mem.recv(3);
                        if next != 0 {
                            mem.send(next, 32, 3, t);
                        }
                        t
                    };
                    mem.write(out.offset_words(me as u64), total);
                });
                b
            })
            .collect();
        let r = Engine::new(kind, &topo, setup, bodies).run().unwrap();
        let want = (1..=p as u64).sum::<u64>();
        for me in 0..p as u64 {
            assert_eq!(
                r.final_store.read_word(out.offset_words(me)),
                want,
                "{kind}"
            );
        }
    }
}

#[test]
fn logp_sender_is_asynchronous_target_sender_holds_circuit() {
    // On the LogP machines a send costs the sender only its NI slot; on
    // the circuit-switched target the sender drives the wire for the full
    // transmission.
    let run = |kind| {
        let topo = Topology::full(2);
        let setup = SetupCtx::new(2);
        let bodies: Vec<ProcBody> = vec![
            Box::new(|_, ctx| {
                let mem = MemCtx::new(ctx);
                mem.send(1, 32, 1, 0);
                // Sender's finish time IS its completion of the send.
            }),
            Box::new(|_, ctx| {
                MemCtx::new(ctx).recv(1);
            }),
        ];
        Engine::new(kind, &topo, setup, bodies).run().unwrap()
    };
    let target = run(MachineKind::Target);
    let logp = run(MachineKind::LogP);
    // Target sender blocked ~1.6us (32B transmission); LogP sender free
    // almost immediately (first slot, no gap backlog).
    assert!(target.per_proc[0].finish >= SimTime::from_ns(1600));
    assert!(logp.per_proc[0].finish < SimTime::from_ns(200));
}

#[test]
fn missing_sender_is_a_deadlock_not_a_hang() {
    let topo = Topology::full(2);
    let setup = SetupCtx::new(2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(|_, _| {}),
        Box::new(|_, ctx| {
            MemCtx::new(ctx).recv(9);
        }),
    ];
    match Engine::new(MachineKind::Target, &topo, setup, bodies).run() {
        Err(RunError::Deadlock { waiting, .. }) => assert_eq!(waiting, vec![1]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn oversized_message_rejected() {
    let topo = Topology::full(2);
    let setup = SetupCtx::new(2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(|_, ctx| {
            MemCtx::new(ctx).send(1, 64, 1, 0);
        }),
        Box::new(|_, ctx| {
            MemCtx::new(ctx).recv(1);
        }),
    ];
    // The malformed request is a typed error, not a process abort.
    match Engine::new(MachineKind::Target, &topo, setup, bodies).run() {
        Err(RunError::BadRequest { proc, message }) => {
            assert_eq!(proc, 0);
            assert!(message.contains("outside 1..=32"), "{message}");
        }
        other => panic!("{other:?}"),
    }
}
