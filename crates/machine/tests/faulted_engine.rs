//! Engine-level fault injection and budget tests: every failure is a
//! typed error, faults are deterministic per seed, and a quiet plan is
//! indistinguishable from no plan at all.

use spasm_desim::SimTime;
use spasm_machine::{
    Engine, FaultPlan, MachineConfig, MachineKind, MemCtx, Pred, ProcBody, RunBudget, RunError,
    RunReport, SetupCtx,
};
use spasm_topology::Topology;

const ALL_MACHINES: [MachineKind; 4] = [
    MachineKind::Pram,
    MachineKind::Target,
    MachineKind::LogP,
    MachineKind::CLogP,
];

/// A two-proc workload with real traffic: proc 1 increments a shared
/// counter and raises a flag; proc 0 waits on the flag and reads back.
fn flag_workload() -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let counter = setup.alloc(0, 1);
    let flag = setup.alloc(1, 1);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.wait_until(flag, Pred::Eq(1));
            assert_eq!(mem.read(counter), 7);
        }),
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.write(counter, 7);
            mem.write(flag, 1);
        }),
    ];
    (topo, setup, bodies)
}

fn run_with(config: MachineConfig, kind: MachineKind) -> Result<RunReport, RunError> {
    let (topo, setup, bodies) = flag_workload();
    Engine::with_config(kind, &topo, config, setup, bodies).run()
}

#[test]
fn event_budget_converts_polling_livelock_into_typed_error() {
    // A flag nobody ever sets: on the polling LogP machine the waiter
    // re-reads forever (livelock); the budget turns that into a typed
    // error instead of a hang.
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let flag = setup.alloc(0, 1);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            MemCtx::new(ctx).wait_until(flag, Pred::Eq(1));
        }),
        Box::new(|_, _| {}),
    ];
    let config = MachineConfig {
        budget: RunBudget::events(10_000),
        ..MachineConfig::default()
    };
    match Engine::with_config(MachineKind::LogP, &topo, config, setup, bodies).run() {
        Err(RunError::BudgetExceeded { events, .. }) => assert!(events > 0),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn sim_time_budget_trips_on_all_machines() {
    for kind in ALL_MACHINES {
        let config = MachineConfig {
            budget: RunBudget::sim_time(SimTime::from_ns(1)),
            ..MachineConfig::default()
        };
        match run_with(config, kind) {
            Err(RunError::BudgetExceeded { at, .. }) => {
                assert!(at > SimTime::from_ns(1), "{kind}")
            }
            other => panic!("{kind}: expected BudgetExceeded, got {other:?}"),
        }
    }
}

#[test]
fn generous_budget_changes_nothing() {
    for kind in ALL_MACHINES {
        let baseline = run_with(MachineConfig::default(), kind).unwrap();
        let config = MachineConfig {
            budget: RunBudget {
                max_events: Some(1_000_000),
                max_sim_time: Some(SimTime::from_us(1_000_000)),
            },
            ..MachineConfig::default()
        };
        let bounded = run_with(config, kind).unwrap();
        assert_eq!(baseline.exec_time, bounded.exec_time, "{kind}");
        assert_eq!(baseline.events, bounded.events, "{kind}");
    }
}

#[test]
fn quiet_plan_is_indistinguishable_from_no_plan() {
    for kind in ALL_MACHINES {
        let baseline = run_with(MachineConfig::default(), kind).unwrap();
        let config = MachineConfig {
            faults: Some(FaultPlan::quiet(99)),
            ..MachineConfig::default()
        };
        let quiet = run_with(config, kind).unwrap();
        assert_eq!(baseline.exec_time, quiet.exec_time, "{kind}");
        assert_eq!(quiet.faults.total(), 0, "{kind}");
    }
}

#[test]
fn adversarial_faults_are_deterministic_per_seed() {
    for kind in ALL_MACHINES {
        let run = |seed| {
            let config = MachineConfig {
                faults: Some(FaultPlan::adversarial(seed)),
                ..MachineConfig::default()
            };
            run_with(config, kind).unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.exec_time, b.exec_time, "{kind}");
        assert_eq!(a.faults, b.faults, "{kind}");
        assert_eq!(a.totals.contention, b.totals.contention, "{kind}");
    }
}

#[test]
fn injected_faults_slow_the_run_down() {
    // A plan that delays every network transaction must stretch the
    // simulated execution time on every network-touching machine.
    for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
        let healthy = run_with(MachineConfig::default(), kind).unwrap();
        let config = MachineConfig {
            faults: Some(FaultPlan {
                delay_prob: 1.0,
                max_delay_ns: 1, // deterministic magnitude: always 1 ns
                ..FaultPlan::quiet(3)
            }),
            ..MachineConfig::default()
        };
        let faulted = run_with(config, kind).unwrap();
        assert!(faulted.faults.delayed > 0, "{kind}: nothing injected");
        assert!(
            faulted.exec_time > healthy.exec_time,
            "{kind}: delays must stretch execution"
        );
    }
}

#[test]
fn duplicated_messages_are_tolerated_by_fifo_mailboxes() {
    // Explicit message passing under 100% duplication: the receiver takes
    // the original (FIFO), the copy is left unconsumed, the run completes.
    let topo = Topology::full(2);
    let setup = SetupCtx::new(2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(|_, ctx| {
            MemCtx::new(ctx).send(1, 8, 42, 1234);
        }),
        Box::new(|_, ctx| {
            assert_eq!(MemCtx::new(ctx).recv(42), 1234);
        }),
    ];
    let config = MachineConfig {
        faults: Some(FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::quiet(1)
        }),
        ..MachineConfig::default()
    };
    let report = Engine::with_config(MachineKind::Target, &topo, config, setup, bodies)
        .run()
        .unwrap();
    assert_eq!(report.faults.duplicated, 1);
}

#[test]
fn stalls_are_counted_and_charged() {
    let config = MachineConfig {
        faults: Some(FaultPlan {
            stall_prob: 1.0,
            stall_ns: 1_000,
            ..FaultPlan::quiet(8)
        }),
        ..MachineConfig::default()
    };
    let report = run_with(config, MachineKind::Pram).unwrap();
    assert!(report.faults.stalls > 0);
    assert!(report.totals.sync >= SimTime::from_ns(1_000));
}

#[test]
fn unallocated_address_is_a_typed_run_error() {
    use spasm_machine::Addr;
    for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        setup.alloc(0, 1);
        let bodies: Vec<ProcBody> = vec![
            Box::new(|_, ctx| {
                MemCtx::new(ctx).read(Addr(1 << 40)); // fabricated pointer
            }),
            Box::new(|_, _| {}),
        ];
        match Engine::new(kind, &topo, setup, bodies).run() {
            Err(RunError::UnallocatedAddress { addr }) => {
                assert_eq!(addr, Addr(1 << 40), "{kind}")
            }
            other => panic!("{kind}: expected UnallocatedAddress, got {other:?}"),
        }
    }
}
