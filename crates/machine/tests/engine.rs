//! Engine-level tests: whole simulations on all four machines.

use spasm_desim::SimTime;
use spasm_machine::{
    sync, Engine, MachineKind, MemCtx, Pred, ProcBody, RunError, RunReport, SetupCtx,
};
use spasm_topology::Topology;

const ALL_MACHINES: [MachineKind; 4] = [
    MachineKind::Pram,
    MachineKind::Target,
    MachineKind::LogP,
    MachineKind::CLogP,
];

fn run(kind: MachineKind, topo: &Topology, setup: SetupCtx, bodies: Vec<ProcBody>) -> RunReport {
    Engine::new(kind, topo, setup, bodies).run().unwrap()
}

#[test]
fn single_processor_compute_only() {
    for kind in ALL_MACHINES {
        let topo = Topology::full(1);
        let setup = SetupCtx::new(1);
        let bodies: Vec<ProcBody> = vec![Box::new(|_, ctx| {
            MemCtx::new(ctx).compute(100);
        })];
        let r = run(kind, &topo, setup, bodies);
        assert_eq!(r.exec_time, SimTime::from_ns(3000), "{kind}");
        assert_eq!(r.totals.busy, SimTime::from_ns(3000));
        assert_eq!(r.summary.net_messages, 0);
    }
}

#[test]
fn read_write_roundtrip_on_all_machines() {
    for kind in ALL_MACHINES {
        let topo = Topology::hypercube(2);
        let mut setup = SetupCtx::new(2);
        let a = setup.alloc_init(1, &[7]);
        let out = setup.alloc(0, 1);
        let bodies: Vec<ProcBody> = vec![
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                let v = mem.read(a);
                mem.write(out, v * 2);
            }),
            Box::new(|_, _| {}),
        ];
        let r = run(kind, &topo, setup, bodies);
        assert_eq!(r.final_store.read_word(out), 14, "{kind}");
    }
}

#[test]
fn lock_protected_counter_is_atomic_on_all_machines() {
    for kind in ALL_MACHINES {
        let p = 4;
        let topo = Topology::hypercube(p);
        let mut setup = SetupCtx::new(p);
        let counter = setup.alloc(0, 1);
        let lock = setup.alloc(0, 1);
        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let b: ProcBody = Box::new(move |_, ctx| {
                    let mem = MemCtx::new(ctx);
                    for _ in 0..5 {
                        sync::lock(&mem, lock);
                        let v = mem.read(counter);
                        mem.compute(10);
                        mem.write(counter, v + 1);
                        sync::unlock(&mem, lock);
                    }
                });
                b
            })
            .collect();
        let r = run(kind, &topo, setup, bodies);
        assert_eq!(r.final_store.read_word(counter), 20, "{kind}");
    }
}

#[test]
fn barrier_rendezvous_on_all_machines() {
    for kind in ALL_MACHINES {
        let p = 4;
        let topo = Topology::mesh(p);
        let mut setup = SetupCtx::new(p);
        let slots = setup.alloc(0, p as u64);
        let barrier = sync::Barrier::alloc(&mut setup, 0, p);
        let check = setup.alloc(0, p as u64);
        let bodies: Vec<ProcBody> = (0..p)
            .map(|i| {
                let b: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let mut bar = barrier.handle();
                    // Phase 1: everyone writes their slot (staggered work).
                    mem.compute(10 * (me as u64 + 1));
                    mem.write(slots.offset_words(me as u64), me as u64 + 100);
                    bar.wait(&mem);
                    // Phase 2: everyone reads the *next* processor's slot,
                    // which is only safe if the barrier held.
                    let next = (me + 1) % 4;
                    let v = mem.read(slots.offset_words(next as u64));
                    mem.write(check.offset_words(me as u64), v);
                    bar.wait(&mem);
                });
                debug_assert!(i < p);
                b
            })
            .collect();
        let r = run(kind, &topo, setup, bodies);
        for me in 0..p as u64 {
            let next = (me + 1) % 4;
            assert_eq!(
                r.final_store.read_word(check.offset_words(me)),
                next + 100,
                "{kind} proc {me}"
            );
        }
    }
}

#[test]
fn condition_flag_signalling() {
    for kind in ALL_MACHINES {
        let p = 4;
        let topo = Topology::full(p);
        let mut setup = SetupCtx::new(p);
        let flag = sync::CondFlag::alloc(&mut setup, 0);
        let seen = setup.alloc(0, p as u64);
        let bodies: Vec<ProcBody> = (0..p)
            .map(|i| {
                let b: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    if me == 0 {
                        mem.compute(1000); // make waiters actually wait
                        flag.signal(&mem, 42);
                        mem.write(seen.offset_words(0), 42);
                    } else {
                        let v = flag.wait(&mem);
                        mem.write(seen.offset_words(me as u64), v);
                    }
                });
                debug_assert!(i < p);
                b
            })
            .collect();
        let r = run(kind, &topo, setup, bodies);
        for me in 0..p as u64 {
            assert_eq!(r.final_store.read_word(seen.offset_words(me)), 42, "{kind}");
        }
    }
}

#[test]
fn waiters_accumulate_sync_time() {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let flag = sync::CondFlag::alloc(&mut setup, 0);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            mem.compute(100_000); // 3ms of work
            flag.signal(&mem, 1);
        }),
        Box::new(move |_, ctx| {
            flag.wait(&MemCtx::new(ctx));
        }),
    ];
    let r = run(MachineKind::Target, &topo, setup, bodies);
    // The waiter spent essentially the whole run spinning.
    assert!(r.per_proc[1].buckets.sync > SimTime::from_ms(2));
    // But generated almost no traffic: first and last accesses only.
    assert!(r.per_proc[1].buckets.msgs <= 6);
}

#[test]
fn logp_spinning_generates_traffic_but_cached_machines_do_not() {
    // The paper's EP observation (§6.2): on the LogP machine every
    // condition-variable poll is a network access; on CLogP/target only
    // the first and last.
    let mut msgs = std::collections::HashMap::new();
    for kind in [MachineKind::Target, MachineKind::LogP, MachineKind::CLogP] {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        let flag = sync::CondFlag::alloc(&mut setup, 0);
        let bodies: Vec<ProcBody> = vec![
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                mem.compute(10_000);
                flag.signal(&mem, 1);
            }),
            Box::new(move |_, ctx| {
                flag.wait(&MemCtx::new(ctx));
            }),
        ];
        let r = run(kind, &topo, setup, bodies);
        msgs.insert(kind.to_string(), r.per_proc[1].buckets.msgs);
    }
    assert!(
        msgs["logp"] > 10 * msgs["clogp"].max(1),
        "LogP spin must flood the network: {msgs:?}"
    );
    assert!(msgs["target"] <= 6);
    assert!(msgs["clogp"] <= 6);
}

#[test]
fn spatial_locality_clogp_fetches_once_logp_four_times() {
    // Four consecutive words = one cache block (the paper's FFT ~4x
    // latency factor between LogP and target/CLogP).
    let mut latency = std::collections::HashMap::new();
    for kind in [MachineKind::LogP, MachineKind::CLogP] {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        let data = setup.alloc_init(1, &[1, 2, 3, 4]);
        let out = setup.alloc(0, 1);
        let bodies: Vec<ProcBody> = vec![
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                let mut sum = 0;
                for w in 0..4 {
                    sum += mem.read(data.offset_words(w));
                }
                mem.write(out, sum);
            }),
            Box::new(|_, _| {}),
        ];
        let r = run(kind, &topo, setup, bodies);
        assert_eq!(r.final_store.read_word(out), 10, "{kind}");
        latency.insert(kind.to_string(), r.totals.latency.as_ns());
    }
    let ratio = latency["logp"] as f64 / latency["clogp"] as f64;
    assert!(
        (3.0..=5.0).contains(&ratio),
        "expected ~4x latency ratio, got {ratio}"
    );
}

#[test]
fn determinism_identical_runs_identical_reports() {
    for kind in ALL_MACHINES {
        let mk = || {
            let p = 4;
            let topo = Topology::mesh(p);
            let mut setup = SetupCtx::new(p);
            let counter = setup.alloc(0, 1);
            let lock = setup.alloc(0, 1);
            let bodies: Vec<ProcBody> = (0..p)
                .map(|_| {
                    let b: ProcBody = Box::new(move |me, ctx| {
                        let mem = MemCtx::new(ctx);
                        mem.compute(me as u64 * 13 + 5);
                        sync::lock(&mem, lock);
                        let v = mem.read(counter);
                        mem.write(counter, v + me as u64);
                        sync::unlock(&mem, lock);
                    });
                    b
                })
                .collect();
            run(kind, &topo, setup, bodies)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.exec_time, b.exec_time, "{kind}");
        assert_eq!(a.totals.latency, b.totals.latency);
        assert_eq!(a.totals.contention, b.totals.contention);
        assert_eq!(a.events, b.events);
        assert_eq!(
            a.final_store.read_word(spasm_machine::Addr(0)),
            b.final_store.read_word(spasm_machine::Addr(0))
        );
    }
}

#[test]
fn panicking_body_reports_error() {
    let topo = Topology::full(1);
    let setup = SetupCtx::new(1);
    let bodies: Vec<ProcBody> = vec![Box::new(|_, _| panic!("app bug"))];
    match Engine::new(MachineKind::Pram, &topo, setup, bodies).run() {
        Err(RunError::Panicked { proc: 0, message }) => assert!(message.contains("app bug")),
        other => panic!("{other:?}"),
    }
}

#[test]
fn lost_wakeup_detected_as_deadlock() {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let flag = setup.alloc(0, 1);
    let bodies: Vec<ProcBody> = vec![
        Box::new(|_, _| {}), // never signals
        Box::new(move |_, ctx| {
            MemCtx::new(ctx).wait_until(flag, Pred::Eq(1));
        }),
    ];
    match Engine::new(MachineKind::Target, &topo, setup, bodies).run() {
        Err(RunError::Deadlock { waiting, .. }) => assert_eq!(waiting, vec![1]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn exec_time_orders_pram_fastest() {
    // PRAM <= CLogP <= target <= LogP for a communication-heavy kernel.
    let mut times = std::collections::HashMap::new();
    for kind in ALL_MACHINES {
        let p = 4;
        let topo = Topology::mesh(p);
        let mut setup = SetupCtx::new(p);
        let data = setup.alloc(0, 64);
        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let b: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    for i in 0..16u64 {
                        let v = mem.read(data.offset_words(i));
                        mem.compute(5);
                        if me == 0 {
                            mem.write(data.offset_words(48 + i), v + 1);
                        }
                    }
                });
                b
            })
            .collect();
        times.insert(kind.to_string(), run(kind, &topo, setup, bodies).exec_time);
    }
    assert!(times["pram"] < times["clogp"]);
    assert!(times["clogp"] < times["logp"]);
    assert!(times["target"] < times["logp"]);
}

#[test]
fn rmw_swap_and_fetch_add() {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let a = setup.alloc_init(1, &[5]);
    let out = setup.alloc(0, 2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            let old = mem.fetch_add(a, 10);
            mem.write(out, old);
            let old2 = mem.swap(a, 99);
            mem.write(out.offset_words(1), old2);
        }),
        Box::new(|_, _| {}),
    ];
    let r = run(MachineKind::Target, &topo, setup, bodies);
    assert_eq!(r.final_store.read_word(out), 5);
    assert_eq!(r.final_store.read_word(out.offset_words(1)), 15);
    assert_eq!(r.final_store.read_word(a), 99);
}

#[test]
fn f64_values_survive_simulation() {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let x = setup.alloc_init_f64(1, &[2.5]);
    let y = setup.alloc(0, 1);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            let v = mem.read_f64(x);
            mem.write_f64(y, v * v);
        }),
        Box::new(|_, _| {}),
    ];
    let r = run(MachineKind::CLogP, &topo, setup, bodies);
    assert_eq!(r.final_store.read_f64(y), 6.25);
}

#[test]
fn report_metric_helpers() {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let a = setup.alloc(1, 1);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            MemCtx::new(ctx).read(a);
        }),
        Box::new(|_, _| {}),
    ];
    let r = run(MachineKind::LogP, &topo, setup, bodies);
    assert_eq!(r.procs(), 2);
    // 2 messages x 1.6us over 2 procs = 1.6us mean.
    assert!((r.latency_overhead_us() - 1.6).abs() < 1e-9);
    assert!(r.exec_time_us() >= 3.2);
    assert!(r.contention_overhead_us() >= 0.0);
}
