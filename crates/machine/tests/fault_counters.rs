//! Accounting tests for fault injection: each species increments its
//! [`FaultCounters`] field exactly once per injection, so
//! `RunReport.faults` is a trustworthy census of the adversity a run
//! actually absorbed — with probability 1 the counts equal the number
//! of injection sites the workload exposes, no more, no fewer.

use spasm_machine::{
    Engine, FaultPlan, MachineConfig, MachineKind, MemCtx, ProcBody, RunReport, SetupCtx,
};
use spasm_topology::Topology;

/// `sends` explicit messages proc 0 → proc 1, each received.
fn msgpass(sends: u64) -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::full(2);
    let setup = SetupCtx::new(2);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            for tag in 0..sends {
                mem.send(1, 8, tag, tag + 100);
            }
        }),
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            for tag in 0..sends {
                assert_eq!(mem.recv(tag), tag + 100);
            }
        }),
    ];
    (topo, setup, bodies)
}

/// `writes` local memory operations on proc 0; proc 1 idles.
fn local_writes(writes: u64) -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let words = setup.alloc(0, writes);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            for i in 0..writes {
                mem.write(words.offset_words(i), i);
            }
        }),
        Box::new(|_, _| {}),
    ];
    (topo, setup, bodies)
}

/// `reads` distinct remote words (homed at node 1) read by proc 0, each
/// a fresh block so every read is a network-touching miss on the target.
fn remote_reads(reads: u64) -> (Topology, SetupCtx, Vec<ProcBody>) {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    // One word per block: stride by the block size in words.
    let words_per_block = spasm_machine::BLOCK_BYTES / spasm_machine::WORD_BYTES;
    let base = setup.alloc(1, reads * words_per_block);
    let bodies: Vec<ProcBody> = vec![
        Box::new(move |_, ctx| {
            let mem = MemCtx::new(ctx);
            for i in 0..reads {
                mem.read(base.offset_words(i * words_per_block));
            }
        }),
        Box::new(|_, _| {}),
    ];
    (topo, setup, bodies)
}

fn run_faulted(
    kind: MachineKind,
    plan: FaultPlan,
    (topo, setup, bodies): (Topology, SetupCtx, Vec<ProcBody>),
) -> RunReport {
    let config = MachineConfig {
        faults: Some(plan),
        ..MachineConfig::default()
    };
    Engine::with_config(kind, &topo, config, setup, bodies)
        .run()
        .unwrap()
}

#[test]
fn duplication_counts_exactly_one_per_send() {
    let plan = FaultPlan {
        dup_prob: 1.0,
        ..FaultPlan::quiet(1)
    };
    for sends in [1u64, 3, 8] {
        let report = run_faulted(MachineKind::Target, plan, msgpass(sends));
        assert_eq!(report.faults.duplicated, sends, "sends={sends}");
        assert_eq!(report.faults.total(), sends, "no other species leaked");
    }
}

#[test]
fn delay_counts_exactly_one_per_message() {
    let plan = FaultPlan {
        delay_prob: 1.0,
        max_delay_ns: 1,
        ..FaultPlan::quiet(2)
    };
    for sends in [1u64, 3, 8] {
        let report = run_faulted(MachineKind::Target, plan, msgpass(sends));
        assert_eq!(report.faults.delayed, sends, "sends={sends}");
        assert_eq!(report.faults.total(), sends);
    }
}

#[test]
fn stall_counts_exactly_one_per_dispatch() {
    let plan = FaultPlan {
        stall_prob: 1.0,
        stall_ns: 100,
        ..FaultPlan::quiet(3)
    };
    // Every operation dispatch is a stall site; the workload's dispatch
    // count scales one-for-one with its operation count, so the counter
    // difference between W and W+k writes must be exactly k.
    let stalls_for = |writes| {
        run_faulted(MachineKind::Pram, plan, local_writes(writes))
            .faults
            .stalls
    };
    let base = stalls_for(1);
    for extra in [1u64, 4, 9] {
        assert_eq!(
            stalls_for(1 + extra),
            base + extra,
            "each extra write must add exactly one stall"
        );
    }
}

#[test]
fn retry_counts_exactly_one_per_remote_transaction() {
    let plan = FaultPlan {
        retry_prob: 1.0,
        max_retries: 1,
        ..FaultPlan::quiet(4)
    };
    for reads in [1u64, 3, 6] {
        let report = run_faulted(MachineKind::Target, plan, remote_reads(reads));
        assert_eq!(report.faults.retries, reads, "reads={reads}");
        assert_eq!(
            report.summary.cache_misses, reads,
            "workload must be one miss per read for the count to be exact"
        );
    }
}

#[test]
fn loss_counts_exactly_one_per_drop() {
    // Certain loss drops every delivery `max_retransmits` times before
    // the bound forces it through, so the retransmission count is an
    // exact multiple of the message count.
    for max in [1u32, 2, 3] {
        let plan = FaultPlan {
            loss_prob: 1.0,
            retransmit_ns: 1_000,
            max_retransmits: max,
            ..FaultPlan::quiet(6)
        };
        for sends in [1u64, 3, 8] {
            let report = run_faulted(MachineKind::Target, plan, msgpass(sends));
            assert_eq!(
                report.faults.retransmits,
                sends * u64::from(max),
                "sends={sends} max={max}"
            );
            assert_eq!(report.faults.total(), sends * u64::from(max));
        }
    }
}

/// A selector naming the counter a plan's single species owns.
type CounterOf = fn(&spasm_machine::FaultCounters) -> u64;

#[test]
fn counters_are_disjoint_and_total_is_their_sum() {
    // One species at a time: the other counters stay zero.
    let species: [(FaultPlan, CounterOf); 5] = [
        (
            FaultPlan {
                dup_prob: 1.0,
                ..FaultPlan::quiet(5)
            },
            |c| c.duplicated,
        ),
        (
            FaultPlan {
                delay_prob: 1.0,
                max_delay_ns: 1,
                ..FaultPlan::quiet(5)
            },
            |c| c.delayed,
        ),
        (
            FaultPlan {
                stall_prob: 1.0,
                stall_ns: 100,
                ..FaultPlan::quiet(5)
            },
            |c| c.stalls,
        ),
        (
            FaultPlan {
                retry_prob: 1.0,
                max_retries: 1,
                ..FaultPlan::quiet(5)
            },
            |c| c.retries,
        ),
        (
            FaultPlan {
                loss_prob: 1.0,
                retransmit_ns: 1_000,
                max_retransmits: 1,
                ..FaultPlan::quiet(5)
            },
            |c| c.retransmits,
        ),
    ];
    for (plan, own) in species {
        let report = run_faulted(MachineKind::Target, plan, msgpass(2));
        assert_eq!(
            report.faults.total(),
            own(&report.faults),
            "{plan:?}: another species' counter moved"
        );
    }
}
