//! The LogP machine: no caches, L/g network abstraction.

use spasm_desim::SimTime;
use spasm_topology::Topology;

use crate::engine::RunError;
use crate::{Addr, AddressMap, Buckets, MEM_NS};

use super::{AbstractNet, Cost, MachineConfig, ModelSummary};

/// The paper's §3.1 machine: "a collection of processors, each with a piece
/// of the globally shared memory, connected by a network which is abstracted
/// by the L and g parameters. Due to the absence of caches, any non-local
/// memory reference would need to traverse the network as in a NUMA machine
/// like the Butterfly GP-1000."
///
/// Every operation on a remotely-homed word is a request/response round
/// trip through the abstract network; local words cost a memory access.
/// Reads, writes, and atomics all behave identically (sequential
/// consistency blocks the processor either way).
#[derive(Debug)]
pub struct LogPModel {
    net: AbstractNet,
}

impl LogPModel {
    /// Builds the machine over the *abstracted* topology (only P and the
    /// bisection-derived g survive the abstraction).
    pub fn new(topo: &Topology, config: MachineConfig) -> Self {
        LogPModel {
            net: AbstractNet::new(topo, &config),
        }
    }

    /// Prices one access (kind-independent on this machine).
    ///
    /// # Errors
    ///
    /// [`RunError::UnallocatedAddress`] for an address no allocation
    /// covers.
    pub fn access(
        &mut self,
        at: SimTime,
        proc: usize,
        addr: Addr,
        amap: &AddressMap,
    ) -> Result<Cost, RunError> {
        let mut buckets = Buckets::default();
        let home = amap.home_of(addr)?;
        let finish = if home == proc {
            buckets.mem += SimTime::from_ns(MEM_NS);
            at + SimTime::from_ns(MEM_NS)
        } else {
            self.net.round_trip(at, proc, home, &mut buckets)
        };
        if let Some(v) = self.net.take_violation() {
            return Err(v.into());
        }
        Ok(Cost { finish, buckets })
    }

    /// The derived LogP parameters in force.
    pub fn params(&self) -> spasm_logp::LogPParams {
        self.net.params()
    }

    /// Mutable access to the abstract network (explicit messaging).
    pub(crate) fn net_mut(&mut self) -> &mut AbstractNet {
        &mut self.net
    }

    /// Run-report counters.
    pub fn summary(&self) -> ModelSummary {
        let (net_messages, net_bytes, net_latency, net_contention) = self.net.totals();
        ModelSummary {
            net_messages,
            net_bytes,
            net_latency,
            net_contention,
            ..ModelSummary::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LogPModel, AddressMap) {
        let topo = Topology::hypercube(4);
        let mut amap = AddressMap::new(4);
        for home in 0..4 {
            amap.alloc(home, 16);
        }
        (LogPModel::new(&topo, MachineConfig::default()), amap)
    }

    #[test]
    fn local_access_costs_memory_time() {
        let (mut m, amap) = setup();
        let local = Addr(0); // homed at 0
        let c = m.access(SimTime::ZERO, 0, local, &amap).unwrap();
        assert_eq!(c.finish, SimTime::from_ns(300));
        assert_eq!(c.buckets.msgs, 0);
    }

    #[test]
    fn remote_access_is_a_round_trip() {
        let (mut m, amap) = setup();
        let remote = Addr(128); // homed at 1
        let c = m.access(SimTime::ZERO, 0, remote, &amap).unwrap();
        assert_eq!(c.buckets.msgs, 2);
        assert_eq!(c.buckets.latency, SimTime::from_ns(3200));
        assert!(c.finish >= SimTime::from_ns(3200));
    }

    #[test]
    fn repeated_remote_reads_always_pay() {
        // No cache: the same word costs the same every time — the essence
        // of what CLogP fixes.
        let (mut m, amap) = setup();
        let remote = Addr(128);
        let c1 = m.access(SimTime::ZERO, 0, remote, &amap).unwrap();
        let c2 = m.access(c1.finish, 0, remote, &amap).unwrap();
        assert_eq!(c2.buckets.msgs, 2);
        assert!(c2.finish > c1.finish);
    }
}
