//! The CC-NUMA target machine: full protocol, link-level network.

use spasm_cache::{AccessKind, CacheConfig, CoherenceController, Outcome, ProtocolKind, Supplier};
use spasm_check::{CheckViolation, CoherenceChecker};
use spasm_desim::{Facility, SimTime};
use spasm_net::{Delivery, Network};
use spasm_topology::{NodeId, Topology, TopologyError};

use crate::engine::RunError;
use crate::fxhash::FxHashMap;
use crate::{Addr, AddressMap, Buckets, BLOCK_BYTES, CTRL_BYTES, CYCLE_NS, DATA_BYTES, MEM_NS};

use super::{Cost, MachineConfig, ModelSummary};

/// The machine the abstractions are measured against (§5): every coherence
/// action is a real message on the circuit-switched network, and the home
/// node's memory module serializes block fills and writebacks.
///
/// Transaction shapes (all messages priced by the link-level network):
///
/// * **read/write hit** — one cycle, no traffic;
/// * **upgrade** (write to a present, non-exclusive block) — 8 B request to
///   the home; the home sends 8 B invalidations to every other holder *in
///   parallel*; each replies with an 8 B ack; an 8 B grant returns to the
///   requester;
/// * **read miss** — 8 B request; data supplied either by the home memory
///   (300 ns module access, 32 B data message) or, Berkeley-style, by the
///   owning cache (8 B forward + 32 B cache-to-cache transfer);
/// * **write miss** — read-miss data path plus the upgrade invalidation
///   fan-out; completion is the later of data arrival and grant arrival;
/// * **replacement of an owned block** — a fire-and-forget 32 B writeback
///   to the home (charged to the evicting processor's traffic, but not
///   blocking it).
///
/// Overlapping transactions on the same block serialize at the home
/// (`dir_wait` bucket) — this is what makes hot synchronization words
/// expensive on the target, as in the paper's IS experience.
#[derive(Debug)]
pub struct TargetModel {
    net: Network,
    coherence: CoherenceController,
    memory: Vec<Facility>,
    block_free: FxHashMap<u64, SimTime>,
    /// Coherence-invariant observer (only under an enabled `CheckMode`).
    checker: Option<CoherenceChecker>,
    /// Network-conformance violation latched inside the infallible
    /// [`TargetModel::send`] path, polled at the next fallible boundary.
    net_violation: Option<CheckViolation>,
}

impl TargetModel {
    /// Builds the machine over `topo` with per-node caches of `cache`,
    /// running the Berkeley protocol.
    pub fn new(topo: Topology, cache: CacheConfig) -> Self {
        Self::with_protocol(topo, cache, ProtocolKind::Berkeley)
    }

    /// Builds the machine with an explicit coherence protocol.
    pub fn with_protocol(topo: Topology, cache: CacheConfig, protocol: ProtocolKind) -> Self {
        let p = topo.nodes();
        TargetModel {
            net: Network::new(topo),
            coherence: CoherenceController::with_protocol(p, cache, protocol),
            memory: vec![Facility::new(); p],
            block_free: FxHashMap::default(),
            checker: None,
            net_violation: None,
        }
    }

    /// Builds the machine from a full [`MachineConfig`], including the
    /// invariant-checking mode.
    pub fn with_config(topo: Topology, config: MachineConfig) -> Self {
        let p = topo.nodes();
        let mut m = Self::with_protocol(topo, config.cache, config.protocol);
        if config.check.enabled() {
            m.checker = Some(CoherenceChecker::new(p, config.protocol));
        }
        m
    }

    fn send(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
        buckets: &mut Buckets,
    ) -> Result<Delivery, TopologyError> {
        let d = self.net.try_send(at, NodeId(src), NodeId(dst), bytes)?;
        if src != dst {
            buckets.latency += d.latency;
            buckets.contention += d.contention;
            buckets.msgs += 1;
            buckets.bytes += bytes;
            if self.checker.is_some() && self.net_violation.is_none() {
                // Circuit-switched conformance: the message waits out link
                // contention, departs, and arrives exactly its transmission
                // time later, having crossed at least one link.
                let complaint = if d.depart != at + d.contention {
                    Some(format!(
                        "message {src}->{dst} injected at {at} with contention {} departed at {}",
                        d.contention, d.depart
                    ))
                } else if d.arrive != d.depart + d.latency {
                    Some(format!(
                        "message {src}->{dst} departed at {} with latency {} arrived at {}",
                        d.depart, d.latency, d.arrive
                    ))
                } else if d.hops == 0 {
                    Some(format!("remote message {src}->{dst} crossed zero links"))
                } else {
                    None
                };
                if let Some(message) = complaint {
                    self.net_violation = Some(CheckViolation {
                        invariant: "network-conformance",
                        message,
                        recent: Vec::new(),
                    });
                }
            }
        }
        Ok(d)
    }

    /// Serializes transactions per block at the home directory.
    fn block_start(&mut self, block: u64, arrive: SimTime, buckets: &mut Buckets) -> SimTime {
        let free = self
            .block_free
            .get(&block)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = arrive.max(free);
        buckets.dir_wait += start - arrive;
        start
    }

    /// Invalidation fan-out from `home`: returns the time all acks are in.
    fn invalidate(
        &mut self,
        t0: SimTime,
        home: usize,
        victims: &[usize],
        buckets: &mut Buckets,
    ) -> Result<SimTime, TopologyError> {
        let cycle = SimTime::from_ns(CYCLE_NS);
        let mut all_acked = t0;
        for &s in victims {
            let inv = self.send(t0, home, s, CTRL_BYTES, buckets)?;
            let ack = self.send(inv.arrive + cycle, s, home, CTRL_BYTES, buckets)?;
            all_acked = all_acked.max(ack.arrive);
        }
        Ok(all_acked)
    }

    /// Prices one access.
    ///
    /// # Errors
    ///
    /// [`RunError::UnallocatedAddress`] for an address no allocation
    /// covers; [`RunError::Route`] if the network cannot route a message.
    pub fn access(
        &mut self,
        at: SimTime,
        proc: usize,
        addr: Addr,
        amap: &AddressMap,
        kind: AccessKind,
    ) -> Result<Cost, RunError> {
        let mut buckets = Buckets::default();
        let cycle = SimTime::from_ns(CYCLE_NS);
        let block = addr.block();
        let home = amap.home_of(addr)?;

        let outcome = self.coherence.access(proc, block, kind);
        if let Some(chk) = &mut self.checker {
            chk.after_access(&self.coherence, at, proc, block, kind, &outcome)?;
        }
        let finish = match outcome {
            Outcome::Hit => {
                buckets.mem += cycle;
                at + cycle
            }
            Outcome::UpgradeHit { invalidated } => {
                let req = self.send(at, proc, home, CTRL_BYTES, &mut buckets)?;
                let t0 = self.block_start(block, req.arrive, &mut buckets);
                let all_acked = self.invalidate(t0, home, &invalidated, &mut buckets)?;
                let grant = self.send(all_acked, home, proc, CTRL_BYTES, &mut buckets)?;
                let finish = grant.arrive.max(at + cycle);
                self.block_free.insert(block, finish);
                finish
            }
            Outcome::Miss {
                supplier,
                invalidated,
                writeback,
                downgrade_writeback,
            } => {
                let req = self.send(at, proc, home, CTRL_BYTES, &mut buckets)?;
                let t0 = self.block_start(block, req.arrive, &mut buckets);

                // Data path.
                let data_arrive = match supplier {
                    Supplier::Memory => {
                        let grant = self.memory[home].reserve(t0, SimTime::from_ns(MEM_NS));
                        buckets.mem += SimTime::from_ns(MEM_NS);
                        buckets.dir_wait += grant.waited;
                        self.send(grant.end, home, proc, DATA_BYTES, &mut buckets)?
                            .arrive
                    }
                    Supplier::Owner(owner) => {
                        let fwd = self.send(t0, home, owner, CTRL_BYTES, &mut buckets)?;
                        self.send(fwd.arrive + cycle, owner, proc, DATA_BYTES, &mut buckets)?
                            .arrive
                    }
                };

                // Invalidation path (write misses with extant copies).
                let mut finish = data_arrive;
                if !invalidated.is_empty() {
                    let all_acked = self.invalidate(t0, home, &invalidated, &mut buckets)?;
                    let grant = self.send(all_acked, home, proc, CTRL_BYTES, &mut buckets)?;
                    finish = finish.max(grant.arrive);
                }
                let finish = finish.max(at + cycle);
                self.block_free.insert(block, finish);

                // Writeback of an owned victim: fire and forget.
                if let Some(wb) = writeback {
                    let wb_home = amap.home_of(Addr(wb.block * BLOCK_BYTES))?;
                    let w = self.send(at, proc, wb_home, DATA_BYTES, &mut buckets)?;
                    self.memory[wb_home].reserve(w.arrive, SimTime::from_ns(MEM_NS));
                }
                // WriteBackOnRead: the supplying owner also writes the
                // block back to its home (fire and forget).
                if let Some(wb) = downgrade_writeback {
                    let w = self.send(t0, wb.from, home, DATA_BYTES, &mut buckets)?;
                    self.memory[home].reserve(w.arrive, SimTime::from_ns(MEM_NS));
                }
                finish
            }
        };
        if let Some(v) = self.net_violation.take() {
            return Err(v.into());
        }
        Ok(Cost { finish, buckets })
    }

    /// Prices one explicit message: a single circuit-switched transfer.
    /// The sender drives its network interface for the whole transmission
    /// (circuit switching), so it is free only at arrival time.
    ///
    /// # Errors
    ///
    /// [`RunError::Route`] if the network cannot route the message.
    pub fn msg_send(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> Result<super::MsgCost, RunError> {
        let mut buckets = Buckets::default();
        let cycle = SimTime::from_ns(CYCLE_NS);
        let d = self.send(at, src, dst, bytes, &mut buckets)?;
        if let Some(v) = self.net_violation.take() {
            return Err(v.into());
        }
        Ok(super::MsgCost {
            sender_free: d.arrive.max(at + cycle),
            delivered: d.arrive.max(at + cycle),
            buckets,
        })
    }

    /// End-of-run invariant sweep: any latched network violation, then a
    /// full coherence-state consistency scan.
    pub fn final_check(&mut self) -> Option<CheckViolation> {
        if let Some(v) = self.net_violation.take() {
            return Some(v);
        }
        let chk = self.checker.as_ref()?;
        chk.verify_all(&self.coherence).err()
    }

    /// Digest of the coherence state (caches + directory), for the
    /// optimistic engine's rollback-purity audit.
    pub(crate) fn coherence_hash(&self) -> u64 {
        self.coherence.state_hash()
    }

    /// Run-report counters.
    pub fn summary(&self, p: usize) -> ModelSummary {
        let net = self.net.stats();
        let mut s = ModelSummary {
            net_messages: net.messages,
            net_bytes: net.bytes,
            net_latency: net.latency,
            net_contention: net.contention,
            bisection_crossings: net.bisection_crossings,
            ..ModelSummary::default()
        };
        for n in 0..p {
            let cs = self.coherence.cache_stats(n);
            s.cache_hits += cs.hits;
            s.cache_misses += cs.misses;
            s.invalidations += cs.invalidations;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(p: usize) -> (TargetModel, AddressMap) {
        let mut amap = AddressMap::new(p);
        for home in 0..p {
            amap.alloc(home, 64);
        }
        (
            TargetModel::new(Topology::full(p), CacheConfig::paper()),
            amap,
        )
    }

    #[test]
    fn read_miss_from_memory_costs_req_mem_data() {
        let (mut m, amap) = setup(2);
        let remote = Addr(512); // homed at 1
        let c = m
            .access(SimTime::ZERO, 0, remote, &amap, AccessKind::Read)
            .unwrap();
        // 8B request (400ns) + 300ns memory + 32B data (1600ns) = 2300ns.
        assert_eq!(c.finish, SimTime::from_ns(2300));
        assert_eq!(c.buckets.msgs, 2);
        assert_eq!(c.buckets.latency, SimTime::from_ns(2000));
        assert_eq!(c.buckets.mem, SimTime::from_ns(300));
    }

    #[test]
    fn hit_costs_one_cycle() {
        let (mut m, amap) = setup(2);
        let remote = Addr(512);
        let c1 = m
            .access(SimTime::ZERO, 0, remote, &amap, AccessKind::Read)
            .unwrap();
        let c2 = m
            .access(c1.finish, 0, remote, &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(c2.finish, c1.finish + SimTime::from_ns(CYCLE_NS));
        assert_eq!(c2.buckets.msgs, 0);
    }

    #[test]
    fn local_cold_miss_costs_memory_only() {
        let (mut m, amap) = setup(2);
        let c = m
            .access(SimTime::ZERO, 0, Addr(0), &amap, AccessKind::Read)
            .unwrap();
        // Request and data are zero-hop; only the 300ns module access.
        assert_eq!(c.finish, SimTime::from_ns(300));
        assert_eq!(c.buckets.msgs, 0);
    }

    #[test]
    fn upgrade_pays_invalidation_round_trips() {
        let (mut m, amap) = setup(4);
        let a = Addr(512); // homed at 1
        m.access(SimTime::ZERO, 0, a, &amap, AccessKind::Read)
            .unwrap();
        m.access(SimTime::ZERO, 2, a, &amap, AccessKind::Read)
            .unwrap();
        m.access(SimTime::ZERO, 3, a, &amap, AccessKind::Read)
            .unwrap();
        let w = m
            .access(SimTime::from_us(100), 0, a, &amap, AccessKind::Write)
            .unwrap();
        // req + 2 invals + 2 acks + grant = 6 control messages.
        assert_eq!(w.buckets.msgs, 6);
        // req(400) -> inval(400) -> +cycle ack(400) -> grant(400) ≈ 1630ns
        assert!(w.finish >= SimTime::from_us(100) + SimTime::from_ns(1600));
    }

    #[test]
    fn dirty_read_forwards_from_owner() {
        let (mut m, amap) = setup(4);
        let a = Addr(512); // homed at 1
                           // Node 2 writes (miss, becomes owner), then node 3 reads.
        m.access(SimTime::ZERO, 2, a, &amap, AccessKind::Write)
            .unwrap();
        let r = m
            .access(SimTime::from_us(100), 3, a, &amap, AccessKind::Read)
            .unwrap();
        // req(3->1) + fwd(1->2) + data(2->3): 400+400+1600 (+cycle).
        assert_eq!(r.buckets.msgs, 3);
        assert_eq!(r.buckets.bytes, 8 + 8 + 32);
    }

    #[test]
    fn same_block_transactions_serialize_at_home() {
        let (mut m, amap) = setup(4);
        let a = Addr(512);
        let c1 = m
            .access(SimTime::ZERO, 0, a, &amap, AccessKind::Read)
            .unwrap();
        // Overlapping read of the same block from another node waits.
        let c2 = m
            .access(SimTime::ZERO, 2, a, &amap, AccessKind::Read)
            .unwrap();
        assert!(c2.buckets.dir_wait > SimTime::ZERO);
        assert!(c2.finish > c1.finish);
    }

    #[test]
    fn write_miss_completion_covers_data_and_grant() {
        let (mut m, amap) = setup(4);
        let a = Addr(512);
        m.access(SimTime::ZERO, 2, a, &amap, AccessKind::Read)
            .unwrap();
        m.access(SimTime::ZERO, 3, a, &amap, AccessKind::Read)
            .unwrap();
        let w = m
            .access(SimTime::from_us(100), 0, a, &amap, AccessKind::Write)
            .unwrap();
        // req + data(from mem) + 2 invals + 2 acks + grant = 7 messages.
        assert_eq!(w.buckets.msgs, 7);
    }

    #[test]
    fn writeback_counts_traffic_but_does_not_block() {
        let mut amap = AddressMap::new(2);
        amap.alloc(0, 4096);
        let mut m = TargetModel::new(
            Topology::full(2),
            CacheConfig {
                size_bytes: 64,
                assoc: 2,
                block_bytes: 32,
            },
        );
        let w = m
            .access(SimTime::ZERO, 1, Addr(0), &amap, AccessKind::Write)
            .unwrap();
        let r1 = m
            .access(w.finish, 1, Addr(32), &amap, AccessKind::Read)
            .unwrap();
        // Third access evicts the dirty block 0 -> 32B writeback message.
        let r2 = m
            .access(r1.finish, 1, Addr(64), &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(r2.buckets.msgs, 3); // req + data + writeback
        assert_eq!(r2.buckets.bytes, 8 + 32 + 32);
        // Completion = req + mem + data; the writeback does not extend it.
        assert_eq!(r2.finish - r1.finish, SimTime::from_ns(2300));
    }

    #[test]
    fn control_messages_are_short() {
        // The target's 8B control messages are where LogP's fixed 32B L is
        // pessimistic (paper §6.1).
        let (mut m, amap) = setup(2);
        let a = Addr(512);
        let r = m
            .access(SimTime::ZERO, 0, a, &amap, AccessKind::Read)
            .unwrap();
        // 8B request costs 400ns, not 1600ns.
        assert_eq!(r.buckets.latency, SimTime::from_ns(400 + 1600));
    }
}
