//! The LogP-abstracted network shared by the LogP and CLogP machines.

use spasm_check::{CheckViolation, NetChecker};
use spasm_desim::SimTime;
use spasm_logp::{GapTracker, LogPParams, NetEvent};
use spasm_topology::Topology;

use crate::{Buckets, DATA_BYTES};

use super::MachineConfig;

/// Message timing under the LogP abstraction.
///
/// A message from `src` to `dst`:
///
/// 1. waits for the sender's network interface per the gap policy
///    (waiting charged as **contention**);
/// 2. spends `L` in the network (charged as **latency** — L is fixed at
///    the 32-byte transmission time regardless of the actual payload,
///    which is the pessimism the paper discusses);
/// 3. waits for the receiver's interface per the gap policy (contention).
///
/// Local messages (`src == dst`) are free and never touch the interface.
#[derive(Debug)]
pub struct AbstractNet {
    params: LogPParams,
    gaps: GapTracker,
    messages: u64,
    bytes: u64,
    latency: SimTime,
    contention: SimTime,
    /// Conformance checker (only under an enabled `CheckMode`). Message
    /// granting is infallible hot-path code, so a detected violation is
    /// latched here and polled by the owning model at its next fallible
    /// boundary via [`AbstractNet::take_violation`].
    checker: Option<NetChecker>,
}

impl AbstractNet {
    /// Builds the abstraction for `topo` with the configured gap policy
    /// and g scaling.
    pub fn new(topo: &Topology, config: &MachineConfig) -> Self {
        let params = LogPParams::for_topology(topo).with_g_scaled(config.g_scale);
        AbstractNet {
            params,
            gaps: GapTracker::new(topo.nodes(), params.g, config.gap_policy),
            messages: 0,
            bytes: 0,
            latency: SimTime::ZERO,
            contention: SimTime::ZERO,
            checker: config
                .check
                .enabled()
                .then(|| NetChecker::new(topo.nodes(), params.l, params.g, config.gap_policy)),
        }
    }

    /// The derived parameters.
    pub fn params(&self) -> LogPParams {
        self.params
    }

    /// Delivers one abstract message; returns the delivery time and
    /// charges `buckets`.
    pub fn message(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        buckets: &mut Buckets,
    ) -> SimTime {
        self.message_timed(at, src, dst, buckets).1
    }

    /// Like [`AbstractNet::message`], but also returns when the sender's
    /// network interface slot began — the point an asynchronous LogP
    /// sender is free to continue: `(sender_slot, delivered)`.
    pub fn message_timed(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        buckets: &mut Buckets,
    ) -> (SimTime, SimTime) {
        if src == dst {
            return (at, at);
        }
        let send = self.gaps.acquire(src, NetEvent::Send, at);
        buckets.contention += send.waited;
        let arrive = send.start + self.params.l;
        buckets.latency += self.params.l;
        let recv = self.gaps.acquire(dst, NetEvent::Recv, arrive);
        buckets.contention += recv.waited;
        buckets.msgs += 1;
        buckets.bytes += DATA_BYTES;
        self.messages += 1;
        self.bytes += DATA_BYTES;
        self.latency += self.params.l;
        self.contention += send.waited + recv.waited;
        if let Some(chk) = &mut self.checker {
            chk.observe_message(at, src, dst, send.start, arrive, recv.start);
        }
        (send.start, recv.start)
    }

    /// The first network-conformance violation latched since the last
    /// poll, if any.
    pub fn take_violation(&mut self) -> Option<CheckViolation> {
        self.checker.as_mut().and_then(NetChecker::take_violation)
    }

    /// A request/response pair `src → dst → src`; returns completion time.
    pub fn round_trip(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        buckets: &mut Buckets,
    ) -> SimTime {
        let there = self.message(at, src, dst, buckets);
        self.message(there, dst, src, buckets)
    }

    /// Totals for the run report: `(messages, bytes, latency, contention)`.
    pub fn totals(&self) -> (u64, u64, SimTime, SimTime) {
        (self.messages, self.bytes, self.latency, self.contention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_logp::GapPolicy;

    fn net(p: usize) -> AbstractNet {
        AbstractNet::new(&Topology::hypercube(p), &MachineConfig::default())
    }

    #[test]
    fn single_message_costs_l() {
        let mut n = net(4);
        let mut b = Buckets::default();
        let t = n.message(SimTime::ZERO, 0, 1, &mut b);
        assert_eq!(t, SimTime::from_ns(1600));
        assert_eq!(b.latency, SimTime::from_ns(1600));
        assert_eq!(b.contention, SimTime::ZERO);
        assert_eq!(b.msgs, 1);
    }

    #[test]
    fn round_trip_costs_two_l() {
        let mut n = net(4);
        let mut b = Buckets::default();
        let t = n.round_trip(SimTime::ZERO, 0, 3, &mut b);
        // cube g = L, so the reply's send at node 3 is gated by its recv:
        // recv at 1600 -> send allowed at 3200 -> deliver 4800, recv gap
        // at node 0 allows 3200... recv at 0 happens at 4800 (>= gap).
        assert_eq!(b.msgs, 2);
        assert_eq!(b.latency, SimTime::from_ns(3200));
        assert!(t >= SimTime::from_ns(3200));
    }

    #[test]
    fn back_to_back_sends_pay_gap() {
        let mut n = net(4); // g = 1600 on the cube
        let mut b = Buckets::default();
        n.message(SimTime::ZERO, 0, 1, &mut b);
        let before = b.contention;
        n.message(SimTime::ZERO, 0, 2, &mut b);
        assert!(b.contention > before, "second send must wait out g");
    }

    #[test]
    fn local_messages_free() {
        let mut n = net(4);
        let mut b = Buckets::default();
        let t = n.message(SimTime::from_ns(5), 2, 2, &mut b);
        assert_eq!(t, SimTime::from_ns(5));
        assert_eq!(b.msgs, 0);
        assert_eq!(n.totals().0, 0);
    }

    #[test]
    fn per_event_type_policy_relaxes_send_after_recv() {
        let topo = Topology::hypercube(4);
        let unified = MachineConfig::default();
        let per_type = MachineConfig {
            gap_policy: GapPolicy::PerEventType,
            ..MachineConfig::default()
        };
        let mut b1 = Buckets::default();
        let mut n1 = AbstractNet::new(&topo, &unified);
        let t1 = n1.round_trip(SimTime::ZERO, 0, 1, &mut b1);
        let mut b2 = Buckets::default();
        let mut n2 = AbstractNet::new(&topo, &per_type);
        let t2 = n2.round_trip(SimTime::ZERO, 0, 1, &mut b2);
        assert!(t2 < t1, "per-event-type gap must be faster ({t2} vs {t1})");
        assert!(b2.contention < b1.contention);
    }
}
