//! The four machine characterizations behind one dispatch enum.

mod abstract_net;
mod clogp;
mod logp_machine;
mod pram;
mod target;

pub(crate) use abstract_net::AbstractNet;

use spasm_cache::{AccessKind, CacheConfig, ProtocolKind};
use spasm_check::{CheckMode, CheckViolation};
use spasm_desim::SimTime;
use spasm_logp::GapPolicy;
use spasm_topology::Topology;

use crate::engine::{EngineMode, RunError};
use crate::faults::{FaultPlan, RunBudget};
use crate::{Addr, AddressMap, Buckets};

pub use clogp::CLogPModel;
pub use logp_machine::LogPModel;
pub use pram::PramModel;
pub use target::TargetModel;

/// Which machine characterization to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Ideal PRAM: unit-cost conflict-free memory. Produces SPASM's
    /// *ideal time* (algorithmic overheads only).
    Pram,
    /// The CC-NUMA target: coherent caches, full Berkeley/directory
    /// protocol, link-level network.
    Target,
    /// The LogP abstraction: no caches, L/g network.
    LogP,
    /// LogP plus the ideal coherent cache.
    CLogP,
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MachineKind::Pram => "pram",
            MachineKind::Target => "target",
            MachineKind::LogP => "logp",
            MachineKind::CLogP => "clogp",
        };
        f.write_str(s)
    }
}

/// Tunables for machine construction beyond the kind and topology.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Cache geometry for the target and CLogP machines.
    pub cache: CacheConfig,
    /// Gap enforcement policy for the LogP-abstracted machines
    /// (ablation A1 flips this to [`GapPolicy::PerEventType`]).
    pub gap_policy: GapPolicy,
    /// Multiplier on the derived g (ablation: "a better estimate of g").
    pub g_scale: f64,
    /// Coherence protocol for the target machine (the CLogP ideal cache
    /// always runs Berkeley state transitions — the abstraction under
    /// study). Ablation for the Wood et al. protocol-insensitivity claim.
    pub protocol: ProtocolKind,
    /// Deterministic fault plan to run under, if any. `None` (the
    /// default) simulates a fault-free machine.
    pub faults: Option<FaultPlan>,
    /// Bounds on the run (events / simulated time). Unlimited by default.
    pub budget: RunBudget,
    /// How much online invariant checking the run performs. Off (the
    /// default) constructs no checker state and adds no per-event cost;
    /// see [`CheckMode`] for the lenient/strict distinction.
    pub check: CheckMode,
    /// Streaming interval telemetry. `None` (the default) collects
    /// nothing and adds one `Option` test per event; `Some` buckets the
    /// run into fixed sim-time intervals (see [`crate::TelemetryConfig`])
    /// and the report carries one [`crate::IntervalRecord`] per non-empty
    /// bucket.
    pub telemetry: Option<crate::TelemetryConfig>,
    /// Which execution strategy drives the event loop. Sequential (the
    /// default) and optimistic produce bit-identical results (see
    /// [`EngineMode`]); the knob still goes into the sweep fingerprint
    /// so resumed journals know which engine produced their points.
    pub engine: EngineMode,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cache: CacheConfig::paper(),
            gap_policy: GapPolicy::Unified,
            g_scale: 1.0,
            protocol: ProtocolKind::Berkeley,
            faults: None,
            budget: RunBudget::UNLIMITED,
            check: CheckMode::Off,
            telemetry: None,
            engine: EngineMode::Sequential,
        }
    }
}

impl MachineConfig {
    /// Absorbs every outcome-affecting field into a sweep journal
    /// fingerprint, so a resumed sweep refuses a journal written under a
    /// different machine configuration. Composite fields go in via their
    /// `Debug` rendering (length-prefixed by the fingerprint, so fields
    /// cannot alias across boundaries); `g_scale` goes in as exact bits.
    pub fn absorb_fingerprint(&self, fp: &mut spasm_journal::Fingerprint) {
        fp.absorb_str("machine-config");
        fp.absorb_str(&format!("{:?}", self.cache));
        fp.absorb_str(&format!("{:?}", self.gap_policy));
        fp.absorb_f64(self.g_scale);
        fp.absorb_str(&format!("{:?}", self.protocol));
        fp.absorb_str(&format!("{:?}", self.faults));
        fp.absorb_str(&format!("{:?}", self.budget));
        fp.absorb_str(&format!("{:?}", self.check));
        fp.absorb_str(&format!("{:?}", self.telemetry));
        fp.absorb_str(&format!("{:?}", self.engine));
    }
}

/// The time-and-traffic price of one memory operation.
#[derive(Debug, Clone, Copy)]
pub struct Cost {
    /// When the operation completes and the processor may continue.
    pub finish: SimTime,
    /// Overhead charges for the operation.
    pub buckets: Buckets,
}

/// The price of one explicit (message-passing) send.
#[derive(Debug, Clone, Copy)]
pub struct MsgCost {
    /// When the sender may continue. On the circuit-switched target the
    /// sender holds the circuit for the whole transmission; on the LogP
    /// machines the send is asynchronous and the sender is free once its
    /// network-interface slot is granted.
    pub sender_free: SimTime,
    /// When the payload becomes receivable at the destination.
    pub delivered: SimTime,
    /// Overhead charges for the message (to the sender's buckets).
    pub buckets: Buckets,
}

/// Aggregate machine-side counters for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelSummary {
    /// Network messages (real or abstracted).
    pub net_messages: u64,
    /// Bytes carried.
    pub net_bytes: u64,
    /// Total network transmission (latency) time.
    pub net_latency: SimTime,
    /// Total network waiting (contention) time.
    pub net_contention: SimTime,
    /// Cache hits summed over nodes (cached machines).
    pub cache_hits: u64,
    /// Cache misses summed over nodes (cached machines).
    pub cache_misses: u64,
    /// Lines invalidated by coherence actions (cached machines).
    pub invalidations: u64,
    /// Messages that crossed the canonical bisection (target machine
    /// only — the abstracted network has no geometry to cross).
    pub bisection_crossings: u64,
}

impl ModelSummary {
    /// Fraction of messages that crossed the bisection (0 when idle).
    pub fn crossing_fraction(&self) -> f64 {
        if self.net_messages == 0 {
            0.0
        } else {
            self.bisection_crossings as f64 / self.net_messages as f64
        }
    }
}

/// One of the four machine models.
///
/// An enum rather than a trait object so the engine's hot loop dispatches
/// statically-knowable variants and the whole simulator stays trivially
/// `Send`.
#[derive(Debug)]
pub enum Model {
    /// See [`MachineKind::Pram`].
    Pram(PramModel),
    /// See [`MachineKind::Target`].
    Target(TargetModel),
    /// See [`MachineKind::LogP`].
    LogP(LogPModel),
    /// See [`MachineKind::CLogP`].
    CLogP(CLogPModel),
}

impl Model {
    /// Builds the model for `kind` over `topo` with `config`.
    pub fn new(kind: MachineKind, topo: &Topology, config: MachineConfig) -> Self {
        match kind {
            MachineKind::Pram => Model::Pram(PramModel::new()),
            MachineKind::Target => Model::Target(TargetModel::with_config(topo.clone(), config)),
            MachineKind::LogP => Model::LogP(LogPModel::new(topo, config)),
            MachineKind::CLogP => Model::CLogP(CLogPModel::new(topo, config)),
        }
    }

    /// Which kind this model is.
    pub fn kind(&self) -> MachineKind {
        match self {
            Model::Pram(_) => MachineKind::Pram,
            Model::Target(_) => MachineKind::Target,
            Model::LogP(_) => MachineKind::LogP,
            Model::CLogP(_) => MachineKind::CLogP,
        }
    }

    /// Prices one access of `kind` by `proc` to `addr` starting at `at`.
    ///
    /// # Errors
    ///
    /// [`RunError::UnallocatedAddress`] when `addr` lies outside every
    /// allocation; [`RunError::Route`] if the target network cannot route
    /// the access's messages.
    pub fn access(
        &mut self,
        at: SimTime,
        proc: usize,
        addr: Addr,
        amap: &AddressMap,
        kind: AccessKind,
    ) -> Result<Cost, RunError> {
        match self {
            Model::Pram(m) => Ok(m.access(at)),
            Model::Target(m) => m.access(at, proc, addr, amap, kind),
            Model::LogP(m) => m.access(at, proc, addr, amap),
            Model::CLogP(m) => m.access(at, proc, addr, amap, kind),
        }
    }

    /// Prices one explicit message from `src` to `dst` of `bytes` bytes
    /// injected at `at`.
    ///
    /// # Errors
    ///
    /// [`RunError::Route`] if the target network cannot route the message
    /// (the abstracted networks never fail here).
    pub fn msg_send(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> Result<MsgCost, RunError> {
        let mut buckets = Buckets::default();
        let cycle = SimTime::from_ns(crate::CYCLE_NS);
        Ok(match self {
            Model::Pram(_) => MsgCost {
                sender_free: at + cycle,
                delivered: at + cycle,
                buckets: {
                    buckets.mem += cycle;
                    buckets
                },
            },
            Model::Target(m) => m.msg_send(at, src, dst, bytes)?,
            Model::LogP(m) => {
                let (slot, delivered) = m.net_mut().message_timed(at, src, dst, &mut buckets);
                if let Some(v) = m.net_mut().take_violation() {
                    return Err(v.into());
                }
                MsgCost {
                    sender_free: slot.max(at + cycle),
                    delivered,
                    buckets,
                }
            }
            Model::CLogP(m) => {
                let (slot, delivered) = m.net_mut().message_timed(at, src, dst, &mut buckets);
                if let Some(v) = m.net_mut().take_violation() {
                    return Err(v.into());
                }
                MsgCost {
                    sender_free: slot.max(at + cycle),
                    delivered,
                    buckets,
                }
            }
        })
    }

    /// End-of-run invariant sweep: a full coherence-state consistency scan
    /// on the cached machines plus a final poll of any latched network
    /// violation. `None` when everything (or nothing — checks off) holds.
    pub fn final_check(&mut self) -> Option<CheckViolation> {
        match self {
            Model::Pram(_) => None,
            Model::Target(m) => m.final_check(),
            Model::LogP(m) => m.net_mut().take_violation(),
            Model::CLogP(m) => m.final_check(),
        }
    }

    /// Whether `WaitUntil` must poll (re-issue reads) rather than idle
    /// until the watched word changes. True only for the cache-less LogP
    /// machine, where a spin loop really does re-touch the network.
    pub fn is_polling(&self) -> bool {
        matches!(self, Model::LogP(_))
    }

    /// A digest of the model's mutable coherence state (0 for the
    /// cache-less machines, which keep no per-access mutable state worth
    /// auditing). The optimistic engine's strict mode hashes this around
    /// every rollback to prove replay never perturbs committed state.
    pub fn state_hash(&self) -> u64 {
        match self {
            Model::Pram(_) => 0,
            Model::Target(m) => m.coherence_hash(),
            Model::LogP(_) => 0,
            Model::CLogP(m) => m.coherence_hash(),
        }
    }

    /// Aggregate counters for the run report.
    pub fn summary(&self, p: usize) -> ModelSummary {
        match self {
            Model::Pram(_) => ModelSummary::default(),
            Model::Target(m) => m.summary(p),
            Model::LogP(m) => m.summary(),
            Model::CLogP(m) => m.summary(p),
        }
    }
}
