//! The CLogP machine: LogP plus an ideal coherent cache.

use spasm_cache::{AccessKind, CoherenceController, Outcome, ProtocolKind};
use spasm_check::{CheckViolation, CoherenceChecker};
use spasm_desim::SimTime;
use spasm_topology::Topology;

use crate::engine::RunError;
use crate::{Addr, AddressMap, Buckets, BLOCK_BYTES, CYCLE_NS, MEM_NS};

use super::{AbstractNet, Cost, MachineConfig, ModelSummary};

/// The paper's §3.2 machine: the LogP machine "augmented with an
/// abstraction for a cache at each processing node. A network access is
/// thus incurred only when the memory request cannot be satisfied by the
/// cache or local memory. The caches are maintained coherent … but the
/// overhead for maintaining the coherence is not modeled."
///
/// Concretely: the **same** Berkeley state machine as the target runs under
/// every access, but
///
/// * upgrades (invalidations, ownership changes) are free — states flip
///   globally at zero cost and zero traffic;
/// * only true data movement is priced: a miss to a remotely-homed block is
///   one abstract round trip (request + data), a miss to a locally-homed
///   block is a memory access, and an owned victim's writeback is one
///   fire-and-forget message;
/// * hits cost a cycle.
///
/// This "represents the minimum number of network messages that any
/// invalidation-based coherence protocol may hope to achieve."
#[derive(Debug)]
pub struct CLogPModel {
    net: AbstractNet,
    coherence: CoherenceController,
    /// Coherence-invariant observer (only under an enabled `CheckMode`).
    checker: Option<CoherenceChecker>,
}

impl CLogPModel {
    /// Builds the machine.
    pub fn new(topo: &Topology, config: MachineConfig) -> Self {
        CLogPModel {
            net: AbstractNet::new(topo, &config),
            // The ideal cache always runs Berkeley transitions, whatever
            // protocol the target is configured with.
            coherence: CoherenceController::new(topo.nodes(), config.cache),
            checker: config
                .check
                .enabled()
                .then(|| CoherenceChecker::new(topo.nodes(), ProtocolKind::Berkeley)),
        }
    }

    /// Prices one access.
    ///
    /// # Errors
    ///
    /// [`RunError::UnallocatedAddress`] for an address no allocation
    /// covers.
    pub fn access(
        &mut self,
        at: SimTime,
        proc: usize,
        addr: Addr,
        amap: &AddressMap,
        kind: AccessKind,
    ) -> Result<Cost, RunError> {
        let mut buckets = Buckets::default();
        let cycle = SimTime::from_ns(CYCLE_NS);
        let outcome = self.coherence.access(proc, addr.block(), kind);
        if let Some(chk) = &mut self.checker {
            chk.after_access(&self.coherence, at, proc, addr.block(), kind, &outcome)?;
        }
        let finish = match outcome {
            // Present with sufficient rights, or upgradable for free:
            // coherence actions cost nothing on this machine.
            Outcome::Hit | Outcome::UpgradeHit { .. } => {
                buckets.mem += cycle;
                at + cycle
            }
            Outcome::Miss { writeback, .. } => {
                // True data movement: fetch the block.
                let home = amap.home_of(addr)?;
                let finish = if home == proc {
                    buckets.mem += SimTime::from_ns(MEM_NS);
                    at + SimTime::from_ns(MEM_NS)
                } else {
                    self.net.round_trip(at, proc, home, &mut buckets)
                };
                // An owned victim is written back (fire and forget).
                if let Some(wb) = writeback {
                    let wb_home = amap.home_of(Addr(wb.block * BLOCK_BYTES))?;
                    self.net.message(at, proc, wb_home, &mut buckets);
                }
                finish
            }
        };
        if let Some(v) = self.net.take_violation() {
            return Err(v.into());
        }
        Ok(Cost { finish, buckets })
    }

    /// End-of-run invariant sweep: any latched network violation, then a
    /// full coherence-state consistency scan.
    pub fn final_check(&mut self) -> Option<CheckViolation> {
        if let Some(v) = self.net.take_violation() {
            return Some(v);
        }
        let chk = self.checker.as_ref()?;
        chk.verify_all(&self.coherence).err()
    }

    /// Digest of the ideal-cache coherence state, for the optimistic
    /// engine's rollback-purity audit.
    pub(crate) fn coherence_hash(&self) -> u64 {
        self.coherence.state_hash()
    }

    /// The derived LogP parameters in force.
    pub fn params(&self) -> spasm_logp::LogPParams {
        self.net.params()
    }

    /// Mutable access to the abstract network (explicit messaging).
    pub(crate) fn net_mut(&mut self) -> &mut AbstractNet {
        &mut self.net
    }

    /// Run-report counters.
    pub fn summary(&self, p: usize) -> ModelSummary {
        let (net_messages, net_bytes, net_latency, net_contention) = self.net.totals();
        let mut s = ModelSummary {
            net_messages,
            net_bytes,
            net_latency,
            net_contention,
            ..ModelSummary::default()
        };
        for n in 0..p {
            let cs = self.coherence.cache_stats(n);
            s.cache_hits += cs.hits;
            s.cache_misses += cs.misses;
            s.invalidations += cs.invalidations;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CLogPModel, AddressMap) {
        let topo = Topology::full(4);
        let mut amap = AddressMap::new(4);
        for home in 0..4 {
            amap.alloc(home, 64);
        }
        (CLogPModel::new(&topo, MachineConfig::default()), amap)
    }

    #[test]
    fn first_remote_read_pays_then_hits() {
        let (mut m, amap) = setup();
        let remote = Addr(512); // homed at 1
        let c1 = m
            .access(SimTime::ZERO, 0, remote, &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(c1.buckets.msgs, 2);
        let c2 = m
            .access(c1.finish, 0, remote, &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(c2.buckets.msgs, 0);
        assert_eq!(c2.finish, c1.finish + SimTime::from_ns(CYCLE_NS));
    }

    #[test]
    fn spatial_locality_one_fetch_per_block() {
        // Four consecutive words share a 32-byte block: one round trip
        // total, versus four on the LogP machine (the paper's FFT 4x).
        let (mut m, amap) = setup();
        let base = Addr(512);
        let mut t = SimTime::ZERO;
        let mut msgs = 0;
        for w in 0..4 {
            let c = m
                .access(t, 0, base.offset_words(w), &amap, AccessKind::Read)
                .unwrap();
            msgs += c.buckets.msgs;
            t = c.finish;
        }
        assert_eq!(msgs, 2); // one request + one data reply
    }

    #[test]
    fn upgrade_is_free_paper_example() {
        // §3.2: block valid in two caches; a write generates an
        // invalidation on the target but NO network access here; the other
        // processor's next read misses on both machines.
        let (mut m, amap) = setup();
        let a = Addr(512); // homed at node 1; procs 0 and 2 are remote
        m.access(SimTime::ZERO, 0, a, &amap, AccessKind::Read)
            .unwrap();
        m.access(SimTime::ZERO, 2, a, &amap, AccessKind::Read)
            .unwrap();
        let w = m
            .access(SimTime::ZERO, 0, a, &amap, AccessKind::Write)
            .unwrap();
        assert_eq!(w.buckets.msgs, 0, "upgrade must be free");
        let r = m
            .access(SimTime::ZERO, 2, a, &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(r.buckets.msgs, 2, "re-read is a true communication");
    }

    #[test]
    fn local_miss_costs_memory_not_network() {
        let (mut m, amap) = setup();
        let local = Addr(0);
        let c = m
            .access(SimTime::ZERO, 0, local, &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(c.buckets.msgs, 0);
        assert_eq!(c.finish, SimTime::from_ns(MEM_NS));
    }

    #[test]
    fn dirty_eviction_writes_back_one_message() {
        let topo = Topology::full(2);
        let mut amap = AddressMap::new(2);
        amap.alloc(0, 4096); // lots of words at node 0
        let config = MachineConfig {
            cache: spasm_cache::CacheConfig {
                size_bytes: 64, // 1 set x 2 ways: tiny, evicts fast
                assoc: 2,
                block_bytes: 32,
            },
            ..MachineConfig::default()
        };
        let mut m = CLogPModel::new(&topo, config);
        // Node 1 dirties block 0, then reads blocks 1 and 2 evicting it.
        let w = m
            .access(SimTime::ZERO, 1, Addr(0), &amap, AccessKind::Write)
            .unwrap();
        assert_eq!(w.buckets.msgs, 2);
        let r1 = m
            .access(w.finish, 1, Addr(32), &amap, AccessKind::Read)
            .unwrap();
        assert_eq!(r1.buckets.msgs, 2);
        let r2 = m
            .access(r1.finish, 1, Addr(64), &amap, AccessKind::Read)
            .unwrap();
        // fetch round trip (2) + writeback of dirty block 0 (1)
        assert_eq!(r2.buckets.msgs, 3);
    }
}
