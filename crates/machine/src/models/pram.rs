//! The ideal PRAM machine: SPASM's *ideal time* metric.

use spasm_desim::SimTime;

use crate::{Buckets, CYCLE_NS};

use super::Cost;

/// Unit-cost, conflict-free shared memory.
///
/// "Ideal time is the time taken by the parallel program to execute on an
/// ideal machine such as the PRAM. This metric includes the algorithmic
/// overheads [serial fraction, work imbalance] but does not include any
/// overheads arising from architectural limitations." Every memory
/// operation costs one cycle; synchronization waiting still accrues (it is
/// algorithmic).
#[derive(Debug, Default)]
pub struct PramModel {}

impl PramModel {
    /// Creates the model.
    pub fn new() -> Self {
        PramModel {}
    }

    /// Every access costs one CPU cycle.
    pub fn access(&mut self, at: SimTime) -> Cost {
        let mut buckets = Buckets::default();
        buckets.mem += SimTime::from_ns(CYCLE_NS);
        Cost {
            finish: at + SimTime::from_ns(CYCLE_NS),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_accesses() {
        let mut m = PramModel::new();
        let c = m.access(SimTime::from_ns(90));
        assert_eq!(c.finish, SimTime::from_ns(120));
        assert_eq!(c.buckets.mem, SimTime::from_ns(30));
        assert_eq!(c.buckets.msgs, 0);
        assert_eq!(c.buckets.latency, SimTime::ZERO);
    }
}
