//! SPASM's overhead separation: per-processor time buckets.

use spasm_desim::SimTime;

/// The separated overhead buckets SPASM reports (§3.3).
///
/// * `busy` — explicitly charged computation (the algorithmic component);
/// * `mem` — cache-hit and local-memory access time;
/// * `latency` — contention-free message transmission time: "the time that
///   a message would have taken for transmission in a contention free
///   environment is charged to the latency overhead";
/// * `contention` — "the rest of the time spent by a message in the network
///   waiting for links to become free" — on the LogP-abstracted machines
///   this is the g-gap waiting time;
/// * `dir_wait` — waiting for a busy directory/memory module at the home
///   (target machine only; reported separately because the paper's
///   latency/contention split is strictly about the network);
/// * `sync` — time spent spinning on synchronization flags after the first
///   unsuccessful check.
///
/// `msgs`/`bytes` count network messages attributable to this processor's
/// operations (the paper reads message counts off the latency overhead;
/// we also track them directly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Buckets {
    /// Explicit computation time.
    pub busy: SimTime,
    /// Cache-hit / local-memory time.
    pub mem: SimTime,
    /// Contention-free message transmission time.
    pub latency: SimTime,
    /// Network waiting time (links or LogP gap).
    pub contention: SimTime,
    /// Home-node directory/memory occupancy waiting (target only).
    pub dir_wait: SimTime,
    /// Synchronization spin time.
    pub sync: SimTime,
    /// Network messages sent on behalf of this processor's operations.
    pub msgs: u64,
    /// Bytes carried by those messages.
    pub bytes: u64,
}

impl Buckets {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &Buckets) {
        self.busy += other.busy;
        self.mem += other.mem;
        self.latency += other.latency;
        self.contention += other.contention;
        self.dir_wait += other.dir_wait;
        self.sync += other.sync;
        self.msgs += other.msgs;
        self.bytes += other.bytes;
    }
}

/// Final statistics for one simulated processor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcStats {
    /// Overhead buckets accumulated over the run.
    pub buckets: Buckets,
    /// The processor's completion time.
    pub finish: SimTime,
    /// Operations issued (requests through the engine).
    pub ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut a = Buckets {
            busy: SimTime::from_ns(10),
            msgs: 2,
            ..Buckets::default()
        };
        let b = Buckets {
            busy: SimTime::from_ns(5),
            latency: SimTime::from_ns(7),
            msgs: 3,
            bytes: 96,
            ..Buckets::default()
        };
        a.add(&b);
        assert_eq!(a.busy, SimTime::from_ns(15));
        assert_eq!(a.latency, SimTime::from_ns(7));
        assert_eq!(a.msgs, 5);
        assert_eq!(a.bytes, 96);
    }
}
