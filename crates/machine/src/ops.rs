//! The request/response protocol between application code and the engine,
//! plus the typed convenience wrapper application kernels actually use.

use spasm_desim::CoroCtx;

use crate::Addr;

/// An atomic read-modify-write operation (coherence-wise, a write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// Sets the word to 1; returns the old value. The building block of
    /// test-and-set locks.
    TestAndSet,
    /// Adds the operand; returns the old value.
    FetchAdd(u64),
    /// Stores the operand; returns the old value.
    Swap(u64),
}

impl RmwOp {
    /// The value stored after applying this operation to `old`.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            RmwOp::TestAndSet => 1,
            RmwOp::FetchAdd(n) => old.wrapping_add(n),
            RmwOp::Swap(n) => n,
        }
    }
}

/// A predicate over a word's value, for [`MemReq::WaitUntil`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// Value equals the operand.
    Eq(u64),
    /// Value differs from the operand.
    Ne(u64),
    /// Value is `>=` the operand.
    Ge(u64),
}

impl Pred {
    /// Evaluates the predicate.
    pub fn eval(self, value: u64) -> bool {
        match self {
            Pred::Eq(x) => value == x,
            Pred::Ne(x) => value != x,
            Pred::Ge(x) => value >= x,
        }
    }
}

/// A simulated operation issued by application code.
///
/// Everything an application does that costs simulated time goes through
/// one of these; pure Rust computation between requests is free (its cost
/// is accounted explicitly with [`MemReq::Compute`], mirroring how SPASM
/// executes non-shared instructions natively and charges cycle counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemReq {
    /// Local computation of the given number of CPU cycles.
    Compute {
        /// Cycles at 30 ns each.
        cycles: u64,
    },
    /// Shared-memory load; responds with the value.
    Read {
        /// Word-aligned address.
        addr: Addr,
    },
    /// Shared-memory store; responds with an ack.
    Write {
        /// Word-aligned address.
        addr: Addr,
        /// Value to store.
        value: u64,
    },
    /// Atomic read-modify-write; responds with the *old* value.
    Rmw {
        /// Word-aligned address.
        addr: Addr,
        /// The operation.
        op: RmwOp,
    },
    /// Spin on `addr` until `pred` holds; responds with the satisfying
    /// value. On cached machines the spin idles in-cache between changes;
    /// on the LogP machine every poll is a network round trip.
    WaitUntil {
        /// Word-aligned address.
        addr: Addr,
        /// Release condition.
        pred: Pred,
    },
    /// Explicit message send (the message-passing platform SPASM also
    /// supports). The sender blocks until the message is injected; the
    /// payload becomes receivable at `dst` once it arrives.
    Send {
        /// Destination processor.
        dst: usize,
        /// Message size in bytes (1..=32; the paper's maximum).
        bytes: u64,
        /// Matching tag.
        tag: u64,
        /// One word of payload.
        value: u64,
    },
    /// Blocking receive of the oldest arrived message with `tag`;
    /// responds with its payload.
    Recv {
        /// Matching tag.
        tag: u64,
    },
}

/// The engine's response to a [`MemReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResp {
    /// Initial resume delivered when a processor starts.
    Start,
    /// The value produced by a read, RMW (old value), or satisfied wait.
    Value(u64),
    /// Completion of a compute or write.
    Ack,
}

impl MemResp {
    fn value(self) -> u64 {
        match self {
            MemResp::Value(v) => v,
            other => panic!("expected value response, got {other:?}"),
        }
    }
}

/// Typed convenience wrapper around the raw coroutine channel.
///
/// Application kernels receive a `&CoroCtx` and wrap it in a `MemCtx` to
/// get ergonomic `read`/`write`/`compute`/... methods. The wrapper is free:
/// it owns nothing and adds no simulation semantics.
#[derive(Debug, Clone, Copy)]
pub struct MemCtx<'a> {
    ctx: &'a CoroCtx<MemReq, MemResp>,
}

impl<'a> MemCtx<'a> {
    /// Wraps a coroutine context.
    pub fn new(ctx: &'a CoroCtx<MemReq, MemResp>) -> Self {
        MemCtx { ctx }
    }

    /// This processor's id.
    pub fn id(&self) -> usize {
        self.ctx.id()
    }

    /// Charges `cycles` cycles of local computation.
    pub fn compute(&self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.ctx.call(MemReq::Compute { cycles });
    }

    /// Loads the word at `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        self.ctx.call(MemReq::Read { addr }).value()
    }

    /// Stores `value` at `addr`.
    pub fn write(&self, addr: Addr, value: u64) {
        self.ctx.call(MemReq::Write { addr, value });
    }

    /// Loads the word at `addr` as an `f64`.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Stores `value` at `addr` as its bit pattern.
    pub fn write_f64(&self, addr: Addr, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Atomic test-and-set; returns the old value.
    pub fn test_and_set(&self, addr: Addr) -> u64 {
        self.ctx
            .call(MemReq::Rmw {
                addr,
                op: RmwOp::TestAndSet,
            })
            .value()
    }

    /// Atomic fetch-and-add; returns the old value.
    pub fn fetch_add(&self, addr: Addr, n: u64) -> u64 {
        self.ctx
            .call(MemReq::Rmw {
                addr,
                op: RmwOp::FetchAdd(n),
            })
            .value()
    }

    /// Atomic swap; returns the old value.
    pub fn swap(&self, addr: Addr, value: u64) -> u64 {
        self.ctx
            .call(MemReq::Rmw {
                addr,
                op: RmwOp::Swap(value),
            })
            .value()
    }

    /// Spins until the word at `addr` satisfies `pred`; returns the
    /// satisfying value.
    pub fn wait_until(&self, addr: Addr, pred: Pred) -> u64 {
        self.ctx.call(MemReq::WaitUntil { addr, pred }).value()
    }

    /// Sends one word of payload to `dst` in a `bytes`-byte message with
    /// the given `tag`; blocks until the message is injected.
    ///
    /// # Panics
    ///
    /// The engine rejects `bytes` outside `1..=32` (the paper's message
    /// size limit) or a destination out of range.
    pub fn send(&self, dst: usize, bytes: u64, tag: u64, value: u64) {
        self.ctx.call(MemReq::Send {
            dst,
            bytes,
            tag,
            value,
        });
    }

    /// Receives the oldest arrived message with `tag`, blocking until one
    /// is available. Returns its payload.
    pub fn recv(&self, tag: u64) -> u64 {
        self.ctx.call(MemReq::Recv { tag }).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwOp::TestAndSet.apply(0), 1);
        assert_eq!(RmwOp::TestAndSet.apply(1), 1);
        assert_eq!(RmwOp::FetchAdd(5).apply(7), 12);
        assert_eq!(RmwOp::FetchAdd(1).apply(u64::MAX), 0); // wraps
        assert_eq!(RmwOp::Swap(9).apply(7), 9);
    }

    #[test]
    fn pred_semantics() {
        assert!(Pred::Eq(3).eval(3));
        assert!(!Pred::Eq(3).eval(4));
        assert!(Pred::Ne(3).eval(4));
        assert!(!Pred::Ne(3).eval(3));
        assert!(Pred::Ge(3).eval(3));
        assert!(Pred::Ge(3).eval(7));
        assert!(!Pred::Ge(3).eval(2));
    }

    #[test]
    #[should_panic(expected = "expected value response")]
    fn value_extraction_guards() {
        MemResp::Ack.value();
    }
}
