//! The execution-driven simulation engine.
//!
//! The engine comes in two modes (see [`EngineMode`]):
//!
//! * [`sequential`] — the committed execution path: one event popped, one
//!   effect applied, one processor resumed, in deterministic virtual-time
//!   order. This module also owns all the machinery the optimistic mode
//!   reuses, because optimistic execution *commits* through exactly the
//!   same code.
//! * [`optimistic`] — a Time-Warp-style layer that delivers *predicted*
//!   responses to processor coroutines before their commit events pop,
//!   letting application threads run speculatively past the commit
//!   horizon. Mispredictions roll the affected processor back (kill,
//!   respawn, replay committed history) and are annihilated in a
//!   conservation ledger. Engine-side state only ever mutates in
//!   committed order, which is what makes the two modes bit-identical.

mod optimistic;
mod sequential;

use std::fmt;
use std::time::Duration;

use spasm_check::{CheckMode, CheckViolation, EngineChecker};
use spasm_desim::{CoroCtx, CoroPool, EventQueue, SimTime};
use spasm_topology::{Topology, TopologyError};

use crate::addr::UnallocatedAddress;
use crate::faults::{FaultCounters, FaultInjector, RunBudget};
use crate::fxhash::FxHashMap;
use crate::models::{MachineConfig, MachineKind, Model, ModelSummary};
use crate::ops::{MemReq, MemResp, Pred, RmwOp};
use crate::stats::{Buckets, ProcStats};
use crate::telemetry::{Collector, IntervalRecord, Snapshot};
use crate::{Addr, AddressMap, SetupCtx, ValueStore};

use optimistic::SpecState;

/// One simulated processor's program.
pub type ProcBody = Box<dyn FnOnce(usize, &CoroCtx<MemReq, MemResp>) + Send + 'static>;

/// Produces a fresh copy of processor `proc`'s body, for optimistic
/// rollback (the engine kills a mis-speculated coroutine and replays a
/// fresh instance through committed history). Must be deterministic: two
/// bodies from the same factory must issue identical request sequences
/// given identical response sequences.
pub type BodyFactory = Box<dyn Fn(usize) -> ProcBody + Send>;

/// Cooperative cancellation probe, polled by [`Engine::run`] between
/// events. Returning `true` aborts the run with [`RunError::Cancelled`]
/// without committing any speculative state.
pub type CancelProbe = Box<dyn Fn() -> bool + Send>;

/// Which execution strategy drives the event loop.
///
/// Both modes produce **bit-identical** results — same `RunReport`
/// fields, same fingerprints, same telemetry — because all engine-side
/// state mutates in committed event order in either mode; the optimistic
/// mode only moves *application coroutine* execution ahead of the commit
/// horizon. `tests/optimistic_equivalence.rs` proves this cell by cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Classic sequential event loop (the default).
    #[default]
    Sequential,
    /// Time-Warp-style speculation: up to `workers` processors may hold
    /// a speculatively delivered response at once.
    Optimistic {
        /// Speculation width: maximum processors running ahead of the
        /// commit horizon simultaneously (clamped to at least 1).
        workers: usize,
    },
}

impl EngineMode {
    /// Parses `"sequential"`, `"optimistic"` (width 4), or
    /// `"optimistic:N"`.
    pub fn from_name(name: &str) -> Option<EngineMode> {
        match name {
            "sequential" => Some(EngineMode::Sequential),
            "optimistic" => Some(EngineMode::Optimistic { workers: 4 }),
            _ => {
                let n: usize = name.strip_prefix("optimistic:")?.parse().ok()?;
                (n >= 1).then_some(EngineMode::Optimistic { workers: n })
            }
        }
    }
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineMode::Sequential => f.write_str("sequential"),
            EngineMode::Optimistic { workers } => write!(f, "optimistic:{workers}"),
        }
    }
}

/// Why a simulation failed.
///
/// Every variant is a *typed* outcome of [`Engine::run`]: application-level
/// failure modes (panic, deadlock, bad request) and injected or configured
/// limits (budget, cancellation) end the run with an error value, never a
/// process abort.
#[derive(Debug)]
pub enum RunError {
    /// A processor's body panicked.
    Panicked {
        /// The processor.
        proc: usize,
        /// The panic message.
        message: String,
    },
    /// No events remain but processors are still waiting — a lost-wakeup
    /// or application-level deadlock.
    Deadlock {
        /// Simulated time at which progress stopped.
        at: SimTime,
        /// Processors still blocked.
        waiting: Vec<usize>,
    },
    /// The run exceeded its [`RunBudget`] (livelock, runaway workload, or
    /// a deliberately tight bound).
    BudgetExceeded {
        /// Simulated time when the budget tripped.
        at: SimTime,
        /// Events processed when the budget tripped.
        events: u64,
    },
    /// A cancellation probe (see [`Engine::set_cancel_probe`]) asked the
    /// run to stop. No state from uncommitted (speculative) history
    /// survives: the report is never produced and speculative coroutines
    /// are torn down with the engine.
    Cancelled {
        /// Simulated time when the cancellation was observed.
        at: SimTime,
        /// Events processed when the cancellation was observed.
        events: u64,
    },
    /// A memory operation named an address outside every allocation.
    UnallocatedAddress {
        /// The offending address.
        addr: Addr,
    },
    /// A message could not be routed (out-of-range node or a broken
    /// link table).
    Route {
        /// The underlying topology error.
        error: TopologyError,
    },
    /// A processor issued a malformed request (unaligned access,
    /// out-of-range destination, oversized message, double receive).
    BadRequest {
        /// The processor.
        proc: usize,
        /// What was wrong with the request.
        message: String,
    },
    /// An online invariant checker detected a violation (only possible
    /// when the run's [`MachineConfig`] enables a
    /// [`spasm_check::CheckMode`]).
    Check(CheckViolation),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked { proc, message } => {
                write!(f, "processor {proc} panicked: {message}")
            }
            RunError::Deadlock { at, waiting } => {
                write!(
                    f,
                    "deadlock at {at}: processors {waiting:?} blocked forever"
                )
            }
            RunError::BudgetExceeded { at, events } => {
                write!(f, "run budget exceeded at {at} after {events} events")
            }
            RunError::Cancelled { at, events } => {
                write!(f, "run cancelled at {at} after {events} events")
            }
            RunError::UnallocatedAddress { addr } => {
                write!(f, "address {addr} not allocated")
            }
            RunError::Route { error } => write!(f, "routing failed: {error}"),
            RunError::BadRequest { proc, message } => {
                write!(f, "processor {proc} issued a bad request: {message}")
            }
            RunError::Check(violation) => write!(f, "{violation}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<UnallocatedAddress> for RunError {
    fn from(e: UnallocatedAddress) -> Self {
        RunError::UnallocatedAddress { addr: e.0 }
    }
}

impl From<TopologyError> for RunError {
    fn from(error: TopologyError) -> Self {
        RunError::Route { error }
    }
}

impl From<CheckViolation> for RunError {
    fn from(violation: CheckViolation) -> Self {
        RunError::Check(violation)
    }
}

/// Speculation counters from an optimistic run (all zero under
/// [`EngineMode::Sequential`]).
///
/// Like [`RunReport::wall`], these describe *how* the run executed, not
/// *what* it computed — the differential equivalence suite excludes them
/// (and `wall`) when comparing engines, and they feed the
/// `timewarp_speed` bench's rollback-rate gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Responses delivered speculatively, ahead of their commit events.
    pub spec_resumes: u64,
    /// Speculative deliveries whose prediction the commit confirmed.
    pub spec_hits: u64,
    /// Mispredictions rolled back (kill + respawn + replay).
    pub rollbacks: u64,
    /// Anti-messages that annihilated a mis-speculated execution
    /// (equals `rollbacks` unless an anti-message-loss fault is forged).
    pub annihilated: u64,
    /// Committed events re-driven through respawned coroutines during
    /// rollback replays.
    pub replayed_events: u64,
    /// GVT epochs crossed (committed-event strides at which the engine
    /// reclaims retired processors' replay histories).
    pub gvt_epochs: u64,
}

/// Results of one simulation run.
#[derive(Debug)]
pub struct RunReport {
    /// Which machine was simulated.
    pub kind: MachineKind,
    /// Total (simulated) execution time: the maximum over processors of
    /// their completion times — SPASM's "total time".
    pub exec_time: SimTime,
    /// Per-processor statistics.
    pub per_proc: Vec<ProcStats>,
    /// Sum of all processors' buckets.
    pub totals: Buckets,
    /// Simulator events processed (the simulation-speed driver).
    pub events: u64,
    /// Machine-side counters (network traffic, cache behaviour).
    pub summary: ModelSummary,
    /// Per-labeled-region overhead attribution (SPASM-style "which data
    /// structure caused the traffic"), sorted by label.
    pub region_traffic: Vec<(&'static str, Buckets)>,
    /// The shared memory at completion, for result verification.
    pub final_store: ValueStore,
    /// Faults actually injected during the run (all zero when no
    /// [`crate::FaultPlan`] was configured).
    pub faults: FaultCounters,
    /// Interval telemetry records, one per non-empty sim-time bucket in
    /// order (empty unless the run's [`MachineConfig`] enabled a
    /// [`crate::TelemetryConfig`]).
    pub telemetry: Vec<IntervalRecord>,
    /// Speculation counters (zero under [`EngineMode::Sequential`]).
    /// Execution metadata like [`RunReport::wall`]: excluded from
    /// engine-equivalence comparisons.
    pub spec: SpecStats,
    /// Host wall-clock time the simulation took (§7 "Speed of Simulation").
    pub wall: Duration,
}

impl RunReport {
    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Mean per-processor latency overhead, in microseconds — the metric
    /// the paper's latency figures plot.
    pub fn latency_overhead_us(&self) -> f64 {
        self.totals.latency.as_us_f64() / self.procs() as f64
    }

    /// Mean per-processor contention overhead, in microseconds.
    pub fn contention_overhead_us(&self) -> f64 {
        self.totals.contention.as_us_f64() / self.procs() as f64
    }

    /// Execution time in microseconds.
    pub fn exec_time_us(&self) -> f64 {
        self.exec_time.as_us_f64()
    }
}

#[derive(Debug)]
pub(crate) enum Ev {
    /// Handle a processor's request at its issue time.
    Dispatch(usize, MemReq),
    /// An operation completes: apply its effect and resume the processor.
    Commit(usize, Action),
    /// An explicit message arrives at its destination's mailbox.
    /// `drops` counts how many times this delivery has already been
    /// dropped in flight (bounds injected message loss).
    Deliver {
        dst: usize,
        tag: u64,
        value: u64,
        drops: u32,
    },
}

/// `Copy` so a scheduled commit can also be inspected by the optimistic
/// speculation hook without cloning through the slab.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Action {
    Compute,
    Read(Addr),
    Write(Addr, u64),
    Rmw(Addr, RmwOp),
    Check(Addr, Pred),
    Sent,
    Received(u64),
}

/// Arena for in-flight events. The queue orders bare `u32` slot ids (so
/// its internal moves, sorts, and bucket redistributions shuffle 4-byte
/// handles, not full [`Ev`] payloads); the payloads themselves sit in the
/// slab until popped. Freed slots are recycled LIFO, keeping the live
/// working set dense.
#[derive(Debug, Default)]
struct EvSlab {
    slots: Vec<Option<Ev>>,
    free: Vec<u32>,
}

impl EvSlab {
    #[inline]
    fn alloc(&mut self, ev: Ev) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(ev);
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("more than 2^32 in-flight events");
                self.slots.push(Some(ev));
                id
            }
        }
    }

    #[inline]
    fn take(&mut self, id: u32) -> Ev {
        let ev = self.slots[id as usize]
            .take()
            .expect("popped id names a live event");
        self.free.push(id);
        ev
    }
}

/// Drives application processes over a machine model.
///
/// See the crate-level example. The engine owns the coroutine pool, the
/// event queue, the value store, and the machine model; [`Engine::run`]
/// consumes events to completion and produces a [`RunReport`].
pub struct Engine {
    pool: CoroPool<MemReq, MemResp>,
    model: Model,
    amap: AddressMap,
    store: ValueStore,
    events: EventQueue<u32>,
    slab: EvSlab,
    /// word index → processors spin-waiting on that word.
    watchers: FxHashMap<u64, Vec<(usize, Pred)>>,
    region_traffic: FxHashMap<&'static str, Buckets>,
    /// (receiver, tag) → arrived-but-unconsumed message payloads, FIFO.
    mailboxes: FxHashMap<(usize, u64), std::collections::VecDeque<u64>>,
    /// Per-processor pending blocking receive (tag), if any.
    recv_wait: Vec<Option<u64>>,
    wait_start: Vec<Option<SimTime>>,
    stats: Vec<ProcStats>,
    live: usize,
    now: SimTime,
    budget: RunBudget,
    injector: Option<FaultInjector>,
    checker: Option<EngineChecker>,
    telemetry: Option<Collector>,
    processed: u64,
    check: CheckMode,
    /// Speculation state; `Some` iff the mode is optimistic.
    spec: Option<SpecState>,
    body_factory: Option<BodyFactory>,
    cancel: Option<CancelProbe>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("kind", &self.model.kind())
            .field("procs", &self.stats.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine with the default [`MachineConfig`].
    pub fn new(kind: MachineKind, topo: &Topology, setup: SetupCtx, bodies: Vec<ProcBody>) -> Self {
        Engine::with_config(kind, topo, MachineConfig::default(), setup, bodies)
    }

    /// Builds an engine with an explicit machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the number of bodies does not match the topology size or
    /// the setup's node count.
    pub fn with_config(
        kind: MachineKind,
        topo: &Topology,
        config: MachineConfig,
        setup: SetupCtx,
        bodies: Vec<ProcBody>,
    ) -> Self {
        let p = topo.nodes();
        assert_eq!(bodies.len(), p, "one body per processor");
        assert_eq!(setup.nodes(), p, "setup sized for a different machine");
        let (amap, store) = setup.into_parts();
        let wrapped: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(id, body)| {
                move |proc: usize, ctx: &CoroCtx<MemReq, MemResp>| {
                    debug_assert_eq!(proc, id);
                    body(proc, ctx)
                }
            })
            .collect();
        Engine {
            pool: CoroPool::from_bodies(wrapped),
            model: Model::new(kind, topo, config),
            amap,
            store,
            events: EventQueue::new(),
            slab: EvSlab::default(),
            watchers: FxHashMap::default(),
            region_traffic: FxHashMap::default(),
            mailboxes: FxHashMap::default(),
            recv_wait: vec![None; p],
            wait_start: vec![None; p],
            stats: vec![ProcStats::default(); p],
            live: p,
            now: SimTime::ZERO,
            budget: config.budget,
            injector: config
                .faults
                .filter(|f| f.is_active())
                .map(FaultInjector::new),
            checker: config
                .check
                .enabled()
                .then(|| EngineChecker::new(config.check)),
            telemetry: config.telemetry.map(Collector::new),
            processed: 0,
            check: config.check,
            spec: match config.engine {
                EngineMode::Sequential => None,
                EngineMode::Optimistic { workers } => {
                    Some(SpecState::new(workers.max(1), p, config.check.enabled()))
                }
            },
            body_factory: None,
            cancel: None,
        }
    }

    /// Installs the body factory the optimistic mode needs to roll back
    /// inexact speculations (see [`BodyFactory`]).
    ///
    /// Without a factory the optimistic engine degrades gracefully: it
    /// only speculates responses it can predict *exactly* (acks and
    /// already-materialized receive payloads), which can never
    /// mispredict, so no rollback is ever required.
    pub fn set_body_factory(&mut self, factory: BodyFactory) {
        self.body_factory = Some(factory);
    }

    /// Installs a cooperative cancellation probe, polled between events
    /// and before every rollback. See [`RunError::Cancelled`].
    pub fn set_cancel_probe(&mut self, probe: CancelProbe) {
        self.cancel = Some(probe);
    }

    /// Samples the monotone counters the telemetry deltas derive from.
    /// Only called at bucket boundaries, so the O(procs) sweep is off the
    /// per-event path.
    fn telemetry_snapshot(&self) -> Snapshot {
        let mut busy = SimTime::ZERO;
        let mut mem = SimTime::ZERO;
        let mut comm = SimTime::ZERO;
        let mut sync = SimTime::ZERO;
        for s in &self.stats {
            busy += s.buckets.busy;
            mem += s.buckets.mem;
            comm += s.buckets.latency + s.buckets.contention + s.buckets.dir_wait;
            sync += s.buckets.sync;
        }
        let summary = self.model.summary(self.stats.len());
        Snapshot {
            busy_ns: busy.as_ns(),
            mem_ns: mem.as_ns(),
            comm_ns: comm.as_ns(),
            sync_ns: sync.as_ns(),
            cache_hits: summary.cache_hits,
            cache_misses: summary.cache_misses,
            faults: self.injector.as_ref().map_or(0, |i| i.counters.total()),
        }
    }

    /// Allocates a slab slot for `ev` and schedules it at `at`.
    #[inline]
    fn push_ev(&mut self, at: SimTime, ev: Ev) {
        let id = self.slab.alloc(ev);
        self.events.push(at, id);
    }
}
