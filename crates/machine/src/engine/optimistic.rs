//! Optimistic (Time Warp) intra-run parallelism.
//!
//! The sequential engine alternates between the engine thread and one
//! application coroutine per event: resume, wait for the request, pop
//! the next event. This layer breaks that lockstep. When a commit is
//! *scheduled* (not yet popped), the engine predicts the response the
//! commit will deliver and, if a prediction exists, sends it to the
//! processor immediately via an asynchronous resume. The coroutine runs
//! speculatively — past the global virtual-time horizon — while the
//! engine keeps draining events; its next request is collected only when
//! its commit actually pops.
//!
//! **Nothing engine-side is speculative.** The model, store, stats,
//! queue, fault stream, checkers, and telemetry all mutate exactly when
//! the sequential engine would mutate them, in committed pop order. The
//! only thing that runs early is application code, and application code
//! interacts with the world *only* through its request/response
//! rendezvous. That is the whole equivalence argument, and
//! `tests/optimistic_equivalence.rs` holds it to byte-identical reports.
//!
//! Predictions come in two classes:
//!
//! * **exact** — acks (`Compute`/`Write`/`Sent`) and already-materialized
//!   receive payloads (`Received`). These cannot mispredict.
//! * **inexact** — `Read`/`Rmw` predicted from the store's value at
//!   schedule time. A conflicting write committed in between makes the
//!   prediction stale; the commit then refutes it, and the processor is
//!   rolled back: its coroutine is killed (the anti-message), a fresh
//!   body from the [`super::BodyFactory`] is respawned, and the
//!   processor's *committed* response history is replayed through it.
//!   Replay drives the coroutine directly — no dispatches, no fault
//!   draws, no checker events — so it is invisible to committed state
//!   (strict check mode audits this with a model state-hash).
//!
//! In classic Time Warp terms: the commit horizon is the GVT (it is
//! continuous here — state commits at every pop, not in batches), kills
//! are anti-messages, and the [`SpecLedger`] proves every anti-message
//! annihilated exactly one mis-speculation. The [`EpochClock`] marks GVT
//! epochs in committed-event strides; fossil collection (reclaiming
//! retired processors' replay histories) runs at epoch boundaries.

use spasm_check::{CheckViolation, SpecLedger};
use spasm_desim::{EpochClock, Step};

use crate::addr::Addr;
use crate::fxhash::FxHashSet;
use crate::ops::{MemReq, MemResp};

use super::{Action, Engine, RunError, SpecStats};

/// Committed events per GVT epoch (fossil-collection cadence).
const GVT_STRIDE: u64 = 1024;

/// Rollbacks per processor before its inexact speculation fuse blows.
/// A processor that keeps mispredicting (e.g. spinning on a contended
/// word) stops paying replay costs and falls back to exact-only
/// speculation, which never rolls back.
const ROLLBACK_FUSE: u32 = 8;

/// Committed events per processor beyond which inexact speculation is
/// no longer worth its downside: a rollback replays the *entire*
/// committed history through a respawned body, so late in a long run a
/// single misprediction costs more rendezvous than value speculation
/// can ever recoup. Exact (ack-class) speculation continues regardless
/// — it cannot mispredict.
const REPLAY_HORIZON: usize = 512;

/// A speculatively delivered response awaiting its commit's verdict.
#[derive(Debug, Clone, Copy)]
struct Speculation {
    predicted: MemResp,
    /// For inexact predictions, the address the value was sampled from
    /// (drives the per-address throttle on refutation).
    addr: Option<Addr>,
}

/// Per-processor speculation bookkeeping.
#[derive(Debug, Default)]
struct SpecProc {
    /// Every committed response delivered to this processor, in order,
    /// starting with `MemResp::Start`. The rollback replay script.
    resp_history: Vec<MemResp>,
    /// The request the processor issued after each committed response.
    /// Replay verifies the respawned body re-issues exactly these.
    req_history: Vec<MemReq>,
    /// In-flight speculative delivery, if any (at most one: a processor
    /// blocks until its next response, so speculation depth is 1).
    pending: Option<Speculation>,
    /// Rollbacks so far (drives [`ROLLBACK_FUSE`]).
    rollbacks: u32,
    /// Whether the processor's body returned; its histories become
    /// fossils reclaimable at the next GVT epoch.
    finished: bool,
}

/// Whole-engine speculation state (`Engine::spec` is `Some` iff the mode
/// is [`super::EngineMode::Optimistic`]).
#[derive(Debug)]
pub(super) struct SpecState {
    /// Speculation width: max processors running ahead at once.
    workers: usize,
    /// Processors currently holding a speculative response.
    outstanding: usize,
    procs: Vec<SpecProc>,
    /// Conservation ledger (present when checking is enabled).
    ledger: Option<SpecLedger>,
    clock: EpochClock,
    /// Addresses whose predicted values have been refuted. A contended
    /// word refutes every prediction made on it while the conflicting
    /// write is in flight, and each refutation costs a full-history
    /// replay — so after the first, inexact speculation on that address
    /// is switched off. The first refutation still rolls back (the
    /// recovery path stays exercised); the replay *storm* does not.
    /// Purely a scheduling decision: committed state is unaffected.
    hot: FxHashSet<Addr>,
    pub(super) stats: SpecStats,
}

impl SpecState {
    pub(super) fn new(workers: usize, procs: usize, checked: bool) -> Self {
        SpecState {
            workers,
            outstanding: 0,
            procs: (0..procs).map(|_| SpecProc::default()).collect(),
            ledger: checked.then(SpecLedger::new),
            clock: EpochClock::new(GVT_STRIDE),
            hot: FxHashSet::default(),
            stats: SpecStats::default(),
        }
    }
}

impl Engine {
    /// Records a committed response into `proc`'s replay history
    /// (no-op in sequential mode).
    #[inline]
    pub(super) fn record_resp(&mut self, proc: usize, resp: MemResp) {
        if let Some(spec) = &mut self.spec {
            spec.procs[proc].resp_history.push(resp);
        }
    }

    /// Records the request `proc` issued after its latest committed
    /// response (no-op in sequential mode).
    #[inline]
    pub(super) fn record_req(&mut self, proc: usize, req: MemReq) {
        if let Some(spec) = &mut self.spec {
            spec.procs[proc].req_history.push(req);
        }
    }

    /// Called when a commit is scheduled: predict its response and, if
    /// possible, deliver it to the processor ahead of the commit.
    pub(super) fn consider_speculation(&mut self, proc: usize, action: Action) {
        // Inexact predictions read the store *now*; done before borrowing
        // the spec state so the borrows stay disjoint.
        let store_value = match action {
            Action::Read(addr) | Action::Rmw(addr, _) => Some(self.store.read_word(addr)),
            _ => None,
        };
        let has_factory = self.body_factory.is_some();
        let now = self.now;
        let Some(spec) = &mut self.spec else { return };
        if spec.outstanding >= spec.workers || spec.procs[proc].pending.is_some() {
            return;
        }
        let inexact_ok = has_factory
            && spec.procs[proc].rollbacks < ROLLBACK_FUSE
            && spec.procs[proc].resp_history.len() < REPLAY_HORIZON;
        let (predicted, addr) = match action {
            Action::Compute | Action::Write(..) | Action::Sent => (MemResp::Ack, None),
            Action::Received(v) => (MemResp::Value(v), None),
            Action::Read(a) | Action::Rmw(a, _) => {
                if !inexact_ok || spec.hot.contains(&a) {
                    return;
                }
                (
                    MemResp::Value(store_value.expect("read prediction sampled above")),
                    Some(a),
                )
            }
            // A WaitUntil commit may park the processor instead of
            // resuming it, so its response is never predicted.
            Action::Check(..) => return,
        };
        spec.procs[proc].pending = Some(Speculation { predicted, addr });
        spec.outstanding += 1;
        spec.stats.spec_resumes += 1;
        if let Some(ledger) = &mut spec.ledger {
            ledger.on_speculate(proc, now);
        }
        self.pool.resume_async(proc, predicted);
    }

    /// Delivers a committed response to a processor that may already
    /// hold a speculative one: confirm (collect the request the
    /// speculative execution already produced) or refute (roll back,
    /// then redeliver synchronously).
    pub(super) fn commit_speculative(
        &mut self,
        proc: usize,
        resp: MemResp,
    ) -> Result<(), RunError> {
        let spec = self.spec.as_mut().expect("optimistic mode");
        let Some(speculation) = spec.procs[proc].pending.take() else {
            return self.resume(proc, resp);
        };
        spec.outstanding -= 1;
        if speculation.predicted == resp {
            spec.stats.spec_hits += 1;
            if let Some(ledger) = &mut spec.ledger {
                ledger.on_commit(proc);
            }
            self.record_resp(proc, resp);
            let step = self.pool.collect(proc);
            self.handle_step(proc, step)
        } else {
            if let Some(a) = speculation.addr {
                spec.hot.insert(a);
            }
            self.rollback(proc)?;
            self.resume(proc, resp)
        }
    }

    /// Cancels a mis-speculated execution (anti-message), respawns a
    /// fresh body, and replays the processor's committed history so it
    /// blocks exactly where it blocked before the bad delivery.
    fn rollback(&mut self, proc: usize) -> Result<(), RunError> {
        // A cancellation observed mid-rollback aborts before the replay
        // commits anything — the respawned coroutine dies with the pool.
        if self.poll_cancelled() {
            return Err(RunError::Cancelled {
                at: self.now,
                events: self.processed,
            });
        }
        let forged = self
            .injector
            .as_mut()
            .is_some_and(|inj| inj.anti_message_loss());
        {
            let spec = self.spec.as_mut().expect("optimistic mode");
            let p = &mut spec.procs[proc];
            p.rollbacks += 1;
            spec.stats.rollbacks += 1;
            if !forged {
                spec.stats.annihilated += 1;
            }
            if let Some(ledger) = &mut spec.ledger {
                // The forged fault loses the anti-message *record*: the
                // rollback still runs, but the ledger never hears of the
                // annihilation — exactly the imbalance strict mode must
                // catch.
                if !forged {
                    ledger.on_annihilate(proc);
                }
                ledger.on_rollback(proc);
            }
        }
        // Strict mode audits rollback purity: replay must not touch any
        // committed machine state.
        let pre_hash = self.check.strict().then(|| self.model.state_hash());
        self.pool.kill(proc);
        let factory = self
            .body_factory
            .as_ref()
            .expect("inexact speculation requires a body factory");
        let body = factory(proc);
        self.pool.respawn(
            proc,
            move |p, ctx: &spasm_desim::CoroCtx<MemReq, MemResp>| {
                debug_assert_eq!(p, proc);
                body(p, ctx)
            },
        );
        // Replay committed history through the fresh body. Direct pool
        // resumes: no events, no fault draws, no checker — committed
        // state cannot observe the replay.
        let (resps, reqs) = {
            let p = &mut self.spec.as_mut().expect("optimistic mode").procs[proc];
            (
                std::mem::take(&mut p.resp_history),
                std::mem::take(&mut p.req_history),
            )
        };
        debug_assert_eq!(resps.len(), reqs.len());
        for (i, (&resp, &req)) in resps.iter().zip(reqs.iter()).enumerate() {
            match self.pool.resume(proc, resp) {
                Step::Request(got) if got == req => {}
                Step::Request(got) => {
                    return Err(RunError::Check(CheckViolation {
                        invariant: "rollback-replay",
                        message: format!(
                            "processor {proc} diverged at replayed event {i}: \
                             issued {got:?} where history records {req:?} \
                             (body is not deterministic)"
                        ),
                        recent: Vec::new(),
                    }));
                }
                Step::Done => {
                    return Err(RunError::Check(CheckViolation {
                        invariant: "rollback-replay",
                        message: format!(
                            "processor {proc} finished at replayed event {i} of {} \
                             (body is not deterministic)",
                            resps.len()
                        ),
                        recent: Vec::new(),
                    }));
                }
                Step::Panicked(message) => return Err(RunError::Panicked { proc, message }),
            }
        }
        let replayed = resps.len() as u64;
        {
            let spec = self.spec.as_mut().expect("optimistic mode");
            spec.stats.replayed_events += replayed;
            let p = &mut spec.procs[proc];
            p.resp_history = resps;
            p.req_history = reqs;
        }
        if let Some(pre) = pre_hash {
            let post = self.model.state_hash();
            if pre != post {
                return Err(RunError::Check(CheckViolation {
                    invariant: "rollback-purity",
                    message: format!(
                        "rollback of processor {proc} perturbed committed machine \
                         state (hash {pre:#018x} -> {post:#018x})"
                    ),
                    recent: Vec::new(),
                }));
            }
        }
        Ok(())
    }

    /// Ticks the GVT epoch clock on every committed commit-event and
    /// fossil-collects retired processors' histories at epoch
    /// boundaries.
    #[inline]
    pub(super) fn spec_on_commit_event(&mut self) {
        let Some(spec) = &mut self.spec else { return };
        if spec.clock.tick() {
            spec.stats.gvt_epochs += 1;
            for p in spec.procs.iter_mut() {
                if p.finished && !p.resp_history.is_empty() {
                    p.resp_history = Vec::new();
                    p.req_history = Vec::new();
                }
            }
        }
    }

    /// Marks `proc`'s histories as fossils once its body returns.
    #[inline]
    pub(super) fn spec_on_done(&mut self, proc: usize) {
        if let Some(spec) = &mut self.spec {
            debug_assert!(spec.procs[proc].pending.is_none());
            spec.procs[proc].finished = true;
        }
    }

    /// End-of-run ledger check: every speculation committed or
    /// annihilated, every anti-message annihilating exactly one. Under
    /// lenient checking, anti-messages forged away by the fault plan are
    /// credited; under strict checking they are violations.
    pub(super) fn spec_run_end(&mut self) -> Result<(), RunError> {
        let forged = self
            .injector
            .as_ref()
            .map_or(0, |inj| inj.counters.anti_losses);
        if let Some(ledger) = self.spec.as_ref().and_then(|s| s.ledger.as_ref()) {
            let credited = if self.check.strict() { 0 } else { forged };
            ledger.on_run_end(credited)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::EngineMode;

    #[test]
    fn engine_mode_parses_and_displays() {
        assert_eq!(
            EngineMode::from_name("sequential"),
            Some(EngineMode::Sequential)
        );
        assert_eq!(
            EngineMode::from_name("optimistic"),
            Some(EngineMode::Optimistic { workers: 4 })
        );
        assert_eq!(
            EngineMode::from_name("optimistic:7"),
            Some(EngineMode::Optimistic { workers: 7 })
        );
        assert_eq!(EngineMode::from_name("optimistic:0"), None);
        assert_eq!(EngineMode::from_name("pessimistic"), None);
        assert_eq!(EngineMode::default(), EngineMode::Sequential);
        for m in [
            EngineMode::Sequential,
            EngineMode::Optimistic { workers: 4 },
            EngineMode::Optimistic { workers: 12 },
        ] {
            assert_eq!(EngineMode::from_name(&m.to_string()), Some(m));
        }
    }
}
