//! The committed execution path: the event loop, pricing, and effects.
//!
//! Everything here runs in strict virtual-time order and mutates
//! engine-side state (model, store, stats, queue, checkers, telemetry)
//! only at event pops. Both engine modes share this path — the
//! optimistic layer in [`super::optimistic`] never applies an effect
//! early, it only lets *application coroutines* run ahead; commits flow
//! through [`Engine::deliver_resume`], which is the single seam between
//! the two modes.

use std::time::Instant;

use spasm_cache::AccessKind;
use spasm_check::CheckViolation;
use spasm_desim::{PopIfBefore, SimTime, Step};

use crate::ops::{MemReq, MemResp};
use crate::stats::Buckets;
use crate::{Addr, CYCLE_NS};

use super::{Action, Engine, Ev, RunError, RunReport};

/// How often (in popped events) the cooperative cancellation probe is
/// polled. Cheap enough to keep the hot loop unaffected, frequent enough
/// that a budgeted job dies within a fraction of a millisecond of wall
/// time.
const CANCEL_POLL_EVENTS: u64 = 1024;

impl Engine {
    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Panicked`] if application code panics,
    /// [`RunError::Deadlock`] if all remaining processors are blocked on
    /// waits that can never be satisfied, [`RunError::BudgetExceeded`]
    /// when a configured [`crate::RunBudget`] trips (the only way a
    /// *livelock* — e.g. a polling spin whose flag never flips —
    /// terminates), [`RunError::Cancelled`] when an installed probe asks
    /// the run to stop, and the remaining variants for malformed
    /// requests.
    pub fn run(&mut self) -> Result<RunReport, RunError> {
        let wall_start = Instant::now();
        let p = self.stats.len();
        for proc in 0..p {
            self.resume(proc, MemResp::Start)?;
        }
        // A configured simulated-time budget becomes the queue's pop
        // deadline: the queue refuses to yield an event beyond it in one
        // combined operation, instead of popping and then rechecking.
        let deadline = self.budget.max_sim_time.unwrap_or(SimTime::MAX);
        loop {
            let (t, ev) = match self.events.pop_if_before(deadline) {
                PopIfBefore::Popped(t, id) => (t, self.slab.take(id)),
                PopIfBefore::Deferred(t) => {
                    // The head event lies past the budget: tripping on it
                    // counts it as processed, exactly as the pop-then-check
                    // formulation did.
                    self.now = t;
                    self.processed += 1;
                    return Err(RunError::BudgetExceeded {
                        at: self.now,
                        events: self.processed,
                    });
                }
                PopIfBefore::Empty => break,
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.processed += 1;
            if self.processed.is_multiple_of(CANCEL_POLL_EVENTS) && self.poll_cancelled() {
                return Err(RunError::Cancelled {
                    at: self.now,
                    events: self.processed,
                });
            }
            if let Some(mut tele) = self.telemetry.take() {
                if tele.boundary_crossed(t) {
                    let snapshot = self.telemetry_snapshot();
                    tele.advance(t, self.events.len() as u64, snapshot);
                }
                tele.count_event();
                self.telemetry = Some(tele);
            }
            if self
                .budget
                .max_events
                .is_some_and(|max| self.processed > max)
            {
                return Err(RunError::BudgetExceeded {
                    at: self.now,
                    events: self.processed,
                });
            }
            // Injected message loss intercepts a delivery as it leaves
            // the queue: the in-flight copy vanishes and a retransmitted
            // one is scheduled after the plan's timeout. Decided before
            // the checker observes the delivery, so the conservation
            // ledger follows the drop instead of tripping on a delivery
            // that never happens.
            if let Ev::Deliver {
                dst,
                tag,
                value,
                drops,
            } = ev
            {
                if let Some(pause) = self
                    .injector
                    .as_mut()
                    .and_then(|inj| inj.message_loss(drops))
                {
                    let retry_at = t + pause;
                    if let Some(chk) = &mut self.checker {
                        chk.on_event(t, || format!("Drop Deliver {{ dst: {dst}, tag: {tag} }}"))?;
                        chk.on_drop(dst, tag, t, retry_at)?;
                    }
                    self.push_ev(
                        retry_at,
                        Ev::Deliver {
                            dst,
                            tag,
                            value,
                            drops: drops + 1,
                        },
                    );
                    continue;
                }
            }
            if let Some(chk) = &mut self.checker {
                chk.on_event(t, || format!("{ev:?}"))?;
                if let Ev::Deliver { dst, tag, .. } = &ev {
                    chk.on_deliver(*dst, *tag, t)?;
                }
            }
            match ev {
                Ev::Dispatch(proc, req) => self.dispatch(proc, req)?,
                Ev::Commit(proc, action) => self.commit(proc, action)?,
                Ev::Deliver {
                    dst, tag, value, ..
                } => self.deliver(dst, tag, value),
            }
        }
        if self.live > 0 {
            let mut waiting: Vec<usize> = self
                .watchers
                .values()
                .flat_map(|v| v.iter().map(|&(p, _)| p))
                .collect();
            waiting.extend(
                self.recv_wait
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.is_some())
                    .map(|(p, _)| p),
            );
            waiting.sort_unstable();
            return Err(RunError::Deadlock {
                at: self.now,
                waiting,
            });
        }
        self.spec_run_end()?;
        if let Some(chk) = &mut self.checker {
            let (duplicates, retransmits) = self
                .injector
                .as_ref()
                .map_or((0, 0), |i| (i.counters.duplicated, i.counters.retransmits));
            chk.on_run_end(duplicates, retransmits)?;
            if self.events.popped() != self.events.pushed() {
                return Err(RunError::Check(CheckViolation {
                    invariant: "event-accounting",
                    message: format!(
                        "drained queue popped {} of {} pushed events",
                        self.events.popped(),
                        self.events.pushed()
                    ),
                    recent: Vec::new(),
                }));
            }
            if let Some(v) = self.model.final_check() {
                return Err(v.into());
            }
        }
        let telemetry = match self.telemetry.take() {
            Some(mut tele) => {
                // Close the final partial bucket; the queue is drained.
                let snapshot = self.telemetry_snapshot();
                tele.flush(0, snapshot);
                tele.into_records()
            }
            None => Vec::new(),
        };
        let mut totals = Buckets::default();
        let mut exec_time = SimTime::ZERO;
        for s in &self.stats {
            totals.add(&s.buckets);
            exec_time = exec_time.max(s.finish);
        }
        let mut region_traffic: Vec<(&'static str, Buckets)> =
            self.region_traffic.iter().map(|(&k, &v)| (k, v)).collect();
        region_traffic.sort_by_key(|&(k, _)| k);
        Ok(RunReport {
            kind: self.model.kind(),
            exec_time,
            per_proc: self.stats.clone(),
            totals,
            events: self.events.pushed(),
            summary: self.model.summary(p),
            region_traffic,
            final_store: self.store.clone(),
            faults: self
                .injector
                .as_ref()
                .map(|i| i.counters)
                .unwrap_or_default(),
            telemetry,
            spec: self.spec.as_ref().map(|s| s.stats).unwrap_or_default(),
            wall: wall_start.elapsed(),
        })
    }

    /// Polls the cooperative cancellation probe, if one is installed.
    #[inline]
    pub(super) fn poll_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|probe| probe())
    }

    /// Schedules a commit for `proc` at `at` and offers it to the
    /// optimistic layer as a speculation opportunity (a no-op under
    /// [`super::EngineMode::Sequential`]).
    #[inline]
    fn sched_commit(&mut self, at: SimTime, proc: usize, action: Action) {
        self.push_ev(at, Ev::Commit(proc, action));
        if self.spec.is_some() {
            self.consider_speculation(proc, action);
        }
    }

    fn dispatch(&mut self, proc: usize, req: MemReq) -> Result<(), RunError> {
        self.stats[proc].ops += 1;
        let now = self.now;
        match req {
            MemReq::Compute { cycles } => {
                let dur = SimTime::from_ns(cycles * CYCLE_NS);
                self.stats[proc].buckets.busy += dur;
                self.sched_commit(now + dur, proc, Action::Compute);
            }
            MemReq::Read { addr } => {
                let finish = self.priced_access(proc, addr, AccessKind::Read)?;
                self.sched_commit(finish, proc, Action::Read(addr));
            }
            MemReq::Write { addr, value } => {
                let finish = self.priced_access(proc, addr, AccessKind::Write)?;
                self.sched_commit(finish, proc, Action::Write(addr, value));
            }
            MemReq::Rmw { addr, op } => {
                let finish = self.priced_access(proc, addr, AccessKind::Write)?;
                self.sched_commit(finish, proc, Action::Rmw(addr, op));
            }
            MemReq::WaitUntil { addr, pred } => {
                let finish = self.priced_access(proc, addr, AccessKind::Read)?;
                self.sched_commit(finish, proc, Action::Check(addr, pred));
            }
            MemReq::Send {
                dst,
                bytes,
                tag,
                value,
            } => {
                if !(1..=32).contains(&bytes) {
                    return Err(RunError::BadRequest {
                        proc,
                        message: format!("message size {bytes} outside 1..=32 bytes"),
                    });
                }
                if dst >= self.stats.len() {
                    return Err(RunError::BadRequest {
                        proc,
                        message: format!("destination {dst} out of range"),
                    });
                }
                let cost = self.model.msg_send(self.now, proc, dst, bytes)?;
                self.stats[proc].buckets.add(&cost.buckets);
                let mut delivered = cost.delivered;
                let mut copies = 1u64;
                if let Some(inj) = &mut self.injector {
                    if let Some(delay) = inj.message_delay() {
                        delivered += delay;
                    }
                    if inj.duplicate() {
                        // The copy trails the original on the same tag;
                        // FIFO mailboxes keep the order deterministic.
                        copies = 2;
                    }
                }
                if let Some(chk) = &mut self.checker {
                    chk.on_send(dst, tag, cost.delivered, delivered, copies)?;
                }
                self.sched_commit(cost.sender_free, proc, Action::Sent);
                for _ in 0..copies {
                    self.push_ev(
                        delivered,
                        Ev::Deliver {
                            dst,
                            tag,
                            value,
                            drops: 0,
                        },
                    );
                }
            }
            MemReq::Recv { tag } => {
                if let Some(value) = self
                    .mailboxes
                    .get_mut(&(proc, tag))
                    .and_then(|q| q.pop_front())
                {
                    // Message already arrived: charge the receive handoff.
                    let finish = self.now + SimTime::from_ns(CYCLE_NS);
                    self.sched_commit(finish, proc, Action::Received(value));
                } else {
                    if self.recv_wait[proc].is_some() {
                        return Err(RunError::BadRequest {
                            proc,
                            message: format!("processor {proc} already blocked in recv"),
                        });
                    }
                    self.recv_wait[proc] = Some(tag);
                    if self.wait_start[proc].is_none() {
                        self.wait_start[proc] = Some(self.now);
                    }
                }
            }
        }
        Ok(())
    }

    fn priced_access(
        &mut self,
        proc: usize,
        addr: Addr,
        kind: AccessKind,
    ) -> Result<SimTime, RunError> {
        if !addr.is_word_aligned() {
            return Err(RunError::BadRequest {
                proc,
                message: format!("unaligned access at {addr}"),
            });
        }
        let mut cost = self.model.access(self.now, proc, addr, &self.amap, kind)?;
        let model_finish = cost.finish;
        // Injected adversity on network-touching transactions. The retry
        // re-pays the whole transaction (a NACKed requester re-arbitrates
        // from scratch); the delay models slow links. Both are charged to
        // contention — time spent waiting on the network, not using it.
        if cost.buckets.msgs > 0 {
            if let Some(inj) = &mut self.injector {
                let duration = cost.finish - self.now;
                for _ in 0..inj.coherence_retries() {
                    cost.finish += duration;
                    cost.buckets.contention += duration;
                }
                if let Some(delay) = inj.message_delay() {
                    cost.finish += delay;
                    cost.buckets.contention += delay;
                }
            }
        }
        if let Some(chk) = &mut self.checker {
            chk.on_access(proc, model_finish, cost.finish)?;
        }
        self.stats[proc].buckets.add(&cost.buckets);
        if let Some(label) = self.amap.label_of(addr) {
            self.region_traffic
                .entry(label)
                .or_default()
                .add(&cost.buckets);
        }
        Ok(cost.finish)
    }

    fn commit(&mut self, proc: usize, action: Action) -> Result<(), RunError> {
        self.spec_on_commit_event();
        match action {
            Action::Compute => self.deliver_resume(proc, MemResp::Ack),
            Action::Read(addr) => {
                let v = self.store.read_word(addr);
                self.deliver_resume(proc, MemResp::Value(v))
            }
            Action::Write(addr, value) => {
                self.store.write_word(addr, value);
                self.wake_watchers(addr);
                self.deliver_resume(proc, MemResp::Ack)
            }
            Action::Rmw(addr, op) => {
                let old = self.store.read_word(addr);
                self.store.write_word(addr, op.apply(old));
                self.wake_watchers(addr);
                self.deliver_resume(proc, MemResp::Value(old))
            }
            Action::Sent => self.deliver_resume(proc, MemResp::Ack),
            Action::Received(value) => {
                if let Some(start) = self.wait_start[proc].take() {
                    self.stats[proc].buckets.sync += self.now - start;
                }
                self.deliver_resume(proc, MemResp::Value(value))
            }
            Action::Check(addr, pred) => {
                let v = self.store.read_word(addr);
                if pred.eval(v) {
                    if let Some(start) = self.wait_start[proc].take() {
                        self.stats[proc].buckets.sync += self.now - start;
                    }
                    self.deliver_resume(proc, MemResp::Value(v))
                } else {
                    if self.wait_start[proc].is_none() {
                        self.wait_start[proc] = Some(self.now);
                    }
                    if self.model.is_polling() {
                        // Cache-less machine: each poll really re-reads
                        // over the network. Re-dispatch immediately; the
                        // read itself advances time, so this terminates.
                        self.push_ev(
                            self.now,
                            Ev::Dispatch(proc, MemReq::WaitUntil { addr, pred }),
                        );
                    } else {
                        // Spin in-cache: idle until the word is written.
                        self.watchers
                            .entry(addr.word_index())
                            .or_default()
                            .push((proc, pred));
                    }
                    Ok(())
                }
            }
        }
    }

    /// The seam between the two engine modes: hands the committed
    /// response to the processor. Sequentially that is a synchronous
    /// resume; optimistically the response may already have been
    /// delivered speculatively, in which case the commit either confirms
    /// it (and merely collects the next request) or refutes it (and
    /// rolls the processor back before redelivering).
    fn deliver_resume(&mut self, proc: usize, resp: MemResp) -> Result<(), RunError> {
        if self.spec.is_some() {
            self.commit_speculative(proc, resp)
        } else {
            self.resume(proc, resp)
        }
    }

    fn wake_watchers(&mut self, addr: Addr) {
        if let Some(waiters) = self.watchers.remove(&addr.word_index()) {
            for (proc, pred) in waiters {
                // Each waiter re-reads the (just-invalidated) word and
                // re-checks — the paper's "first and last accesses use the
                // network" spin behaviour.
                self.push_ev(
                    self.now,
                    Ev::Dispatch(proc, MemReq::WaitUntil { addr, pred }),
                );
            }
        }
    }

    fn deliver(&mut self, dst: usize, tag: u64, value: u64) {
        self.mailboxes
            .entry((dst, tag))
            .or_default()
            .push_back(value);
        if self.recv_wait[dst] == Some(tag) {
            self.recv_wait[dst] = None;
            // Re-dispatch the receive; it will find the mailbox non-empty.
            self.push_ev(self.now, Ev::Dispatch(dst, MemReq::Recv { tag }));
        }
    }

    /// Synchronously delivers `resp` and handles the processor's next
    /// step. Records the delivery in the replay history when running
    /// optimistically.
    pub(super) fn resume(&mut self, proc: usize, resp: MemResp) -> Result<(), RunError> {
        self.record_resp(proc, resp);
        let step = self.pool.resume(proc, resp);
        self.handle_step(proc, step)
    }

    /// Consumes one coroutine step in committed order: dispatches the
    /// next request (drawing any injected stall *here*, so both engine
    /// modes consume the fault stream at identical points), retires a
    /// finished processor, or surfaces a panic.
    pub(super) fn handle_step(&mut self, proc: usize, step: Step<MemReq>) -> Result<(), RunError> {
        match step {
            Step::Request(req) => {
                self.record_req(proc, req);
                // Injected stall window: the node pauses (an OS interrupt,
                // a slow board) before its next operation dispatches. The
                // wait is charged as synchronization-like idle time.
                let mut at = self.now;
                if let Some(inj) = &mut self.injector {
                    if let Some(stall) = inj.stall() {
                        self.stats[proc].buckets.sync += stall;
                        at += stall;
                    }
                }
                if let Some(chk) = &mut self.checker {
                    chk.on_dispatch(proc, self.now, at)?;
                }
                self.push_ev(at, Ev::Dispatch(proc, req));
                Ok(())
            }
            Step::Done => {
                self.stats[proc].finish = self.now;
                self.live -= 1;
                self.spec_on_done(proc);
                Ok(())
            }
            Step::Panicked(message) => Err(RunError::Panicked { proc, message }),
        }
    }
}
