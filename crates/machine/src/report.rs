//! SPASM-style textual profile of a run.
//!
//! SPASM "provides a wide range of statistical information about the
//! execution of the program", separating per-processor overheads so the
//! analyst can see *where* time went. [`RunReport::profile`] renders that
//! table: one row per processor with the separated buckets, plus machine
//! totals (traffic, cache behaviour, events).

use std::fmt::Write as _;

use crate::engine::RunReport;

impl RunReport {
    /// Renders the per-processor overhead profile as an aligned table.
    ///
    /// Columns: completion time, computation (busy), memory (hits/local),
    /// latency, contention, directory wait, synchronization spin, message
    /// count. All times in microseconds.
    pub fn profile(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "machine: {} | exec {:.1}us | {} events | wall {:.1?}",
            self.kind,
            self.exec_time_us(),
            self.events,
            self.wall
        );
        let _ = writeln!(
            out,
            "{:>5} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8}",
            "proc", "finish", "busy", "mem", "latency", "contention", "dirwait", "sync", "msgs"
        );
        for (proc, s) in self.per_proc.iter().enumerate() {
            let b = &s.buckets;
            let _ = writeln!(
                out,
                "{:>5} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>8}",
                proc,
                s.finish.as_us_f64(),
                b.busy.as_us_f64(),
                b.mem.as_us_f64(),
                b.latency.as_us_f64(),
                b.contention.as_us_f64(),
                b.dir_wait.as_us_f64(),
                b.sync.as_us_f64(),
                b.msgs,
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "{:>5} {:>11} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>8}",
            "sum",
            "",
            t.busy.as_us_f64(),
            t.mem.as_us_f64(),
            t.latency.as_us_f64(),
            t.contention.as_us_f64(),
            t.dir_wait.as_us_f64(),
            t.sync.as_us_f64(),
            t.msgs,
        );
        let m = &self.summary;
        let _ = writeln!(
            out,
            "network: {} msgs, {} bytes | cache: {} hits, {} misses, {} invalidations",
            m.net_messages, m.net_bytes, m.cache_hits, m.cache_misses, m.invalidations
        );
        if !self.region_traffic.is_empty() {
            let _ = writeln!(out, "per-structure traffic (labeled regions):");
            for (label, b) in &self.region_traffic {
                let _ = writeln!(
                    out,
                    "  {:>14}: latency {:>9.1}us  contention {:>9.1}us  msgs {:>7}",
                    label,
                    b.latency.as_us_f64(),
                    b.contention.as_us_f64(),
                    b.msgs,
                );
            }
        }
        out
    }

    /// The load imbalance: slowest processor's finish over the mean
    /// finish. 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        if self.per_proc.is_empty() {
            return 1.0;
        }
        let mean: f64 = self
            .per_proc
            .iter()
            .map(|s| s.finish.as_us_f64())
            .sum::<f64>()
            / self.per_proc.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.exec_time_us() / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Engine, MachineKind, MemCtx, ProcBody, SetupCtx};
    use spasm_topology::Topology;

    fn demo_report() -> crate::RunReport {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        let a = setup.alloc(1, 4);
        let bodies: Vec<ProcBody> = vec![
            Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                mem.compute(100);
                mem.read(a);
            }),
            Box::new(|_, ctx| {
                MemCtx::new(ctx).compute(10);
            }),
        ];
        Engine::new(MachineKind::Target, &topo, setup, bodies)
            .run()
            .unwrap()
    }

    #[test]
    fn profile_renders_all_processors() {
        let r = demo_report();
        let table = r.profile();
        assert!(table.contains("machine: target"));
        assert!(table.lines().count() >= 6); // header x2 + 2 procs + sum + net
        assert!(table.contains("msgs"));
        assert!(table.contains("invalidations"));
    }

    #[test]
    fn imbalance_reflects_uneven_finish() {
        let r = demo_report();
        // Proc 0 works much longer than proc 1.
        assert!(r.imbalance() > 1.2, "imbalance {}", r.imbalance());
    }
}
