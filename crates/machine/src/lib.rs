//! # spasm-machine — the paper's machine characterizations
//!
//! The heart of the reproduction: four simulated machines behind one
//! interface, driven by one execution-driven engine.
//!
//! | Machine | Network | Locality | Paper role |
//! |---|---|---|---|
//! | [`MachineKind::Pram`] | none (unit-cost memory) | none needed | SPASM's *ideal time* metric |
//! | [`MachineKind::Target`] | link-level circuit-switched wormhole (`spasm-net`) | 64 KB 2-way coherent cache, Berkeley protocol, fully-mapped directory, every coherence action priced | the CC-NUMA machine being abstracted |
//! | [`MachineKind::LogP`] | L/g abstraction (`spasm-logp`) | **no caches** (NUMA à la Butterfly GP-1000) | "is LogP a good network abstraction?" |
//! | [`MachineKind::CLogP`] | L/g abstraction | *ideal coherent cache*: same Berkeley state machine, zero-cost coherence actions | "is an ideal cache a good locality abstraction?" |
//!
//! ## Execution-driven engine
//!
//! Application code runs as real Rust closures, one per simulated processor
//! (see `spasm-desim`'s coroutine pool). Every shared-memory operation
//! ([`MemReq`]) traps into the [`Engine`], which prices it on the selected
//! machine model and resumes the processor at the operation's completion
//! time. Values live in a [`ValueStore`] and commit at completion time, so
//! data-dependent control flow (sparse structures, dynamic task queues)
//! behaves exactly as on the simulated machine — the defining property of
//! execution-driven simulation.
//!
//! Synchronization (spin locks, sense-reversing barriers, condition flags in
//! [`sync`]) is built from ordinary memory operations plus [`MemReq::WaitUntil`],
//! a simulated spin loop: on cached machines the spinner idles in its cache
//! until the flag's block is updated (first and last accesses touch the
//! network — §6.2's EP observation); on the cache-less LogP machine every
//! poll honestly costs a network round trip.
//!
//! # Example
//!
//! ```
//! use spasm_machine::{Engine, MachineKind, MemCtx, ProcBody, SetupCtx};
//! use spasm_topology::Topology;
//!
//! // One word at home node 0, incremented by both processors under a lock.
//! let mut setup = SetupCtx::new(2);
//! let counter = setup.alloc(0, 1);
//! let lock = setup.alloc(0, 1);
//!
//! let bodies: Vec<ProcBody> = (0..2)
//!     .map(|_| {
//!         let body: ProcBody = Box::new(move |_, ctx| {
//!             let mem = MemCtx::new(ctx);
//!             spasm_machine::sync::lock(&mem, lock);
//!             let v = mem.read(counter);
//!             mem.write(counter, v + 1);
//!             spasm_machine::sync::unlock(&mem, lock);
//!         });
//!         body
//!     })
//!     .collect();
//!
//! let topo = Topology::full(2);
//! let mut engine = Engine::new(MachineKind::Target, &topo, setup, bodies);
//! let report = engine.run().unwrap();
//! assert_eq!(report.final_store.read_word(counter), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod engine;
mod faults;
mod fxhash;
mod models;
mod ops;
mod report;
mod setup;
mod stats;
mod store;
pub mod sync;
mod telemetry;

pub use addr::{Addr, AddressMap, UnallocatedAddress, BLOCK_BYTES, WORD_BYTES};
pub use engine::{
    BodyFactory, CancelProbe, Engine, EngineMode, ProcBody, RunError, RunReport, SpecStats,
};
pub use faults::{FaultCounters, FaultPlan, RunBudget};
pub use models::{MachineConfig, MachineKind, Model};
pub use ops::{MemCtx, MemReq, MemResp, Pred, RmwOp};
pub use setup::SetupCtx;
pub use spasm_check::{CheckMode, CheckViolation};
pub use stats::{Buckets, ProcStats};
pub use store::ValueStore;
pub use telemetry::{IntervalRecord, TelemetryConfig};

/// CPU cycle time: the paper fixes 33 MHz SPARC processors; we round the
/// 30.3 ns cycle to 30 ns.
pub const CYCLE_NS: u64 = 30;

/// Local memory access time: 10 cycles (300 ns).
pub const MEM_NS: u64 = 300;

/// Size of a coherence control message (request/forward/inval/ack/grant).
pub const CTRL_BYTES: u64 = 8;

/// Size of a data (cache-block) message.
pub const DATA_BYTES: u64 = 32;
