//! Deterministic fault injection and run budgets.
//!
//! A [`FaultPlan`] describes *adversity* to inject into a simulation:
//! message delays, duplications, and losses on the network path (a lost
//! message vanishes in flight and a retransmitted copy arrives after a
//! timeout), per-node stall windows (a node that briefly stops
//! dispatching, as if its OS took an interrupt), and forced
//! coherence-controller retries (a directory that NACKs and makes the
//! requester re-arbitrate). All decisions are drawn
//! from one in-tree [`SplitMix64`] stream seeded by the plan, and the
//! engine processes events in a deterministic order, so a given
//! `(experiment, plan)` pair always injects the *same* faults at the same
//! points — failures reproduce bit-identically.
//!
//! A [`RunBudget`] bounds a run in simulated time and/or event count so
//! that livelock (e.g. a polling spin loop whose flag never flips) becomes
//! a typed [`crate::RunError::BudgetExceeded`] instead of an endless loop.

use spasm_desim::SimTime;
use spasm_prng::{Rng, SplitMix64};

/// Upper bounds on a single simulation run.
///
/// `None` means unlimited. The engine checks the budget each time it pops
/// an event; exceeding either bound aborts the run with
/// [`crate::RunError::BudgetExceeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Maximum number of simulator events to process.
    pub max_events: Option<u64>,
    /// Maximum simulated time to reach.
    pub max_sim_time: Option<SimTime>,
}

impl RunBudget {
    /// No bounds: the run may take as long as it needs.
    pub const UNLIMITED: RunBudget = RunBudget {
        max_events: None,
        max_sim_time: None,
    };

    /// A budget bounded by event count only.
    pub fn events(max: u64) -> Self {
        RunBudget {
            max_events: Some(max),
            max_sim_time: None,
        }
    }

    /// A budget bounded by simulated time only.
    pub fn sim_time(max: SimTime) -> Self {
        RunBudget {
            max_events: None,
            max_sim_time: Some(max),
        }
    }

    /// Whether either bound is set.
    pub fn is_bounded(&self) -> bool {
        self.max_events.is_some() || self.max_sim_time.is_some()
    }
}

/// A deterministic, seeded plan of faults to inject into a run.
///
/// Probabilities are in `[0, 1]`; a plan with all probabilities zero
/// injects nothing (see [`FaultPlan::is_active`]). Magnitudes are in
/// nanoseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault decision stream. Two runs with the same seed
    /// (and the same workload) inject identical faults.
    pub seed: u64,
    /// Probability that a network message is delayed in flight.
    pub delay_prob: f64,
    /// Maximum extra in-flight delay, drawn uniformly from `[1, max]` ns.
    pub max_delay_ns: u64,
    /// Probability that an explicit message is duplicated (the copy
    /// arrives after the original; receivers must tolerate it).
    pub dup_prob: f64,
    /// Probability that a delivery is dropped in flight. A dropped
    /// message is retransmitted [`Self::retransmit_ns`] later; after
    /// [`Self::max_retransmits`] drops the next copy always arrives, so
    /// delivery is guaranteed by the bound rather than the dice.
    pub loss_prob: f64,
    /// Delay before a dropped message's retransmitted copy arrives.
    pub retransmit_ns: u64,
    /// Maximum drops per message before the loss roll is bypassed.
    pub max_retransmits: u32,
    /// Probability that a processor stalls before its next operation.
    pub stall_prob: f64,
    /// Stall window length in nanoseconds.
    pub stall_ns: u64,
    /// Probability that a coherence/memory transaction is NACKed and
    /// retried (each retry re-pays the transaction's network time).
    pub retry_prob: f64,
    /// Maximum forced retries per transaction.
    pub max_retries: u32,
    /// Probability that the optimistic engine *loses* the anti-message
    /// that should annihilate a refuted speculation — the rollback still
    /// runs, but its annihilation record is forged away. This is a fault
    /// against the speculation ledger itself, so it only perturbs the
    /// `optimistic` engine mode, and it draws from its own decision
    /// stream (see [`FaultInjector`]) so enabling it never shifts the
    /// network/stall/retry draw sequence.
    pub anti_loss_prob: f64,
}

impl FaultPlan {
    /// A quiet plan: seeded but injecting nothing. Useful as a base for
    /// struct-update syntax.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.0,
            max_delay_ns: 0,
            dup_prob: 0.0,
            loss_prob: 0.0,
            retransmit_ns: 0,
            max_retransmits: 0,
            stall_prob: 0.0,
            stall_ns: 0,
            retry_prob: 0.0,
            max_retries: 0,
            anti_loss_prob: 0.0,
        }
    }

    /// An adversarial plan exercising every fault class at once: 10%
    /// message delay (up to 2 µs), 5% duplication, 2% loss (3 µs
    /// retransmission timeout, at most 2 drops per message), 2% stalls
    /// of 5 µs, and 10% single retries.
    pub fn adversarial(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.10,
            max_delay_ns: 2_000,
            dup_prob: 0.05,
            loss_prob: 0.02,
            retransmit_ns: 3_000,
            max_retransmits: 2,
            stall_prob: 0.02,
            stall_ns: 5_000,
            retry_prob: 0.10,
            max_retries: 1,
            // Not an execution fault: forged anti-message loss corrupts
            // the speculation ledger, so it stays out of the standard
            // adversarial mix (the equivalence suite runs this plan on
            // both engines and expects identical, *valid* results).
            anti_loss_prob: 0.0,
        }
    }

    /// A randomized plan for chaos campaigns: every knob is drawn
    /// deterministically from the seed (decorrelated via SplitMix64),
    /// spanning near-quiet corners up to beyond-adversarial
    /// intensities, and — unlike [`FaultPlan::adversarial`] — with the
    /// speculation-ledger fault ([`FaultPlan::anti_loss_prob`]) in
    /// play. Two calls with the same seed build the identical plan, so
    /// a chaos trial's reference run and its crash-recovery replays
    /// inject the same faults.
    pub fn chaos(seed: u64) -> Self {
        let mut s = seed ^ 0xc0a5_c0de_0b5e_55edu64;
        let mut d = [0u64; 12];
        for slot in &mut d {
            *slot = spasm_prng::splitmix64(&mut s);
        }
        // Probabilities are drawn on a per-mille lattice so plans are
        // exactly reproducible in decimal logs.
        let prob = |raw: u64, ceiling_permille: u64| (raw % (ceiling_permille + 1)) as f64 / 1000.0;
        FaultPlan {
            seed,
            delay_prob: prob(d[0], 150),
            max_delay_ns: 500 + d[1] % 3_000,
            dup_prob: prob(d[2], 100),
            loss_prob: prob(d[3], 50),
            retransmit_ns: 1_000 + d[4] % 4_000,
            max_retransmits: 1 + (d[5] % 3) as u32,
            stall_prob: prob(d[6], 50),
            stall_ns: 1_000 + d[7] % 8_000,
            retry_prob: prob(d[8], 150),
            max_retries: 1 + (d[9] % 2) as u32,
            anti_loss_prob: prob(d[10], 300),
        }
    }

    /// The same plan under a different seed, for retry-with-reseed: the
    /// salt is mixed in so successive attempts draw fresh decisions.
    pub fn reseeded(&self, salt: u64) -> Self {
        let mut s = self.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(salt.wrapping_add(1));
        // One splitmix step decorrelates neighbouring salts.
        let seed = spasm_prng::splitmix64(&mut s);
        FaultPlan { seed, ..*self }
    }

    /// Whether any fault class has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.delay_prob > 0.0
            || self.dup_prob > 0.0
            || self.loss_prob > 0.0
            || self.stall_prob > 0.0
            || self.retry_prob > 0.0
            || self.anti_loss_prob > 0.0
    }
}

/// Counts of faults actually injected during a run (for reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages delayed in flight.
    pub delayed: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Deliveries dropped in flight and retransmitted.
    pub retransmits: u64,
    /// Processor stall windows inserted.
    pub stalls: u64,
    /// Coherence/memory transactions forced to retry.
    pub retries: u64,
    /// Anti-messages forged away (speculation-ledger fault; optimistic
    /// engine only).
    pub anti_losses: u64,
}

impl FaultCounters {
    /// Total faults of all classes.
    pub fn total(&self) -> u64 {
        self.delayed
            + self.duplicated
            + self.retransmits
            + self.stalls
            + self.retries
            + self.anti_losses
    }
}

/// Salt separating the anti-message-loss decision stream from the main
/// fault stream, so the ledger fault never shifts execution-fault draws.
const ANTI_STREAM_SALT: u64 = 0xA27B_5D14_93E6_0C48;

/// The engine-side fault roller: owns the decision stream and counters.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    anti_rng: SplitMix64,
    pub(crate) counters: FaultCounters,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: SplitMix64::new(plan.seed),
            anti_rng: SplitMix64::new(plan.seed ^ ANTI_STREAM_SALT),
            counters: FaultCounters::default(),
        }
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen_f64() < prob
    }

    /// Extra in-flight delay for a network message, if one is injected.
    pub(crate) fn message_delay(&mut self) -> Option<SimTime> {
        if self.roll(self.plan.delay_prob) && self.plan.max_delay_ns > 0 {
            self.counters.delayed += 1;
            let ns = 1 + self.rng.gen_u64_below(self.plan.max_delay_ns);
            Some(SimTime::from_ns(ns))
        } else {
            None
        }
    }

    /// Whether to duplicate an explicit message delivery.
    pub(crate) fn duplicate(&mut self) -> bool {
        let dup = self.roll(self.plan.dup_prob);
        if dup {
            self.counters.duplicated += 1;
        }
        dup
    }

    /// Whether to drop a delivery that has already been dropped `drops`
    /// times, and if so how long until the retransmitted copy arrives.
    ///
    /// The retransmission bound is checked *before* the dice roll, so
    /// the attempt after the last permitted drop consumes no stream
    /// draw and always delivers — a message can be late, never lost.
    pub(crate) fn message_loss(&mut self, drops: u32) -> Option<SimTime> {
        if self.plan.retransmit_ns == 0 || drops >= self.plan.max_retransmits {
            return None;
        }
        if self.roll(self.plan.loss_prob) {
            self.counters.retransmits += 1;
            Some(SimTime::from_ns(self.plan.retransmit_ns))
        } else {
            None
        }
    }

    /// Stall window to insert before a processor's next operation.
    pub(crate) fn stall(&mut self) -> Option<SimTime> {
        if self.roll(self.plan.stall_prob) && self.plan.stall_ns > 0 {
            self.counters.stalls += 1;
            Some(SimTime::from_ns(self.plan.stall_ns))
        } else {
            None
        }
    }

    /// Whether to forge away the anti-message for a refuted speculation.
    /// Draws from the dedicated anti-message stream — each rollback
    /// consumes exactly one draw regardless of the other knobs, so the
    /// main fault stream stays bit-identical with this knob on or off.
    pub(crate) fn anti_message_loss(&mut self) -> bool {
        let lost =
            self.plan.anti_loss_prob > 0.0 && self.anti_rng.gen_f64() < self.plan.anti_loss_prob;
        if lost {
            self.counters.anti_losses += 1;
        }
        lost
    }

    /// Number of forced retries for a network-touching transaction.
    pub(crate) fn coherence_retries(&mut self) -> u32 {
        if self.plan.max_retries == 0 || !self.roll(self.plan.retry_prob) {
            return 0;
        }
        let n = 1 + (self.rng.gen_u64_below(u64::from(self.plan.max_retries)) as u32);
        self.counters.retries += u64::from(n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::quiet(7));
        for _ in 0..1000 {
            assert!(inj.message_delay().is_none());
            assert!(!inj.duplicate());
            assert!(inj.message_loss(0).is_none());
            assert!(inj.stall().is_none());
            assert_eq!(inj.coherence_retries(), 0);
            assert!(!inj.anti_message_loss());
        }
        assert_eq!(inj.counters.total(), 0);
        assert!(!FaultPlan::quiet(7).is_active());
    }

    #[test]
    fn adversarial_plan_injects_every_class() {
        let mut inj = FaultInjector::new(FaultPlan::adversarial(42));
        for _ in 0..10_000 {
            inj.message_delay();
            inj.duplicate();
            inj.message_loss(0);
            inj.stall();
            inj.coherence_retries();
        }
        let c = inj.counters;
        assert!(c.delayed > 0, "no delays in 10k rolls");
        assert!(c.duplicated > 0, "no dups in 10k rolls");
        assert!(c.retransmits > 0, "no losses in 10k rolls");
        assert!(c.stalls > 0, "no stalls in 10k rolls");
        assert!(c.retries > 0, "no retries in 10k rolls");
    }

    #[test]
    fn loss_is_bounded_by_max_retransmits() {
        let plan = FaultPlan {
            loss_prob: 1.0,
            retransmit_ns: 500,
            max_retransmits: 2,
            ..FaultPlan::quiet(8)
        };
        let mut inj = FaultInjector::new(plan);
        // Certain loss still delivers: the roll is bypassed once a
        // message has burned its retransmission budget.
        assert_eq!(inj.message_loss(0), Some(SimTime::from_ns(500)));
        assert_eq!(inj.message_loss(1), Some(SimTime::from_ns(500)));
        assert_eq!(inj.message_loss(2), None);
        assert_eq!(inj.counters.retransmits, 2);
    }

    #[test]
    fn same_seed_same_decisions() {
        let decisions = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::adversarial(seed));
            (0..256)
                .map(|_| (inj.message_delay(), inj.duplicate(), inj.stall()))
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(9), decisions(9));
        assert_ne!(decisions(9), decisions(10));
    }

    #[test]
    fn reseeded_changes_the_stream_deterministically() {
        let plan = FaultPlan::adversarial(1);
        assert_ne!(plan.reseeded(0).seed, plan.seed);
        assert_ne!(plan.reseeded(0).seed, plan.reseeded(1).seed);
        assert_eq!(plan.reseeded(3), plan.reseeded(3));
        // Only the seed changes; the knobs survive.
        assert_eq!(plan.reseeded(5).delay_prob, plan.delay_prob);
    }

    #[test]
    fn delays_are_bounded_and_positive() {
        let plan = FaultPlan {
            delay_prob: 1.0,
            max_delay_ns: 10,
            ..FaultPlan::quiet(3)
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..1000 {
            let d = inj.message_delay().unwrap();
            assert!(d >= SimTime::from_ns(1) && d <= SimTime::from_ns(10));
        }
    }

    #[test]
    fn anti_loss_draws_from_its_own_stream() {
        // The main-stream decisions must be bit-identical whether or not
        // anti-message losses are being rolled in between them.
        let decisions = |anti: bool| {
            let plan = FaultPlan {
                anti_loss_prob: 1.0,
                ..FaultPlan::adversarial(11)
            };
            let mut inj = FaultInjector::new(plan);
            (0..256)
                .map(|_| {
                    if anti {
                        assert!(inj.anti_message_loss());
                    }
                    (inj.message_delay(), inj.duplicate(), inj.stall())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(false), decisions(true));
        let plan = FaultPlan {
            anti_loss_prob: 0.5,
            ..FaultPlan::quiet(3)
        };
        assert!(plan.is_active());
        let mut inj = FaultInjector::new(plan);
        let hits = (0..1000).filter(|_| inj.anti_message_loss()).count();
        assert!(hits > 300 && hits < 700, "{hits} losses in 1000 rolls");
        assert_eq!(inj.counters.anti_losses, hits as u64);
    }

    #[test]
    fn chaos_plans_are_deterministic_bounded_and_seed_sensitive() {
        let a = FaultPlan::chaos(7);
        let b = FaultPlan::chaos(7);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::chaos(8));
        for seed in 0..64 {
            let p = FaultPlan::chaos(seed);
            assert!(p.delay_prob <= 0.15 && p.loss_prob <= 0.05, "{p:?}");
            assert!(p.anti_loss_prob <= 0.30, "{p:?}");
            assert!(p.max_retransmits >= 1 && p.max_retries >= 1, "{p:?}");
            assert!(p.max_delay_ns >= 500 && p.retransmit_ns >= 1_000, "{p:?}");
        }
        // The ledger fault must actually be in play for some seeds.
        assert!((0..64).any(|s| FaultPlan::chaos(s).anti_loss_prob > 0.0));
    }

    #[test]
    fn budget_constructors() {
        assert!(!RunBudget::UNLIMITED.is_bounded());
        assert!(RunBudget::events(10).is_bounded());
        assert!(RunBudget::sim_time(SimTime::from_us(5)).is_bounded());
        assert_eq!(RunBudget::default(), RunBudget::UNLIMITED);
    }
}
