//! The execution-driven simulation engine.

use std::fmt;
use std::time::{Duration, Instant};

use spasm_cache::AccessKind;
use spasm_check::{CheckViolation, EngineChecker};
use spasm_desim::{CoroCtx, CoroPool, EventQueue, PopIfBefore, SimTime, Step};
use spasm_topology::{Topology, TopologyError};

use crate::addr::UnallocatedAddress;
use crate::faults::{FaultCounters, FaultInjector, RunBudget};
use crate::fxhash::FxHashMap;
use crate::models::{MachineConfig, MachineKind, Model, ModelSummary};
use crate::ops::{MemReq, MemResp, Pred, RmwOp};
use crate::stats::{Buckets, ProcStats};
use crate::telemetry::{Collector, IntervalRecord, Snapshot};
use crate::{Addr, AddressMap, SetupCtx, ValueStore, CYCLE_NS};

/// One simulated processor's program.
pub type ProcBody = Box<dyn FnOnce(usize, &CoroCtx<MemReq, MemResp>) + Send + 'static>;

/// Why a simulation failed.
///
/// Every variant is a *typed* outcome of [`Engine::run`]: application-level
/// failure modes (panic, deadlock, bad request) and injected or configured
/// limits (budget) end the run with an error value, never a process abort.
#[derive(Debug)]
pub enum RunError {
    /// A processor's body panicked.
    Panicked {
        /// The processor.
        proc: usize,
        /// The panic message.
        message: String,
    },
    /// No events remain but processors are still waiting — a lost-wakeup
    /// or application-level deadlock.
    Deadlock {
        /// Simulated time at which progress stopped.
        at: SimTime,
        /// Processors still blocked.
        waiting: Vec<usize>,
    },
    /// The run exceeded its [`RunBudget`] (livelock, runaway workload, or
    /// a deliberately tight bound).
    BudgetExceeded {
        /// Simulated time when the budget tripped.
        at: SimTime,
        /// Events processed when the budget tripped.
        events: u64,
    },
    /// A memory operation named an address outside every allocation.
    UnallocatedAddress {
        /// The offending address.
        addr: Addr,
    },
    /// A message could not be routed (out-of-range node or a broken
    /// link table).
    Route {
        /// The underlying topology error.
        error: TopologyError,
    },
    /// A processor issued a malformed request (unaligned access,
    /// out-of-range destination, oversized message, double receive).
    BadRequest {
        /// The processor.
        proc: usize,
        /// What was wrong with the request.
        message: String,
    },
    /// An online invariant checker detected a violation (only possible
    /// when the run's [`MachineConfig`] enables a
    /// [`spasm_check::CheckMode`]).
    Check(CheckViolation),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked { proc, message } => {
                write!(f, "processor {proc} panicked: {message}")
            }
            RunError::Deadlock { at, waiting } => {
                write!(
                    f,
                    "deadlock at {at}: processors {waiting:?} blocked forever"
                )
            }
            RunError::BudgetExceeded { at, events } => {
                write!(f, "run budget exceeded at {at} after {events} events")
            }
            RunError::UnallocatedAddress { addr } => {
                write!(f, "address {addr} not allocated")
            }
            RunError::Route { error } => write!(f, "routing failed: {error}"),
            RunError::BadRequest { proc, message } => {
                write!(f, "processor {proc} issued a bad request: {message}")
            }
            RunError::Check(violation) => write!(f, "{violation}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<UnallocatedAddress> for RunError {
    fn from(e: UnallocatedAddress) -> Self {
        RunError::UnallocatedAddress { addr: e.0 }
    }
}

impl From<TopologyError> for RunError {
    fn from(error: TopologyError) -> Self {
        RunError::Route { error }
    }
}

impl From<CheckViolation> for RunError {
    fn from(violation: CheckViolation) -> Self {
        RunError::Check(violation)
    }
}

/// Results of one simulation run.
#[derive(Debug)]
pub struct RunReport {
    /// Which machine was simulated.
    pub kind: MachineKind,
    /// Total (simulated) execution time: the maximum over processors of
    /// their completion times — SPASM's "total time".
    pub exec_time: SimTime,
    /// Per-processor statistics.
    pub per_proc: Vec<ProcStats>,
    /// Sum of all processors' buckets.
    pub totals: Buckets,
    /// Simulator events processed (the simulation-speed driver).
    pub events: u64,
    /// Machine-side counters (network traffic, cache behaviour).
    pub summary: ModelSummary,
    /// Per-labeled-region overhead attribution (SPASM-style "which data
    /// structure caused the traffic"), sorted by label.
    pub region_traffic: Vec<(&'static str, Buckets)>,
    /// The shared memory at completion, for result verification.
    pub final_store: ValueStore,
    /// Faults actually injected during the run (all zero when no
    /// [`crate::FaultPlan`] was configured).
    pub faults: FaultCounters,
    /// Interval telemetry records, one per non-empty sim-time bucket in
    /// order (empty unless the run's [`MachineConfig`] enabled a
    /// [`crate::TelemetryConfig`]).
    pub telemetry: Vec<IntervalRecord>,
    /// Host wall-clock time the simulation took (§7 "Speed of Simulation").
    pub wall: Duration,
}

impl RunReport {
    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Mean per-processor latency overhead, in microseconds — the metric
    /// the paper's latency figures plot.
    pub fn latency_overhead_us(&self) -> f64 {
        self.totals.latency.as_us_f64() / self.procs() as f64
    }

    /// Mean per-processor contention overhead, in microseconds.
    pub fn contention_overhead_us(&self) -> f64 {
        self.totals.contention.as_us_f64() / self.procs() as f64
    }

    /// Execution time in microseconds.
    pub fn exec_time_us(&self) -> f64 {
        self.exec_time.as_us_f64()
    }
}

#[derive(Debug)]
enum Ev {
    /// Handle a processor's request at its issue time.
    Dispatch(usize, MemReq),
    /// An operation completes: apply its effect and resume the processor.
    Commit(usize, Action),
    /// An explicit message arrives at its destination's mailbox.
    /// `drops` counts how many times this delivery has already been
    /// dropped in flight (bounds injected message loss).
    Deliver {
        dst: usize,
        tag: u64,
        value: u64,
        drops: u32,
    },
}

#[derive(Debug)]
enum Action {
    Compute,
    Read(Addr),
    Write(Addr, u64),
    Rmw(Addr, RmwOp),
    Check(Addr, Pred),
    Sent,
    Received(u64),
}

/// Arena for in-flight events. The queue orders bare `u32` slot ids (so
/// its internal moves, sorts, and bucket redistributions shuffle 4-byte
/// handles, not full [`Ev`] payloads); the payloads themselves sit in the
/// slab until popped. Freed slots are recycled LIFO, keeping the live
/// working set dense.
#[derive(Debug, Default)]
struct EvSlab {
    slots: Vec<Option<Ev>>,
    free: Vec<u32>,
}

impl EvSlab {
    #[inline]
    fn alloc(&mut self, ev: Ev) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(ev);
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("more than 2^32 in-flight events");
                self.slots.push(Some(ev));
                id
            }
        }
    }

    #[inline]
    fn take(&mut self, id: u32) -> Ev {
        let ev = self.slots[id as usize]
            .take()
            .expect("popped id names a live event");
        self.free.push(id);
        ev
    }
}

/// Drives application processes over a machine model.
///
/// See the crate-level example. The engine owns the coroutine pool, the
/// event queue, the value store, and the machine model; [`Engine::run`]
/// consumes events to completion and produces a [`RunReport`].
pub struct Engine {
    pool: CoroPool<MemReq, MemResp>,
    model: Model,
    amap: AddressMap,
    store: ValueStore,
    events: EventQueue<u32>,
    slab: EvSlab,
    /// word index → processors spin-waiting on that word.
    watchers: FxHashMap<u64, Vec<(usize, Pred)>>,
    region_traffic: FxHashMap<&'static str, Buckets>,
    /// (receiver, tag) → arrived-but-unconsumed message payloads, FIFO.
    mailboxes: FxHashMap<(usize, u64), std::collections::VecDeque<u64>>,
    /// Per-processor pending blocking receive (tag), if any.
    recv_wait: Vec<Option<u64>>,
    wait_start: Vec<Option<SimTime>>,
    stats: Vec<ProcStats>,
    live: usize,
    now: SimTime,
    budget: RunBudget,
    injector: Option<FaultInjector>,
    checker: Option<EngineChecker>,
    telemetry: Option<Collector>,
    processed: u64,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("kind", &self.model.kind())
            .field("procs", &self.stats.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine with the default [`MachineConfig`].
    pub fn new(kind: MachineKind, topo: &Topology, setup: SetupCtx, bodies: Vec<ProcBody>) -> Self {
        Engine::with_config(kind, topo, MachineConfig::default(), setup, bodies)
    }

    /// Builds an engine with an explicit machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the number of bodies does not match the topology size or
    /// the setup's node count.
    pub fn with_config(
        kind: MachineKind,
        topo: &Topology,
        config: MachineConfig,
        setup: SetupCtx,
        bodies: Vec<ProcBody>,
    ) -> Self {
        let p = topo.nodes();
        assert_eq!(bodies.len(), p, "one body per processor");
        assert_eq!(setup.nodes(), p, "setup sized for a different machine");
        let (amap, store) = setup.into_parts();
        let wrapped: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(id, body)| {
                move |proc: usize, ctx: &CoroCtx<MemReq, MemResp>| {
                    debug_assert_eq!(proc, id);
                    body(proc, ctx)
                }
            })
            .collect();
        Engine {
            pool: CoroPool::from_bodies(wrapped),
            model: Model::new(kind, topo, config),
            amap,
            store,
            events: EventQueue::new(),
            slab: EvSlab::default(),
            watchers: FxHashMap::default(),
            region_traffic: FxHashMap::default(),
            mailboxes: FxHashMap::default(),
            recv_wait: vec![None; p],
            wait_start: vec![None; p],
            stats: vec![ProcStats::default(); p],
            live: p,
            now: SimTime::ZERO,
            budget: config.budget,
            injector: config
                .faults
                .filter(|f| f.is_active())
                .map(FaultInjector::new),
            checker: config
                .check
                .enabled()
                .then(|| EngineChecker::new(config.check)),
            telemetry: config.telemetry.map(Collector::new),
            processed: 0,
        }
    }

    /// Samples the monotone counters the telemetry deltas derive from.
    /// Only called at bucket boundaries, so the O(procs) sweep is off the
    /// per-event path.
    fn telemetry_snapshot(&self) -> Snapshot {
        let mut busy = SimTime::ZERO;
        let mut mem = SimTime::ZERO;
        let mut comm = SimTime::ZERO;
        let mut sync = SimTime::ZERO;
        for s in &self.stats {
            busy += s.buckets.busy;
            mem += s.buckets.mem;
            comm += s.buckets.latency + s.buckets.contention + s.buckets.dir_wait;
            sync += s.buckets.sync;
        }
        let summary = self.model.summary(self.stats.len());
        Snapshot {
            busy_ns: busy.as_ns(),
            mem_ns: mem.as_ns(),
            comm_ns: comm.as_ns(),
            sync_ns: sync.as_ns(),
            cache_hits: summary.cache_hits,
            cache_misses: summary.cache_misses,
            faults: self.injector.as_ref().map_or(0, |i| i.counters.total()),
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Panicked`] if application code panics,
    /// [`RunError::Deadlock`] if all remaining processors are blocked on
    /// waits that can never be satisfied, [`RunError::BudgetExceeded`]
    /// when a configured [`RunBudget`] trips (the only way a *livelock* —
    /// e.g. a polling spin whose flag never flips — terminates), and the
    /// remaining variants for malformed requests.
    pub fn run(&mut self) -> Result<RunReport, RunError> {
        let wall_start = Instant::now();
        let p = self.stats.len();
        for proc in 0..p {
            self.resume(proc, MemResp::Start)?;
        }
        // A configured simulated-time budget becomes the queue's pop
        // deadline: the queue refuses to yield an event beyond it in one
        // combined operation, instead of popping and then rechecking.
        let deadline = self.budget.max_sim_time.unwrap_or(SimTime::MAX);
        loop {
            let (t, ev) = match self.events.pop_if_before(deadline) {
                PopIfBefore::Popped(t, id) => (t, self.slab.take(id)),
                PopIfBefore::Deferred(t) => {
                    // The head event lies past the budget: tripping on it
                    // counts it as processed, exactly as the pop-then-check
                    // formulation did.
                    self.now = t;
                    self.processed += 1;
                    return Err(RunError::BudgetExceeded {
                        at: self.now,
                        events: self.processed,
                    });
                }
                PopIfBefore::Empty => break,
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.processed += 1;
            if let Some(mut tele) = self.telemetry.take() {
                if tele.boundary_crossed(t) {
                    let snapshot = self.telemetry_snapshot();
                    tele.advance(t, self.events.len() as u64, snapshot);
                }
                tele.count_event();
                self.telemetry = Some(tele);
            }
            if self
                .budget
                .max_events
                .is_some_and(|max| self.processed > max)
            {
                return Err(RunError::BudgetExceeded {
                    at: self.now,
                    events: self.processed,
                });
            }
            // Injected message loss intercepts a delivery as it leaves
            // the queue: the in-flight copy vanishes and a retransmitted
            // one is scheduled after the plan's timeout. Decided before
            // the checker observes the delivery, so the conservation
            // ledger follows the drop instead of tripping on a delivery
            // that never happens.
            if let Ev::Deliver {
                dst,
                tag,
                value,
                drops,
            } = ev
            {
                if let Some(pause) = self
                    .injector
                    .as_mut()
                    .and_then(|inj| inj.message_loss(drops))
                {
                    let retry_at = t + pause;
                    if let Some(chk) = &mut self.checker {
                        chk.on_event(t, || format!("Drop Deliver {{ dst: {dst}, tag: {tag} }}"))?;
                        chk.on_drop(dst, tag, t, retry_at)?;
                    }
                    self.push_ev(
                        retry_at,
                        Ev::Deliver {
                            dst,
                            tag,
                            value,
                            drops: drops + 1,
                        },
                    );
                    continue;
                }
            }
            if let Some(chk) = &mut self.checker {
                chk.on_event(t, || format!("{ev:?}"))?;
                if let Ev::Deliver { dst, tag, .. } = &ev {
                    chk.on_deliver(*dst, *tag, t)?;
                }
            }
            match ev {
                Ev::Dispatch(proc, req) => self.dispatch(proc, req)?,
                Ev::Commit(proc, action) => self.commit(proc, action)?,
                Ev::Deliver {
                    dst, tag, value, ..
                } => self.deliver(dst, tag, value),
            }
        }
        if self.live > 0 {
            let mut waiting: Vec<usize> = self
                .watchers
                .values()
                .flat_map(|v| v.iter().map(|&(p, _)| p))
                .collect();
            waiting.extend(
                self.recv_wait
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.is_some())
                    .map(|(p, _)| p),
            );
            waiting.sort_unstable();
            return Err(RunError::Deadlock {
                at: self.now,
                waiting,
            });
        }
        if let Some(chk) = &mut self.checker {
            let (duplicates, retransmits) = self
                .injector
                .as_ref()
                .map_or((0, 0), |i| (i.counters.duplicated, i.counters.retransmits));
            chk.on_run_end(duplicates, retransmits)?;
            if self.events.popped() != self.events.pushed() {
                return Err(RunError::Check(CheckViolation {
                    invariant: "event-accounting",
                    message: format!(
                        "drained queue popped {} of {} pushed events",
                        self.events.popped(),
                        self.events.pushed()
                    ),
                    recent: Vec::new(),
                }));
            }
            if let Some(v) = self.model.final_check() {
                return Err(v.into());
            }
        }
        let telemetry = match self.telemetry.take() {
            Some(mut tele) => {
                // Close the final partial bucket; the queue is drained.
                let snapshot = self.telemetry_snapshot();
                tele.flush(0, snapshot);
                tele.into_records()
            }
            None => Vec::new(),
        };
        let mut totals = Buckets::default();
        let mut exec_time = SimTime::ZERO;
        for s in &self.stats {
            totals.add(&s.buckets);
            exec_time = exec_time.max(s.finish);
        }
        let mut region_traffic: Vec<(&'static str, Buckets)> =
            self.region_traffic.iter().map(|(&k, &v)| (k, v)).collect();
        region_traffic.sort_by_key(|&(k, _)| k);
        Ok(RunReport {
            kind: self.model.kind(),
            exec_time,
            per_proc: self.stats.clone(),
            totals,
            events: self.events.pushed(),
            summary: self.model.summary(p),
            region_traffic,
            final_store: self.store.clone(),
            faults: self
                .injector
                .as_ref()
                .map(|i| i.counters)
                .unwrap_or_default(),
            telemetry,
            wall: wall_start.elapsed(),
        })
    }

    /// Allocates a slab slot for `ev` and schedules it at `at`.
    #[inline]
    fn push_ev(&mut self, at: SimTime, ev: Ev) {
        let id = self.slab.alloc(ev);
        self.events.push(at, id);
    }

    fn dispatch(&mut self, proc: usize, req: MemReq) -> Result<(), RunError> {
        self.stats[proc].ops += 1;
        let now = self.now;
        match req {
            MemReq::Compute { cycles } => {
                let dur = SimTime::from_ns(cycles * CYCLE_NS);
                self.stats[proc].buckets.busy += dur;
                self.push_ev(now + dur, Ev::Commit(proc, Action::Compute));
            }
            MemReq::Read { addr } => {
                let finish = self.priced_access(proc, addr, AccessKind::Read)?;
                self.push_ev(finish, Ev::Commit(proc, Action::Read(addr)));
            }
            MemReq::Write { addr, value } => {
                let finish = self.priced_access(proc, addr, AccessKind::Write)?;
                self.push_ev(finish, Ev::Commit(proc, Action::Write(addr, value)));
            }
            MemReq::Rmw { addr, op } => {
                let finish = self.priced_access(proc, addr, AccessKind::Write)?;
                self.push_ev(finish, Ev::Commit(proc, Action::Rmw(addr, op)));
            }
            MemReq::WaitUntil { addr, pred } => {
                let finish = self.priced_access(proc, addr, AccessKind::Read)?;
                self.push_ev(finish, Ev::Commit(proc, Action::Check(addr, pred)));
            }
            MemReq::Send {
                dst,
                bytes,
                tag,
                value,
            } => {
                if !(1..=32).contains(&bytes) {
                    return Err(RunError::BadRequest {
                        proc,
                        message: format!("message size {bytes} outside 1..=32 bytes"),
                    });
                }
                if dst >= self.stats.len() {
                    return Err(RunError::BadRequest {
                        proc,
                        message: format!("destination {dst} out of range"),
                    });
                }
                let cost = self.model.msg_send(self.now, proc, dst, bytes)?;
                self.stats[proc].buckets.add(&cost.buckets);
                let mut delivered = cost.delivered;
                let mut copies = 1u64;
                if let Some(inj) = &mut self.injector {
                    if let Some(delay) = inj.message_delay() {
                        delivered += delay;
                    }
                    if inj.duplicate() {
                        // The copy trails the original on the same tag;
                        // FIFO mailboxes keep the order deterministic.
                        copies = 2;
                    }
                }
                if let Some(chk) = &mut self.checker {
                    chk.on_send(dst, tag, cost.delivered, delivered, copies)?;
                }
                self.push_ev(cost.sender_free, Ev::Commit(proc, Action::Sent));
                for _ in 0..copies {
                    self.push_ev(
                        delivered,
                        Ev::Deliver {
                            dst,
                            tag,
                            value,
                            drops: 0,
                        },
                    );
                }
            }
            MemReq::Recv { tag } => {
                if let Some(value) = self
                    .mailboxes
                    .get_mut(&(proc, tag))
                    .and_then(|q| q.pop_front())
                {
                    // Message already arrived: charge the receive handoff.
                    let finish = self.now + SimTime::from_ns(CYCLE_NS);
                    self.push_ev(finish, Ev::Commit(proc, Action::Received(value)));
                } else {
                    if self.recv_wait[proc].is_some() {
                        return Err(RunError::BadRequest {
                            proc,
                            message: format!("processor {proc} already blocked in recv"),
                        });
                    }
                    self.recv_wait[proc] = Some(tag);
                    if self.wait_start[proc].is_none() {
                        self.wait_start[proc] = Some(self.now);
                    }
                }
            }
        }
        Ok(())
    }

    fn priced_access(
        &mut self,
        proc: usize,
        addr: Addr,
        kind: AccessKind,
    ) -> Result<SimTime, RunError> {
        if !addr.is_word_aligned() {
            return Err(RunError::BadRequest {
                proc,
                message: format!("unaligned access at {addr}"),
            });
        }
        let mut cost = self.model.access(self.now, proc, addr, &self.amap, kind)?;
        let model_finish = cost.finish;
        // Injected adversity on network-touching transactions. The retry
        // re-pays the whole transaction (a NACKed requester re-arbitrates
        // from scratch); the delay models slow links. Both are charged to
        // contention — time spent waiting on the network, not using it.
        if cost.buckets.msgs > 0 {
            if let Some(inj) = &mut self.injector {
                let duration = cost.finish - self.now;
                for _ in 0..inj.coherence_retries() {
                    cost.finish += duration;
                    cost.buckets.contention += duration;
                }
                if let Some(delay) = inj.message_delay() {
                    cost.finish += delay;
                    cost.buckets.contention += delay;
                }
            }
        }
        if let Some(chk) = &mut self.checker {
            chk.on_access(proc, model_finish, cost.finish)?;
        }
        self.stats[proc].buckets.add(&cost.buckets);
        if let Some(label) = self.amap.label_of(addr) {
            self.region_traffic
                .entry(label)
                .or_default()
                .add(&cost.buckets);
        }
        Ok(cost.finish)
    }

    fn commit(&mut self, proc: usize, action: Action) -> Result<(), RunError> {
        match action {
            Action::Compute => self.resume(proc, MemResp::Ack),
            Action::Read(addr) => {
                let v = self.store.read_word(addr);
                self.resume(proc, MemResp::Value(v))
            }
            Action::Write(addr, value) => {
                self.store.write_word(addr, value);
                self.wake_watchers(addr);
                self.resume(proc, MemResp::Ack)
            }
            Action::Rmw(addr, op) => {
                let old = self.store.read_word(addr);
                self.store.write_word(addr, op.apply(old));
                self.wake_watchers(addr);
                self.resume(proc, MemResp::Value(old))
            }
            Action::Sent => self.resume(proc, MemResp::Ack),
            Action::Received(value) => {
                if let Some(start) = self.wait_start[proc].take() {
                    self.stats[proc].buckets.sync += self.now - start;
                }
                self.resume(proc, MemResp::Value(value))
            }
            Action::Check(addr, pred) => {
                let v = self.store.read_word(addr);
                if pred.eval(v) {
                    if let Some(start) = self.wait_start[proc].take() {
                        self.stats[proc].buckets.sync += self.now - start;
                    }
                    self.resume(proc, MemResp::Value(v))
                } else {
                    if self.wait_start[proc].is_none() {
                        self.wait_start[proc] = Some(self.now);
                    }
                    if self.model.is_polling() {
                        // Cache-less machine: each poll really re-reads
                        // over the network. Re-dispatch immediately; the
                        // read itself advances time, so this terminates.
                        self.push_ev(
                            self.now,
                            Ev::Dispatch(proc, MemReq::WaitUntil { addr, pred }),
                        );
                    } else {
                        // Spin in-cache: idle until the word is written.
                        self.watchers
                            .entry(addr.word_index())
                            .or_default()
                            .push((proc, pred));
                    }
                    Ok(())
                }
            }
        }
    }

    fn wake_watchers(&mut self, addr: Addr) {
        if let Some(waiters) = self.watchers.remove(&addr.word_index()) {
            for (proc, pred) in waiters {
                // Each waiter re-reads the (just-invalidated) word and
                // re-checks — the paper's "first and last accesses use the
                // network" spin behaviour.
                self.push_ev(
                    self.now,
                    Ev::Dispatch(proc, MemReq::WaitUntil { addr, pred }),
                );
            }
        }
    }

    fn deliver(&mut self, dst: usize, tag: u64, value: u64) {
        self.mailboxes
            .entry((dst, tag))
            .or_default()
            .push_back(value);
        if self.recv_wait[dst] == Some(tag) {
            self.recv_wait[dst] = None;
            // Re-dispatch the receive; it will find the mailbox non-empty.
            self.push_ev(self.now, Ev::Dispatch(dst, MemReq::Recv { tag }));
        }
    }

    fn resume(&mut self, proc: usize, resp: MemResp) -> Result<(), RunError> {
        match self.pool.resume(proc, resp) {
            Step::Request(req) => {
                // Injected stall window: the node pauses (an OS interrupt,
                // a slow board) before its next operation dispatches. The
                // wait is charged as synchronization-like idle time.
                let mut at = self.now;
                if let Some(inj) = &mut self.injector {
                    if let Some(stall) = inj.stall() {
                        self.stats[proc].buckets.sync += stall;
                        at += stall;
                    }
                }
                if let Some(chk) = &mut self.checker {
                    chk.on_dispatch(proc, self.now, at)?;
                }
                self.push_ev(at, Ev::Dispatch(proc, req));
                Ok(())
            }
            Step::Done => {
                self.stats[proc].finish = self.now;
                self.live -= 1;
                Ok(())
            }
            Step::Panicked(message) => Err(RunError::Panicked { proc, message }),
        }
    }
}
