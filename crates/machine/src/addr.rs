//! Simulated shared-memory addressing and NUMA placement.

use std::fmt;

/// Bytes per simulated data word (one `u64`).
pub const WORD_BYTES: u64 = 8;

/// Bytes per cache block: 32 (4 words), per the paper's §5.
pub const BLOCK_BYTES: u64 = 32;

/// A byte address in the simulated globally-shared address space.
///
/// All memory operations are word-granular; addresses handed to the engine
/// must be word-aligned. Helper methods navigate words and blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The address `words` words past `self`.
    #[inline]
    pub fn offset_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }

    /// The block number containing this address.
    #[inline]
    pub fn block(self) -> u64 {
        self.0 / BLOCK_BYTES
    }

    /// The word index (global) of this address.
    #[inline]
    pub fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// Whether the address is word-aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A lookup of an address that no allocation covers.
///
/// Surfaced by the engine as [`crate::RunError::UnallocatedAddress`]; an
/// application that fabricates a pointer gets a typed error for the whole
/// run, not a process abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnallocatedAddress(pub Addr);

impl fmt::Display for UnallocatedAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address {} not allocated", self.0)
    }
}

impl std::error::Error for UnallocatedAddress {}

#[derive(Debug, Clone)]
struct Region {
    start: u64,
    end: u64,
    home: usize,
    label: Option<&'static str>,
}

/// The NUMA placement map: which node's memory is home to each address.
///
/// The paper's target gives each node "a sufficiently large piece of the
/// globally shared memory such that the data-set assigned to each processor
/// fits entirely in its portion" — placement is explicit, by allocation.
/// Allocations are block-aligned so distinct allocations never share a
/// cache block (no accidental false sharing between data structures; false
/// sharing *within* an allocation is of course still possible and is part
/// of what the paper's FFT spatial-locality discussion is about).
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    regions: Vec<Region>,
    next: u64,
    p: usize,
}

impl AddressMap {
    /// Creates an empty map for `p` nodes.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one node");
        AddressMap {
            regions: Vec::new(),
            next: 0,
            p,
        }
    }

    /// Allocates `words` words homed at `home`. Returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range or `words` is zero.
    pub fn alloc(&mut self, home: usize, words: u64) -> Addr {
        self.alloc_labeled(home, words, None)
    }

    /// Allocates `words` words homed at `home`, attributing the region's
    /// traffic to `label` in SPASM-style per-structure profiles.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range or `words` is zero.
    pub fn alloc_labeled(&mut self, home: usize, words: u64, label: Option<&'static str>) -> Addr {
        assert!(home < self.p, "home node {home} out of range");
        assert!(words > 0, "zero-length allocation");
        let start = self.next;
        let bytes = words * WORD_BYTES;
        // Round the next allocation up to a block boundary.
        let end = (start + bytes).div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        self.regions.push(Region {
            start,
            end,
            home,
            label,
        });
        self.next = end;
        Addr(start)
    }

    fn region_of(&self, addr: Addr) -> Option<&Region> {
        let i = self.regions.partition_point(|r| r.end <= addr.0);
        self.regions
            .get(i)
            .filter(|r| r.start <= addr.0 && addr.0 < r.end)
    }

    /// The home node of `addr`.
    ///
    /// # Errors
    ///
    /// [`UnallocatedAddress`] if no allocation covers `addr` — surfaced by
    /// the engine as [`crate::RunError::UnallocatedAddress`].
    pub fn home_of(&self, addr: Addr) -> Result<usize, UnallocatedAddress> {
        self.region_of(addr)
            .map(|r| r.home)
            .ok_or(UnallocatedAddress(addr))
    }

    /// The label of the region containing `addr`, if the address is
    /// allocated and the region was labeled. An unallocated address
    /// simply has no label; [`AddressMap::home_of`] is the lookup that
    /// reports unallocated addresses as errors.
    pub fn label_of(&self, addr: Addr) -> Option<&'static str> {
        self.region_of(addr).and_then(|r| r.label)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.p
    }

    /// Total bytes allocated (including block-alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_block_math() {
        let a = Addr(64);
        assert_eq!(a.offset_words(3), Addr(88));
        assert_eq!(a.block(), 2);
        assert_eq!(Addr(95).block(), 2);
        assert_eq!(Addr(96).block(), 3);
        assert_eq!(a.word_index(), 8);
        assert!(a.is_word_aligned());
        assert!(!Addr(65).is_word_aligned());
    }

    #[test]
    fn allocations_are_block_aligned_and_disjoint() {
        let mut m = AddressMap::new(4);
        let a = m.alloc(0, 1); // 8 bytes -> padded to 32
        let b = m.alloc(1, 5); // 40 bytes -> padded to 64
        let c = m.alloc(2, 4);
        assert_eq!(a, Addr(0));
        assert_eq!(b, Addr(32));
        assert_eq!(c, Addr(96));
        assert_ne!(a.block(), b.block());
        assert_ne!(b.offset_words(4).block(), c.block());
    }

    #[test]
    fn home_lookup() {
        let mut m = AddressMap::new(4);
        let a = m.alloc(3, 4);
        let b = m.alloc(1, 100);
        assert_eq!(m.home_of(a), Ok(3));
        assert_eq!(m.home_of(a.offset_words(3)), Ok(3));
        assert_eq!(m.home_of(b), Ok(1));
        assert_eq!(m.home_of(b.offset_words(99)), Ok(1));
    }

    #[test]
    fn unallocated_address_is_a_typed_error() {
        let mut m = AddressMap::new(2);
        m.alloc(0, 1);
        assert_eq!(m.home_of(Addr(1000)), Err(UnallocatedAddress(Addr(1000))));
        assert_eq!(m.label_of(Addr(1000)), None);
        assert!(UnallocatedAddress(Addr(1000))
            .to_string()
            .contains("not allocated"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_home_panics() {
        AddressMap::new(2).alloc(2, 1);
    }

    #[test]
    fn allocated_bytes_reports_padding() {
        let mut m = AddressMap::new(1);
        m.alloc(0, 1);
        assert_eq!(m.allocated_bytes(), 32);
    }
}
