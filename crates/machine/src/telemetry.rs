//! Streaming run telemetry: sim-time-bucketed interval records.
//!
//! When a [`crate::MachineConfig`] carries a [`TelemetryConfig`], the
//! engine partitions simulated time into fixed-width buckets
//! `[iΔ, (i+1)Δ)` and, as the event loop crosses each bucket boundary,
//! emits one [`IntervalRecord`] for every bucket in which at least one
//! event was processed. Every field is derived purely from simulated
//! state (event counts, queue occupancy, the SPASM overhead buckets,
//! model counters, fault counters), so the record stream for a given
//! (scenario, seed, machine, procs) point is deterministic: identical
//! across `--jobs` settings, across journaled kill-and-resume, and
//! across hosts.
//!
//! Telemetry is strictly passive — it observes the run and never feeds
//! back into pricing, scheduling, or the checkers — and costs one
//! branch per event when enabled, one `Option` test when disabled.

use spasm_desim::SimTime;

/// Enables interval telemetry on a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Bucket width Δ in simulated time. Must be nonzero.
    pub interval: SimTime,
}

impl TelemetryConfig {
    /// A bucket width of `us` simulated microseconds.
    pub fn every_us(us: u64) -> TelemetryConfig {
        TelemetryConfig {
            interval: SimTime::from_us(us.max(1)),
        }
    }
}

/// One closed telemetry bucket. All fields are simulation-deterministic;
/// host wall-clock never enters a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalRecord {
    /// Bucket index `i` (buckets with zero events are skipped, so
    /// indices are strictly increasing but not necessarily contiguous).
    pub index: u64,
    /// Bucket start, `i * Δ`, in simulated nanoseconds.
    pub t0_ns: u64,
    /// Bucket end (exclusive), `(i + 1) * Δ`, in simulated nanoseconds.
    pub t1_ns: u64,
    /// Events processed inside the bucket.
    pub events: u64,
    /// Events pending in the queue when the bucket closed.
    pub queue_depth: u64,
    /// Computation time accrued across all processors in the bucket, ns.
    pub busy_ns: u64,
    /// Cache-hit / local-memory time accrued in the bucket, ns.
    pub mem_ns: u64,
    /// Communication overhead (latency + contention + directory wait)
    /// accrued in the bucket, ns.
    pub comm_ns: u64,
    /// Synchronization spin time accrued in the bucket, ns.
    pub sync_ns: u64,
    /// Cache hits observed in the bucket (0 on cache-less machines).
    pub cache_hits: u64,
    /// Cache misses observed in the bucket (0 on cache-less machines).
    pub cache_misses: u64,
    /// Faults injected in the bucket (0 without an active fault plan).
    pub faults: u64,
}

/// Monotone counters sampled at a bucket boundary; consecutive
/// snapshots difference into one [`IntervalRecord`]'s deltas.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Snapshot {
    pub busy_ns: u64,
    pub mem_ns: u64,
    pub comm_ns: u64,
    pub sync_ns: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub faults: u64,
}

/// The engine-side collector: tracks the open bucket and accumulates
/// closed records.
#[derive(Debug)]
pub(crate) struct Collector {
    interval_ns: u64,
    /// Index of the open bucket.
    cur: u64,
    /// First simulated ns at or past the open bucket (its close line).
    end_ns: u64,
    /// Events processed inside the open bucket.
    events: u64,
    last: Snapshot,
    records: Vec<IntervalRecord>,
}

impl Collector {
    pub(crate) fn new(config: TelemetryConfig) -> Collector {
        let interval_ns = config.interval.as_ns().max(1);
        Collector {
            interval_ns,
            cur: 0,
            end_ns: interval_ns,
            events: 0,
            last: Snapshot::default(),
            records: Vec::new(),
        }
    }

    /// Whether the event at `now` lies past the open bucket (the caller
    /// must close buckets before counting it). Kept trivially inlinable:
    /// this is the only telemetry work on the per-event hot path.
    #[inline]
    pub(crate) fn boundary_crossed(&self, now: SimTime) -> bool {
        now.as_ns() >= self.end_ns
    }

    /// Counts one processed event in the open bucket.
    #[inline]
    pub(crate) fn count_event(&mut self) {
        self.events += 1;
    }

    /// Closes the open bucket (if it saw any events) against the current
    /// counter `snapshot` and queue occupancy, then re-opens at the
    /// bucket containing `now`.
    pub(crate) fn advance(&mut self, now: SimTime, queue_depth: u64, snapshot: Snapshot) {
        self.flush(queue_depth, snapshot);
        self.cur = now.as_ns() / self.interval_ns;
        self.end_ns = (self.cur + 1).saturating_mul(self.interval_ns);
    }

    /// Closes the open bucket without re-opening (end of run).
    pub(crate) fn flush(&mut self, queue_depth: u64, snapshot: Snapshot) {
        if self.events > 0 {
            self.records.push(IntervalRecord {
                index: self.cur,
                t0_ns: self.cur * self.interval_ns,
                t1_ns: self.end_ns,
                events: self.events,
                queue_depth,
                busy_ns: snapshot.busy_ns - self.last.busy_ns,
                mem_ns: snapshot.mem_ns - self.last.mem_ns,
                comm_ns: snapshot.comm_ns - self.last.comm_ns,
                sync_ns: snapshot.sync_ns - self.last.sync_ns,
                cache_hits: snapshot.cache_hits - self.last.cache_hits,
                cache_misses: snapshot.cache_misses - self.last.cache_misses,
                faults: snapshot.faults - self.last.faults,
            });
            self.last = snapshot;
            self.events = 0;
        }
    }

    /// The closed records, consuming the collector.
    pub(crate) fn into_records(self) -> Vec<IntervalRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_close_on_boundary_with_deltas() {
        let mut c = Collector::new(TelemetryConfig::every_us(1)); // Δ = 1000 ns
        assert!(!c.boundary_crossed(SimTime::from_ns(999)));
        c.count_event();
        c.count_event();
        assert!(c.boundary_crossed(SimTime::from_ns(1000)));
        c.advance(
            SimTime::from_ns(2500),
            3,
            Snapshot {
                busy_ns: 100,
                ..Snapshot::default()
            },
        );
        // Event in bucket 2, then final flush.
        c.count_event();
        c.flush(
            0,
            Snapshot {
                busy_ns: 150,
                ..Snapshot::default()
            },
        );
        let records = c.into_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].index, 0);
        assert_eq!((records[0].t0_ns, records[0].t1_ns), (0, 1000));
        assert_eq!(records[0].events, 2);
        assert_eq!(records[0].queue_depth, 3);
        assert_eq!(records[0].busy_ns, 100);
        assert_eq!(records[1].index, 2);
        assert_eq!((records[1].t0_ns, records[1].t1_ns), (2000, 3000));
        assert_eq!(records[1].events, 1);
        assert_eq!(records[1].busy_ns, 50, "deltas, not running totals");
    }

    #[test]
    fn empty_buckets_are_skipped() {
        let mut c = Collector::new(TelemetryConfig::every_us(1));
        // No events at all: advancing and flushing emits nothing.
        c.advance(SimTime::from_ns(5000), 0, Snapshot::default());
        c.flush(0, Snapshot::default());
        assert!(c.into_records().is_empty());
    }
}
