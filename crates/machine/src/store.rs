//! The simulated shared-memory value store.

use crate::fxhash::FxHashMap;
use crate::Addr;

/// Word-granular storage for simulated shared memory values.
///
/// The machine models price *time*; the store holds *data*. Values commit
/// at an operation's completion time (the engine applies mutations when it
/// processes the completion event), so overlapping atomic operations
/// serialize in commit order. Unwritten words read as zero.
///
/// Floating-point values are stored as `u64` bit patterns; see
/// [`ValueStore::read_f64`] / [`ValueStore::write_f64`].
#[derive(Debug, Clone, Default)]
pub struct ValueStore {
    words: FxHashMap<u64, u64>,
}

impl ValueStore {
    /// Creates an empty store (all words zero).
    pub fn new() -> Self {
        ValueStore::default()
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is not word-aligned.
    pub fn read_word(&self, addr: Addr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned read at {addr}");
        self.words.get(&addr.word_index()).copied().unwrap_or(0)
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is not word-aligned.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        assert!(addr.is_word_aligned(), "unaligned write at {addr}");
        self.words.insert(addr.word_index(), value);
    }

    /// Reads the word at `addr` as an `f64` bit pattern.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_word(addr))
    }

    /// Writes an `f64` as its bit pattern at `addr`.
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_word(addr, value.to_bits());
    }

    /// Number of words that have ever been written.
    pub fn written_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_read_zero() {
        let s = ValueStore::new();
        assert_eq!(s.read_word(Addr(0)), 0);
        assert_eq!(s.read_word(Addr(8192)), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = ValueStore::new();
        s.write_word(Addr(16), 42);
        assert_eq!(s.read_word(Addr(16)), 42);
        assert_eq!(s.read_word(Addr(24)), 0);
        assert_eq!(s.written_words(), 1);
    }

    #[test]
    fn f64_roundtrip() {
        let mut s = ValueStore::new();
        s.write_f64(Addr(8), -1234.5e-6);
        assert_eq!(s.read_f64(Addr(8)), -1234.5e-6);
        // NaN bit patterns survive too.
        s.write_f64(Addr(16), f64::NAN);
        assert!(s.read_f64(Addr(16)).is_nan());
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        ValueStore::new().read_word(Addr(3));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        ValueStore::new().write_word(Addr(9), 1);
    }
}
