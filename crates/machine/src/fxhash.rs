//! A fast, deterministic hasher for the engine's hot maps.
//!
//! The engine consults several `HashMap`s on every simulated memory
//! operation (the value store, per-block serialization times, spin
//! watchers, mailboxes, region-traffic attribution). The standard
//! `RandomState`/SipHash pays DoS-resistance costs that are pointless for
//! simulator-internal keys, and its per-process random seed makes map
//! iteration order vary between runs. This module provides the classic
//! Fx multiply-rotate hash instead: a handful of instructions per key,
//! and fully deterministic — iteration order depends only on the inserted
//! keys (call sites that expose ordering still sort explicitly).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate string/word hasher (the rustc "FxHash" construction).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub(crate) type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(64));
        // Block numbers differing only in high bits still spread.
        assert_ne!(h(1 << 40) >> 52, h(2 << 40) >> 52);
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1000 {
            m.insert(k * 7, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000 {
            assert_eq!(m.get(&(k * 7)), Some(&k));
        }
        assert!(!m.contains_key(&3));
    }

    #[test]
    fn str_and_tuple_keys_work() {
        let mut m: FxHashMap<&'static str, u32> = FxHashMap::default();
        m.insert("barrier", 1);
        m.insert("matrix", 2);
        assert_eq!(m["barrier"], 1);
        let mut t: FxHashMap<(usize, u64), u32> = FxHashMap::default();
        t.insert((3, 99), 7);
        assert_eq!(t[&(3, 99)], 7);
    }
}
