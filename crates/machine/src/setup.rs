//! Pre-simulation workspace construction.

use crate::{Addr, AddressMap, ValueStore};

/// Builds the simulated address space before timing starts.
///
/// Applications allocate their shared data structures and write initial
/// values here at zero simulated cost — the paper measures the parallel
/// computation, not data-set loading. Caches start cold regardless.
///
/// # Example
///
/// ```
/// use spasm_machine::SetupCtx;
///
/// let mut setup = SetupCtx::new(4);
/// let vec = setup.alloc(2, 8); // eight words homed at node 2
/// setup.init_f64(vec, 1.5);
/// assert_eq!(setup.store().read_f64(vec), 1.5);
/// ```
#[derive(Debug)]
pub struct SetupCtx {
    amap: AddressMap,
    store: ValueStore,
}

impl SetupCtx {
    /// Creates an empty address space for `p` nodes.
    pub fn new(p: usize) -> Self {
        SetupCtx {
            amap: AddressMap::new(p),
            store: ValueStore::new(),
        }
    }

    /// Allocates `words` words homed at node `home`.
    pub fn alloc(&mut self, home: usize, words: u64) -> Addr {
        self.amap.alloc(home, words)
    }

    /// Allocates `words` words homed at `home`, attributing the region's
    /// traffic to `label` in the run report's per-structure profile.
    pub fn alloc_labeled(&mut self, home: usize, words: u64, label: &'static str) -> Addr {
        self.amap.alloc_labeled(home, words, Some(label))
    }

    /// Allocates and fills a word array homed at `home`.
    pub fn alloc_init(&mut self, home: usize, values: &[u64]) -> Addr {
        let base = self.amap.alloc(home, values.len() as u64);
        for (i, &v) in values.iter().enumerate() {
            self.store.write_word(base.offset_words(i as u64), v);
        }
        base
    }

    /// Allocates and fills an `f64` array homed at `home`.
    pub fn alloc_init_f64(&mut self, home: usize, values: &[f64]) -> Addr {
        let base = self.amap.alloc(home, values.len() as u64);
        for (i, &v) in values.iter().enumerate() {
            self.store.write_f64(base.offset_words(i as u64), v);
        }
        base
    }

    /// Writes an initial word value.
    pub fn init(&mut self, addr: Addr, value: u64) {
        self.store.write_word(addr, value);
    }

    /// Writes an initial `f64` value.
    pub fn init_f64(&mut self, addr: Addr, value: f64) {
        self.store.write_f64(addr, value);
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.amap.nodes()
    }

    /// Read access to the store (verification helpers, tests).
    pub fn store(&self) -> &ValueStore {
        &self.store
    }

    /// Decomposes into the map and store the engine takes over.
    pub(crate) fn into_parts(self) -> (AddressMap, ValueStore) {
        (self.amap, self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_init_roundtrip() {
        let mut s = SetupCtx::new(2);
        let a = s.alloc_init(1, &[10, 20, 30]);
        assert_eq!(s.store().read_word(a.offset_words(2)), 30);
        let b = s.alloc_init_f64(0, &[0.5, -0.25]);
        assert_eq!(s.store().read_f64(b.offset_words(1)), -0.25);
        assert_eq!(s.nodes(), 2);
    }
}
