//! Synchronization primitives built from simulated memory operations.
//!
//! Nothing here is magic: locks are test-test-and-set spins, barriers are
//! sense-reversing counters, condition flags are spin-read words. Because
//! they reduce to ordinary reads/writes/atomics, their cost *emerges* from
//! the machine model — the whole point of the paper's locality study. On
//! the target and CLogP machines a spinning processor idles in its cache;
//! on the LogP machine every poll is a network round trip (which is why,
//! per §6.2, "a test-test&set primitive would behave like an ordinary
//! test&set operation in the LogP machine").

use crate::{Addr, MemCtx, Pred, SetupCtx};

/// Acquires the test-test-and-set spin lock at `lock`.
///
/// Spins (in-cache where the machine has caches) until the lock word reads
/// free, then attempts the atomic test-and-set; on failure, resumes
/// spinning.
pub fn lock(mem: &MemCtx<'_>, lock: Addr) {
    loop {
        mem.wait_until(lock, Pred::Eq(0));
        if mem.test_and_set(lock) == 0 {
            return;
        }
    }
}

/// Releases the spin lock at `lock`.
///
/// The releasing store invalidates the spinners' cached copies, waking
/// them to re-read and re-contend.
pub fn unlock(mem: &MemCtx<'_>, lock: Addr) {
    mem.write(lock, 0);
}

/// A centralized sense-reversing barrier.
///
/// Layout: one counter word and one "sense" (generation) word. Each
/// processor keeps its own episode counter (`BarrierHandle`), so the same
/// barrier can be reused any number of times.
///
/// The last arriver resets the counter and publishes the new generation;
/// everyone else spins on the generation word.
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    count: Addr,
    sense: Addr,
    p: u64,
}

impl Barrier {
    /// Allocates barrier state homed at `home`.
    pub fn alloc(setup: &mut SetupCtx, home: usize, p: usize) -> Self {
        let count = setup.alloc_labeled(home, 1, "barrier");
        let sense = setup.alloc_labeled(home, 1, "barrier");
        Barrier {
            count,
            sense,
            p: p as u64,
        }
    }

    /// Creates the per-processor handle (episode counter).
    pub fn handle(&self) -> BarrierHandle {
        BarrierHandle {
            barrier: *self,
            episode: 0,
        }
    }
}

/// A processor's view of a [`Barrier`].
#[derive(Debug, Clone, Copy)]
pub struct BarrierHandle {
    barrier: Barrier,
    episode: u64,
}

impl BarrierHandle {
    /// Waits until all `p` processors have arrived.
    pub fn wait(&mut self, mem: &MemCtx<'_>) {
        self.episode += 1;
        let b = self.barrier;
        let arrived = mem.fetch_add(b.count, 1) + 1;
        if arrived == b.p {
            mem.write(b.count, 0);
            mem.write(b.sense, self.episode);
        } else {
            mem.wait_until(b.sense, Pred::Ge(self.episode));
        }
    }
}

/// A one-shot condition flag (the paper's EP "condition variable").
///
/// Waiters spin on the flag word; the signaller writes a nonzero
/// generation. On cached machines only the first and last spin accesses
/// touch the network.
#[derive(Debug, Clone, Copy)]
pub struct CondFlag {
    flag: Addr,
}

impl CondFlag {
    /// Allocates the flag homed at `home`.
    pub fn alloc(setup: &mut SetupCtx, home: usize) -> Self {
        CondFlag {
            flag: setup.alloc_labeled(home, 1, "condflag"),
        }
    }

    /// Signals waiters by publishing `value` (must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero (would not release waiters).
    pub fn signal(&self, mem: &MemCtx<'_>, value: u64) {
        assert!(value != 0, "signal value must be nonzero");
        mem.write(self.flag, value);
    }

    /// Spins until the flag is signalled; returns the signalled value.
    pub fn wait(&self, mem: &MemCtx<'_>) -> u64 {
        mem.wait_until(self.flag, Pred::Ne(0))
    }
}

#[cfg(test)]
mod tests {
    //! Engine-level tests of the primitives live in `tests/engine.rs`;
    //! these cover pure layout logic.
    use super::*;

    #[test]
    fn barrier_allocates_two_words() {
        let mut setup = SetupCtx::new(2);
        let b = Barrier::alloc(&mut setup, 1, 2);
        assert_ne!(b.count, b.sense);
        let h = b.handle();
        assert_eq!(h.episode, 0);
    }

    #[test]
    fn cond_flag_allocates() {
        let mut setup = SetupCtx::new(1);
        let a = CondFlag::alloc(&mut setup, 0);
        let b = CondFlag::alloc(&mut setup, 0);
        assert_ne!(a.flag, b.flag);
    }
}
