//! EP — the NAS Embarrassingly Parallel kernel.

use spasm_machine::{sync, MemCtx, Pred, ProcBody, SetupCtx};

use crate::common::{block_range, close, proc_rng};
use crate::{App, BuiltApp, SizeClass};
use spasm_prng::Rng;

/// Gaussian deviates by the Marsaglia polar method, binned by magnitude —
/// the NAS EP statistic. Communication structure (the part that matters to
/// the study):
///
/// * the bulk is private computation — EP has the suite's highest
///   computation-to-communication ratio, so all machine characterizations
///   agree on its execution time (paper Figure 12);
/// * one lock-protected accumulation of 10 bin counts and two sums into
///   globals homed at node 0;
/// * a **spin condition variable** at the end: workers spin on a flag that
///   node 0 sets once all accumulations are in. On cached machines only
///   the first and last spin accesses touch the network; on the LogP
///   machine every poll is a round trip — the paper's Figure 3 latency
///   blow-up.
#[derive(Debug, Clone, Copy)]
pub struct Ep {
    /// Total Gaussian pairs attempted across all processors.
    pub pairs: usize,
}

/// Bins: `l <= max(|X|,|Y|) < l+1` for `l` in `0..10`.
const BINS: usize = 10;
/// Charged cycles per attempted pair (log, sqrt, compares on a 33 MHz
/// SPARC-class core).
const CYCLES_PER_PAIR: u64 = 120;
/// Pairs per computation chunk (keeps simulator event counts sane without
/// distorting time: the charge is identical).
const CHUNK: usize = 16;

impl Ep {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        let pairs = match size {
            SizeClass::Test => 4_096,
            SizeClass::Small => 65_536,
            SizeClass::Full => 262_144,
        };
        Ep { pairs }
    }

    /// Creates the kernel with an explicit pair count.
    pub fn with_pairs(pairs: usize) -> Self {
        Ep { pairs }
    }
}

/// One processor's private statistics pass. Returns (bins, sx, sy, charged
/// chunks); shared by the simulated body and the verifier so the reference
/// is exact by construction.
fn local_stats(seed: u64, proc: usize, lo: usize, hi: usize) -> ([u64; BINS], f64, f64) {
    let mut rng = proc_rng(seed, proc);
    let mut q = [0u64; BINS];
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    for _ in lo..hi {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let t = x * x + y * y;
        if t > 0.0 && t <= 1.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let (gx, gy) = (x * f, y * f);
            let l = gx.abs().max(gy.abs()) as usize;
            if l < BINS {
                q[l] += 1;
            }
            sx += gx;
            sy += gy;
        }
    }
    (q, sx, sy)
}

impl App for Ep {
    fn name(&self) -> &'static str {
        "ep"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let pairs = self.pairs;

        // Globals homed at node 0, as in a master-allocated NAS port.
        let q_global = setup.alloc_labeled(0, BINS as u64, "globals");
        let sx_global = setup.alloc_labeled(0, 1, "globals");
        let sy_global = setup.alloc_labeled(0, 1, "globals");
        let lock = setup.alloc_labeled(0, 1, "lock");
        let done = setup.alloc_labeled(0, 1, "globals");
        let flag = sync::CondFlag::alloc(setup, 0);
        setup.init_f64(sx_global, 0.0);
        setup.init_f64(sy_global, 0.0);

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let body: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let (lo, hi) = block_range(pairs, p, me);

                    // Private computation: executed natively, charged in
                    // chunks.
                    let todo = hi - lo;
                    let full_chunks = todo / CHUNK;
                    for _ in 0..full_chunks {
                        mem.compute(CYCLES_PER_PAIR * CHUNK as u64);
                    }
                    mem.compute(CYCLES_PER_PAIR * (todo % CHUNK) as u64);
                    let (q, sx, sy) = local_stats(seed, me, lo, hi);

                    // Lock-protected global accumulation.
                    sync::lock(&mem, lock);
                    for (l, &count) in q.iter().enumerate() {
                        if count > 0 {
                            let addr = q_global.offset_words(l as u64);
                            let cur = mem.read(addr);
                            mem.write(addr, cur + count);
                        }
                    }
                    let cur = mem.read_f64(sx_global);
                    mem.write_f64(sx_global, cur + sx);
                    let cur = mem.read_f64(sy_global);
                    mem.write_f64(sy_global, cur + sy);
                    sync::unlock(&mem, lock);

                    // Completion: everyone spins on the condition variable
                    // until node 0 observes all arrivals and signals.
                    mem.fetch_add(done, 1);
                    if me == 0 {
                        mem.wait_until(done, Pred::Ge(p as u64));
                        flag.signal(&mem, 1);
                    } else {
                        flag.wait(&mem);
                    }
                });
                body
            })
            .collect();

        let verify: crate::Verifier = Box::new(move |store| {
            // Sequential reference with the identical per-proc streams.
            let mut want_q = [0u64; BINS];
            let (mut want_sx, mut want_sy) = (0.0f64, 0.0f64);
            for proc in 0..p {
                let (lo, hi) = block_range(pairs, p, proc);
                let (q, sx, sy) = local_stats(seed, proc, lo, hi);
                for l in 0..BINS {
                    want_q[l] += q[l];
                }
                want_sx += sx;
                want_sy += sy;
            }
            for (l, &want) in want_q.iter().enumerate() {
                let got = store.read_word(q_global.offset_words(l as u64));
                if got != want {
                    return Err(format!("bin {l}: got {got}, want {want}"));
                }
            }
            let gx = store.read_f64(sx_global);
            let gy = store.read_f64(sy_global);
            if !close(gx, want_sx, 1e-9) || !close(gy, want_sy, 1e-9) {
                return Err(format!(
                    "sums: got ({gx}, {gy}), want ({want_sx}, {want_sy})"
                ));
            }
            if store.read_word(done) != p as u64 {
                return Err("completion counter wrong".to_string());
            }
            Ok(())
        });

        BuiltApp { bodies, verify }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_machine::{Engine, MachineKind};
    use spasm_topology::Topology;

    #[test]
    fn ep_verifies_on_every_machine() {
        for kind in [
            MachineKind::Pram,
            MachineKind::Target,
            MachineKind::LogP,
            MachineKind::CLogP,
        ] {
            let topo = Topology::full(4);
            let mut setup = SetupCtx::new(4);
            let built = Ep::with_pairs(128).build(&mut setup, 9);
            let report = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&report.final_store).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn ep_compute_dominates() {
        let topo = Topology::full(4);
        let mut setup = SetupCtx::new(4);
        let built = Ep::new(SizeClass::Test).build(&mut setup, 9);
        let r = Engine::new(MachineKind::Target, &topo, setup, built.bodies)
            .run()
            .unwrap();
        assert!(
            r.totals.busy > r.totals.latency,
            "EP must be compute-bound: busy={} latency={}",
            r.totals.busy,
            r.totals.latency
        );
    }

    #[test]
    fn ep_single_processor_works() {
        let topo = Topology::full(1);
        let mut setup = SetupCtx::new(1);
        let built = Ep::with_pairs(64).build(&mut setup, 3);
        let r = Engine::new(MachineKind::Target, &topo, setup, built.bodies)
            .run()
            .unwrap();
        (built.verify)(&r.final_store).unwrap();
    }
}
