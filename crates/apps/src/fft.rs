//! FFT — radix-2 decimation-in-frequency, block distributed.

use std::f64::consts::PI;

use spasm_machine::{sync, Addr, MemCtx, ProcBody, SetupCtx};
use spasm_prng::Rng;

use crate::common::{close, proc_rng};
use crate::{App, BuiltApp, SizeClass};

/// A 1-D complex FFT with the structure the paper leans on (§6):
///
/// * elements are block-distributed; the first `log2(p)` stages read a
///   *contiguous* run of a remote processor's elements — spatial locality
///   that a cache block (4 words = 2 complex elements) exploits and the
///   cache-less LogP machine cannot: "FFT on the LogP machine incurs a
///   latency which is approximately four times that of the other two";
/// * communication is statically determinable (the partner index is
///   `k XOR half`), making FFT a "well-structured application with regular
///   communication patterns";
/// * a barrier separates stages.
///
/// Ping-pong buffers avoid intra-stage read/write hazards; the output is
/// produced in bit-reversed order and verified against a direct DFT.
#[derive(Debug, Clone, Copy)]
pub struct Fft {
    /// Transform length (power of two, ≥ processor count).
    pub n: usize,
}

/// Charged cycles per butterfly (complex mul + 2 adds + twiddle lookup).
const CYCLES_PER_BUTTERFLY: u64 = 40;

impl Fft {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        let n = match size {
            SizeClass::Test => 64,
            SizeClass::Small => 256,
            SizeClass::Full => 1_024,
        };
        Fft { n }
    }

    /// Creates the kernel with an explicit length.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is less than 2.
    pub fn with_len(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        Fft { n }
    }
}

/// The deterministic input signal.
fn input_signal(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = proc_rng(seed, usize::MAX);
    (0..n)
        .map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Direct O(N^2) DFT for verification.
fn reference_dft(x: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0f64, 0.0f64);
            for (t, &(re, im)) in x.iter().enumerate() {
                let ang = -2.0 * PI * (k * t % n) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                acc.0 += re * c - im * s;
                acc.1 += re * s + im * c;
            }
            acc
        })
        .collect()
}

fn bit_reverse(k: usize, bits: u32) -> usize {
    k.reverse_bits() >> (usize::BITS - bits)
}

impl App for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let n = self.n;
        assert!(n >= p, "need at least one element per processor");
        let chunk = n / p;
        let signal = input_signal(n, seed);

        // Ping-pong buffers, each processor's slice homed locally.
        let alloc_buffer = |setup: &mut SetupCtx| -> Vec<Addr> {
            (0..p)
                .map(|home| setup.alloc_labeled(home, (chunk * 2) as u64, "signal"))
                .collect()
        };
        let a_bases = alloc_buffer(setup);
        let b_bases = alloc_buffer(setup);
        for (k, &(re, im)) in signal.iter().enumerate() {
            let base = a_bases[k / chunk];
            setup.init_f64(base.offset_words((k % chunk * 2) as u64), re);
            setup.init_f64(base.offset_words((k % chunk * 2 + 1) as u64), im);
        }
        let barrier = sync::Barrier::alloc(setup, 0, p);
        let stages = n.trailing_zeros() as usize;

        let elem_addr = move |bases: &[Addr], k: usize| -> Addr {
            bases[k / chunk].offset_words((k % chunk * 2) as u64)
        };

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let a = a_bases.clone();
                let b = b_bases.clone();
                let body: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let mut bar = barrier.handle();
                    let (lo, hi) = (me * chunk, (me + 1) * chunk);
                    let mut src = &a;
                    let mut dst = &b;
                    for stage in 0..stages {
                        let m = n >> stage;
                        let half = m / 2;
                        for k in lo..hi {
                            let pos = k % m;
                            let partner = if pos < half { k + half } else { k - half };
                            let pa = elem_addr(src, partner);
                            let (pre, pim) = (mem.read_f64(pa), mem.read_f64(pa.offset_words(1)));
                            let oa = elem_addr(src, k);
                            let (ore, oim) = (mem.read_f64(oa), mem.read_f64(oa.offset_words(1)));
                            mem.compute(CYCLES_PER_BUTTERFLY);
                            let (re, im) = if pos < half {
                                // Upper half of the butterfly: u + v.
                                (ore + pre, oim + pim)
                            } else {
                                // Lower half: (u - v) * W_m^t.
                                let t = pos - half;
                                let ang = -2.0 * PI * t as f64 / m as f64;
                                let (s, c) = ang.sin_cos();
                                let (dre, dim) = (pre - ore, pim - oim);
                                (dre * c - dim * s, dre * s + dim * c)
                            };
                            let da = elem_addr(dst, k);
                            mem.write_f64(da, re);
                            mem.write_f64(da.offset_words(1), im);
                        }
                        bar.wait(&mem);
                        std::mem::swap(&mut src, &mut dst);
                    }
                });
                body
            })
            .collect();

        let final_bases = if stages.is_multiple_of(2) {
            a_bases
        } else {
            b_bases
        };
        let verify: crate::Verifier = Box::new(move |store| {
            let want = reference_dft(&signal);
            let bits = n.trailing_zeros();
            for (k, &(wre, wim)) in want.iter().enumerate() {
                // DIF output is bit-reversed.
                let at = bit_reverse(k, bits);
                let addr = elem_addr(&final_bases, at);
                let gre = store.read_f64(addr);
                let gim = store.read_f64(addr.offset_words(1));
                if !close(gre, wre, 1e-6) || !close(gim, wim, 1e-6) {
                    return Err(format!("X[{k}] = ({gre}, {gim}), want ({wre}, {wim})"));
                }
            }
            Ok(())
        });

        BuiltApp { bodies, verify }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_machine::{Engine, MachineKind};
    use spasm_topology::Topology;

    #[test]
    fn reference_dft_of_impulse_is_flat() {
        let mut x = vec![(0.0, 0.0); 8];
        x[0] = (1.0, 0.0);
        for (re, im) in reference_dft(&x) {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 4), 10);
    }

    #[test]
    fn fft_verifies_on_every_machine() {
        for kind in [
            MachineKind::Pram,
            MachineKind::Target,
            MachineKind::LogP,
            MachineKind::CLogP,
        ] {
            let topo = Topology::hypercube(4);
            let mut setup = SetupCtx::new(4);
            let built = Fft::with_len(32).build(&mut setup, 5);
            let report = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&report.final_store).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn fft_single_processor() {
        let topo = Topology::full(1);
        let mut setup = SetupCtx::new(1);
        let built = Fft::with_len(16).build(&mut setup, 1);
        let r = Engine::new(MachineKind::Pram, &topo, setup, built.bodies)
            .run()
            .unwrap();
        (built.verify)(&r.final_store).unwrap();
    }

    #[test]
    fn fft_logp_latency_is_about_4x_clogp() {
        // The paper's Figure 1 shape: ignoring spatial locality costs ~4x
        // latency overhead (4 words per 32-byte block).
        let mut latency = std::collections::HashMap::new();
        for kind in [MachineKind::LogP, MachineKind::CLogP] {
            let topo = Topology::full(4);
            let mut setup = SetupCtx::new(4);
            let built = Fft::with_len(64).build(&mut setup, 5);
            let r = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            latency.insert(kind.to_string(), r.totals.latency.as_ns());
        }
        let ratio = latency["logp"] as f64 / latency["clogp"] as f64;
        assert!(
            (2.5..=5.5).contains(&ratio),
            "latency ratio should be ~4, got {ratio:.2}"
        );
    }
}
