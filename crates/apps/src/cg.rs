//! CG — the NAS Conjugate Gradient kernel.

use std::sync::Arc;

use spasm_machine::{sync, Addr, MemCtx, ProcBody, SetupCtx};

use crate::common::{block_range, close};
use crate::sparse::SymSparse;
use crate::{App, BuiltApp, SizeClass};

/// Conjugate-gradient iterations on a random sparse SPD system.
///
/// The paper's characterization: rows are assigned statically
/// ("a certain number of rows of the matrix in CG is assigned to a
/// processor at compile time"), but the *communication pattern is not
/// regular* — the sparse mat-vec reads `p[col]` for whichever columns
/// happen to be nonzero, so the remote-reference stream is data-dependent
/// and "cannot be determined at compile time". Reductions (the dot
/// products) use per-processor partials combined by processor 0 between
/// barriers, the standard optimized NAS-port shape.
#[derive(Debug, Clone)]
pub struct Cg {
    /// System dimension.
    pub n: usize,
    /// Extra off-diagonal entries per row in the generator.
    pub extra: usize,
    /// CG iterations to run.
    pub iters: usize,
}

/// Charged cycles per multiply-accumulate in the mat-vec.
const CYCLES_MAC: u64 = 8;
/// Charged cycles per element of a vector update / dot product.
const CYCLES_VEC: u64 = 6;

impl Cg {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        let (n, iters) = match size {
            SizeClass::Test => (128, 3),
            SizeClass::Small => (320, 4),
            SizeClass::Full => (512, 5),
        };
        Cg { n, extra: 3, iters }
    }

    /// Creates the kernel with explicit parameters.
    pub fn with_params(n: usize, extra: usize, iters: usize) -> Self {
        Cg { n, extra, iters }
    }
}

/// Distributed vector: one block-range slice per processor.
#[derive(Debug, Clone)]
struct DistVec {
    bases: Vec<Addr>,
    n: usize,
    p: usize,
}

impl DistVec {
    fn alloc(setup: &mut SetupCtx, n: usize, p: usize, label: &'static str) -> Self {
        let bases = (0..p)
            .map(|home| {
                let (lo, hi) = block_range(n, p, home);
                setup.alloc_labeled(home, (hi - lo).max(1) as u64, label)
            })
            .collect();
        DistVec { bases, n, p }
    }

    fn addr(&self, i: usize) -> Addr {
        let mut proc = (i * self.p / self.n).min(self.p - 1);
        loop {
            let (lo, hi) = block_range(self.n, self.p, proc);
            if i >= hi {
                proc += 1;
            } else if i < lo {
                proc -= 1;
            } else {
                return self.bases[proc].offset_words((i - lo) as u64);
            }
        }
    }
}

/// Reference sequential CG mirroring the parallel reduction structure.
fn reference_cg(a: &SymSparse, iters: usize, p: usize) -> (Vec<f64>, f64) {
    let n = a.n;
    let b = vec![1.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut r = b;
    let mut pv = r.clone();
    // Partial-sum-per-processor dot product, matching the parallel shape.
    let dot = |u: &[f64], v: &[f64]| -> f64 {
        (0..p)
            .map(|me| {
                let (lo, hi) = block_range(n, p, me);
                (lo..hi).map(|i| u[i] * v[i]).sum::<f64>()
            })
            .sum()
    };
    for _ in 0..iters {
        let rho = dot(&r, &r);
        let q = a.matvec(&pv);
        let alpha = rho / dot(&pv, &q);
        for i in 0..n {
            x[i] += alpha * pv[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(&r, &r);
        let beta = rho_new / rho;
        for i in 0..n {
            pv[i] = r[i] + beta * pv[i];
        }
    }
    let rnorm = dot(&r, &r).sqrt();
    (x, rnorm)
}

impl App for Cg {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let n = self.n;
        let iters = self.iters;
        assert!(n >= p, "need at least one row per processor");
        let a = Arc::new(SymSparse::random_spd(n, self.extra, seed));

        // Distributed vectors; b = 1, x0 = 0 => r0 = p0 = 1.
        let xv = DistVec::alloc(setup, n, p, "x-vec");
        let rv = DistVec::alloc(setup, n, p, "r-vec");
        let pv = DistVec::alloc(setup, n, p, "p-vec");
        let qv = DistVec::alloc(setup, n, p, "q-vec");
        for i in 0..n {
            setup.init_f64(xv.addr(i), 0.0);
            setup.init_f64(rv.addr(i), 1.0);
            setup.init_f64(pv.addr(i), 1.0);
            setup.init_f64(qv.addr(i), 0.0);
        }
        // Reductions use per-processor partial slots (each homed at its
        // writer) combined by processor 0 — the standard NAS-port shape,
        // which costs O(p) remote reads instead of an O(p^2) lock herd.
        // Fresh total slots per iteration avoid reset races.
        let partial_slots: Vec<spasm_machine::Addr> = (0..p)
            .map(|home| setup.alloc_labeled(home, 1, "reduction"))
            .collect();
        let rho_slots = setup.alloc(0, iters as u64);
        let pq_slots = setup.alloc(0, iters as u64);
        let rho_new_slots = setup.alloc(0, iters as u64);
        for it in 0..iters as u64 {
            setup.init_f64(rho_slots.offset_words(it), 0.0);
            setup.init_f64(pq_slots.offset_words(it), 0.0);
            setup.init_f64(rho_new_slots.offset_words(it), 0.0);
        }
        let barrier = sync::Barrier::alloc(setup, 0, p);

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let a = Arc::clone(&a);
                let (xv, rv, pv, qv) = (xv.clone(), rv.clone(), pv.clone(), qv.clone());
                let partial_slots = partial_slots.clone();
                let body: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let mut bar = barrier.handle();
                    let (lo, hi) = block_range(n, p, me);

                    // Partial-sum reduction: publish the local partial,
                    // rendezvous, processor 0 combines, rendezvous again.
                    let reduce = |slot: Addr, local: f64, bar: &mut sync::BarrierHandle| {
                        mem.write_f64(partial_slots[me], local);
                        bar.wait(&mem);
                        if me == 0 {
                            let mut total = 0.0;
                            for s in &partial_slots {
                                total += mem.read_f64(*s);
                            }
                            mem.compute(CYCLES_VEC * p as u64);
                            mem.write_f64(slot, total);
                        }
                        bar.wait(&mem);
                    };

                    for it in 0..iters as u64 {
                        // rho = r.r over the local slice.
                        let mut local = 0.0;
                        for i in lo..hi {
                            let ri = mem.read_f64(rv.addr(i));
                            local += ri * ri;
                        }
                        mem.compute(CYCLES_VEC * (hi - lo) as u64);
                        reduce(rho_slots.offset_words(it), local, &mut bar);

                        // q = A p over the local rows: the irregular,
                        // data-dependent remote reads.
                        for i in lo..hi {
                            let mut acc = 0.0;
                            for &(j, v) in &a.rows[i] {
                                acc += v * mem.read_f64(pv.addr(j));
                            }
                            mem.compute(CYCLES_MAC * a.rows[i].len() as u64);
                            mem.write_f64(qv.addr(i), acc);
                        }

                        // pq = p.q over the local slice.
                        let mut local = 0.0;
                        for i in lo..hi {
                            local += mem.read_f64(pv.addr(i)) * mem.read_f64(qv.addr(i));
                        }
                        mem.compute(CYCLES_VEC * (hi - lo) as u64);
                        reduce(pq_slots.offset_words(it), local, &mut bar);

                        let rho = mem.read_f64(rho_slots.offset_words(it));
                        let pq = mem.read_f64(pq_slots.offset_words(it));
                        let alpha = rho / pq;

                        // x += alpha p ; r -= alpha q (local slices), then
                        // rho_new = r.r.
                        let mut local = 0.0;
                        for i in lo..hi {
                            let xi = mem.read_f64(xv.addr(i));
                            let pi = mem.read_f64(pv.addr(i));
                            mem.write_f64(xv.addr(i), xi + alpha * pi);
                            let ri = mem.read_f64(rv.addr(i)) - alpha * mem.read_f64(qv.addr(i));
                            mem.write_f64(rv.addr(i), ri);
                            local += ri * ri;
                        }
                        mem.compute(2 * CYCLES_VEC * (hi - lo) as u64);
                        reduce(rho_new_slots.offset_words(it), local, &mut bar);

                        // p = r + beta p: writes that invalidate every
                        // consumer's cached copy of p.
                        let rho_new = mem.read_f64(rho_new_slots.offset_words(it));
                        let beta = rho_new / rho;
                        for i in lo..hi {
                            let pi = mem.read_f64(pv.addr(i));
                            let ri = mem.read_f64(rv.addr(i));
                            mem.write_f64(pv.addr(i), ri + beta * pi);
                        }
                        mem.compute(CYCLES_VEC * (hi - lo) as u64);
                        bar.wait(&mem);
                    }
                });
                body
            })
            .collect();

        let a_v = Arc::clone(&a);
        let verify: crate::Verifier = Box::new(move |store| {
            let (want_x, want_rnorm) = reference_cg(&a_v, iters, p);
            for (i, &want) in want_x.iter().enumerate() {
                let got = store.read_f64(xv.addr(i));
                if !close(got, want, 1e-6) {
                    return Err(format!("x[{i}] = {got}, want {want}"));
                }
            }
            // The iterate must actually have made progress.
            let mut rnorm2 = 0.0;
            for i in 0..a_v.n {
                let ri = store.read_f64(rv.addr(i));
                rnorm2 += ri * ri;
            }
            let bnorm = (a_v.n as f64).sqrt();
            if rnorm2.sqrt() >= bnorm {
                return Err(format!(
                    "residual did not decrease: {} vs {bnorm}",
                    rnorm2.sqrt()
                ));
            }
            if !close(rnorm2.sqrt(), want_rnorm, 1e-4) {
                return Err(format!(
                    "residual norm {} differs from reference {want_rnorm}",
                    rnorm2.sqrt()
                ));
            }
            Ok(())
        });

        BuiltApp { bodies, verify }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_machine::{Engine, MachineKind};
    use spasm_topology::Topology;

    #[test]
    fn cg_verifies_on_every_machine() {
        for kind in [
            MachineKind::Pram,
            MachineKind::Target,
            MachineKind::LogP,
            MachineKind::CLogP,
        ] {
            let topo = Topology::hypercube(4);
            let mut setup = SetupCtx::new(4);
            let built = Cg::with_params(32, 2, 3).build(&mut setup, 21);
            let report = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&report.final_store).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn cg_single_processor() {
        let topo = Topology::full(1);
        let mut setup = SetupCtx::new(1);
        let built = Cg::with_params(24, 2, 3).build(&mut setup, 8);
        let r = Engine::new(MachineKind::CLogP, &topo, setup, built.bodies)
            .run()
            .unwrap();
        (built.verify)(&r.final_store).unwrap();
    }

    #[test]
    fn reference_cg_converges() {
        let a = SymSparse::random_spd(48, 3, 4);
        let (_, r3) = reference_cg(&a, 3, 2);
        let (_, r6) = reference_cg(&a, 6, 2);
        assert!(r6 < r3, "more iterations must shrink the residual");
        assert!(r3 < (48f64).sqrt());
    }
}
