//! Sparse symmetric matrices: generation, mat-vec, and symbolic Cholesky.
//!
//! CG and CHOLESKY both run on random sparse symmetric positive-definite
//! matrices. CG needs a full-row view for the mat-vec; CHOLESKY needs the
//! lower-triangular column pattern *with fill-in* (computed here by a
//! standard elimination-tree symbolic factorization) so the simulated
//! fan-out algorithm knows every column's structure up front — just as
//! SPLASH CHOLESKY factors a pre-analysed matrix.

use spasm_prng::{Rng, StdRng};

/// A sparse symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct SymSparse {
    /// Dimension.
    pub n: usize,
    /// Full symmetric rows: for each row, sorted `(col, value)` pairs.
    pub rows: Vec<Vec<(usize, f64)>>,
}

impl SymSparse {
    /// Generates a random SPD matrix of dimension `n` with roughly
    /// `extra_per_row` off-diagonal entries per row, made positive
    /// definite by strong diagonal dominance.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn random_spd(n: usize, extra_per_row: usize, seed: u64) -> Self {
        assert!(n > 0, "matrix must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        // Collect the strictly-lower pattern as (row > col) pairs.
        let mut lower: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 1..n {
            // A band neighbour keeps the matrix irreducible, plus random
            // extras for irregularity.
            let mut cols = vec![i - 1];
            for _ in 0..extra_per_row {
                let j = rng.gen_range(0..i);
                cols.push(j);
            }
            cols.sort_unstable();
            cols.dedup();
            for j in cols {
                let v = rng.gen_range(-1.0..1.0);
                lower[j].push((i, v));
            }
        }
        // Assemble full rows; diagonal dominates its row.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut diag = vec![1.0f64; n];
        for (j, col) in lower.iter().enumerate() {
            for &(i, v) in col {
                rows[i].push((j, v));
                rows[j].push((i, v));
                diag[i] += v.abs();
                diag[j] += v.abs();
            }
        }
        for (i, row) in rows.iter_mut().enumerate() {
            row.push((i, diag[i] + 1.0));
            row.sort_unstable_by_key(|&(c, _)| c);
        }
        SymSparse { n, rows }
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        self.rows
            .iter()
            .map(|row| row.iter().map(|&(c, v)| v * x[c]).sum())
            .collect()
    }

    /// The lower-triangular (including diagonal) columns: for column `j`,
    /// sorted `(row >= j, value)` pairs.
    pub fn lower_columns(&self) -> Vec<Vec<(usize, f64)>> {
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                if j <= i {
                    cols[j].push((i, v));
                }
            }
        }
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
        }
        cols
    }

    /// Total stored entries (full symmetric count).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Computes the Cholesky fill-in pattern.
///
/// Input: the lower-triangular pattern of `A` — for each column `j`, the
/// sorted row indices `>= j` (including the diagonal). Output: the pattern
/// of `L` per column, sorted, including fill entries.
///
/// Standard elimination-tree union: processing columns in ascending order,
/// each column's pattern (minus its head) is merged into its parent —
/// the smallest row index below the diagonal.
///
/// # Panics
///
/// Panics if a column's pattern does not start with its diagonal.
pub fn symbolic_cholesky(lower_pattern: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = lower_pattern.len();
    let mut pattern: Vec<Vec<usize>> = lower_pattern.to_vec();
    for j in 0..n {
        pattern[j].sort_unstable();
        pattern[j].dedup();
        assert_eq!(
            pattern[j].first().copied(),
            Some(j),
            "column {j} must include its diagonal"
        );
        // Parent in the elimination tree: first sub-diagonal entry.
        let Some(&parent) = pattern[j].get(1) else {
            continue;
        };
        // L's column `parent` inherits the rest of column j's pattern.
        let inherited: Vec<usize> = pattern[j][1..].to_vec();
        let col = &mut pattern[parent];
        col.extend(inherited);
        col.sort_unstable();
        col.dedup();
    }
    pattern
}

/// Reference dense Cholesky used by tests (and usable by callers to check
/// simulated factors). Returns the lower-triangular factor as dense rows.
///
/// # Panics
///
/// Panics if the matrix is not positive definite.
#[allow(clippy::needless_range_loop)] // indexing two factors at once
pub fn dense_cholesky(a: &SymSparse) -> Vec<Vec<f64>> {
    let n = a.n;
    let mut m = vec![vec![0.0f64; n]; n];
    for (i, row) in a.rows.iter().enumerate() {
        for &(j, v) in row {
            m[i][j] = v;
        }
    }
    let mut l = vec![vec![0.0f64; n]; n];
    for j in 0..n {
        let mut d = m[j][j];
        for k in 0..j {
            d -= l[j][k] * l[j][k];
        }
        assert!(d > 0.0, "matrix not positive definite at column {j}");
        l[j][j] = d.sqrt();
        for i in (j + 1)..n {
            let mut s = m[i][j];
            for k in 0..j {
                s -= l[i][k] * l[j][k];
            }
            l[i][j] = s / l[j][j];
        }
    }
    l
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn random_spd_is_symmetric() {
        let a = SymSparse::random_spd(32, 3, 7);
        for (i, row) in a.rows.iter().enumerate() {
            for &(j, v) in row {
                let back = a.rows[j]
                    .iter()
                    .find(|&&(c, _)| c == i)
                    .map(|&(_, v)| v)
                    .expect("symmetric entry");
                assert_eq!(v, back);
            }
        }
    }

    #[test]
    fn random_spd_is_positive_definite() {
        // Dense Cholesky succeeding is the PD certificate.
        let a = SymSparse::random_spd(24, 4, 3);
        let _ = dense_cholesky(&a);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = SymSparse::random_spd(16, 2, 11);
        let x: Vec<f64> = (0..16).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let y = a.matvec(&x);
        for i in 0..16 {
            let mut want = 0.0;
            for &(j, v) in &a.rows[i] {
                want += v * x[j];
            }
            assert!((y[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn symbolic_pattern_contains_original_and_fill() {
        // A "star + chain" that forces fill: col 0 connects to 2 and 3.
        // Eliminating 0 fills L[3][2].
        let pattern = vec![vec![0, 2, 3], vec![1, 2], vec![2], vec![3]];
        let l = symbolic_cholesky(&pattern);
        assert!(l[2].contains(&3), "expected fill at (3,2): {l:?}");
        // Original entries survive.
        assert!(l[0].contains(&2) && l[0].contains(&3));
    }

    #[test]
    fn symbolic_matches_numeric_support() {
        // Every numerically nonzero entry of dense L must be inside the
        // symbolic pattern.
        let a = SymSparse::random_spd(24, 3, 9);
        let lower: Vec<Vec<usize>> = a
            .lower_columns()
            .iter()
            .map(|col| col.iter().map(|&(r, _)| r).collect())
            .collect();
        let pat = symbolic_cholesky(&lower);
        let l = dense_cholesky(&a);
        for j in 0..a.n {
            for i in j..a.n {
                if l[i][j].abs() > 1e-14 {
                    assert!(
                        pat[j].contains(&i),
                        "numeric nonzero ({i},{j}) not in pattern"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_cholesky_reconstructs() {
        let a = SymSparse::random_spd(16, 3, 5);
        let l = dense_cholesky(&a);
        for i in 0..a.n {
            for j in 0..a.n {
                let want = a.rows[i]
                    .iter()
                    .find(|&&(c, _)| c == j)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                let got: f64 = (0..a.n).map(|k| l[i][k] * l[j][k]).sum();
                assert!(
                    (want - got).abs() < 1e-9,
                    "LL^T mismatch at ({i},{j}): {want} vs {got}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn symbolic_requires_diagonal() {
        symbolic_cholesky(&[vec![1]]);
    }
}
