//! CHOLESKY — sparse fan-out factorization with a dynamic task queue.

use std::sync::Arc;

use spasm_machine::{sync, Addr, MemCtx, Pred, ProcBody, SetupCtx};

use crate::common::close;
use crate::sparse::{symbolic_cholesky, SymSparse};
use crate::{App, BuiltApp, SizeClass};

/// Sparse Cholesky factorization (`A = L·Lᵀ`) in the SPLASH style: a
/// **dynamically maintained queue of runnable tasks** — the paper's
/// exemplar of an application whose communication "cannot be determined at
/// compile time". Which processor factors which column, and therefore the
/// entire remote-reference stream, is decided by simulated-time ordering
/// and differs across machine models; the numerical result does not.
///
/// Fan-out algorithm: when column `j`'s remaining-modification count hits
/// zero it is enqueued; a worker pops it, performs `cdiv(j)` (scale by the
/// diagonal square root), then applies `cmod(i, j)` to every column `i` in
/// `j`'s sub-diagonal structure (under per-column locks), decrementing
/// each `i`'s count and enqueuing newly-ready columns.
#[derive(Debug, Clone, Copy)]
pub struct Cholesky {
    /// Matrix dimension.
    pub n: usize,
    /// Extra off-diagonal entries per row in the generator.
    pub extra: usize,
}

/// Charged cycles per cdiv element (divide).
const CYCLES_CDIV: u64 = 20;
/// Charged cycles per cmod multiply-subtract.
const CYCLES_CMOD: u64 = 8;

impl Cholesky {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        let n = match size {
            SizeClass::Test => 32,
            SizeClass::Small => 128,
            SizeClass::Full => 256,
        };
        Cholesky { n, extra: 2 }
    }

    /// Creates the kernel with explicit parameters.
    pub fn with_params(n: usize, extra: usize) -> Self {
        Cholesky { n, extra }
    }
}

impl App for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let n = self.n;
        let a = Arc::new(SymSparse::random_spd(n, self.extra, seed));

        // Symbolic factorization: L's column structure including fill.
        let lower = a.lower_columns();
        let pattern: Arc<Vec<Vec<usize>>> = Arc::new(symbolic_cholesky(
            &lower
                .iter()
                .map(|col| col.iter().map(|&(r, _)| r).collect())
                .collect::<Vec<_>>(),
        ));

        // Column value arrays (A values, zero at fill positions), each
        // column homed round-robin; per-column locks live with the data.
        let col_bases: Vec<Addr> = (0..n)
            .map(|j| setup.alloc_labeled(j % p, pattern[j].len() as u64, "columns"))
            .collect();
        let col_locks: Vec<Addr> = (0..n)
            .map(|j| setup.alloc_labeled(j % p, 1, "col-locks"))
            .collect();
        for j in 0..n {
            for (slot, &row) in pattern[j].iter().enumerate() {
                let v = lower[j]
                    .iter()
                    .find(|&&(r, _)| r == row)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                setup.init_f64(col_bases[j].offset_words(slot as u64), v);
            }
        }

        // Remaining-modification counts: how many earlier columns will
        // cmod column i.
        let mut nmod = vec![0u64; n];
        for j in 0..n {
            for &i in &pattern[j][1..] {
                nmod[i] += 1;
            }
        }
        let nmod_base = setup.alloc_init(0, &nmod);

        // The dynamic task queue (head/tail indices + item array) plus the
        // done counter and a version word that wakes idle workers.
        let items = setup.alloc_labeled(0, n as u64, "task-queue");
        let qhead = setup.alloc_labeled(0, 1, "task-queue");
        let qtail = setup.alloc_labeled(0, 1, "task-queue");
        let qlock = setup.alloc_labeled(0, 1, "task-queue");
        let done = setup.alloc_labeled(0, 1, "task-queue");
        let version = setup.alloc_labeled(0, 1, "task-queue");
        let mut ready = 0u64;
        for (j, &count) in nmod.iter().enumerate() {
            if count == 0 {
                setup.init(items.offset_words(ready), j as u64);
                ready += 1;
            }
        }
        setup.init(qtail, ready);

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let pattern = Arc::clone(&pattern);
                let col_bases = col_bases.clone();
                let col_locks = col_locks.clone();
                let body: ProcBody = Box::new(move |_me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let pos = |col: usize, row: usize| -> u64 {
                        pattern[col]
                            .binary_search(&row)
                            .unwrap_or_else(|_| panic!("row {row} not in column {col}"))
                            as u64
                    };

                    loop {
                        // Pop a runnable column.
                        sync::lock(&mem, qlock);
                        let head = mem.read(qhead);
                        let tail = mem.read(qtail);
                        let job = if head < tail {
                            let j = mem.read(items.offset_words(head));
                            mem.write(qhead, head + 1);
                            Some(j as usize)
                        } else {
                            None
                        };
                        sync::unlock(&mem, qlock);

                        let Some(j) = job else {
                            // Read the version BEFORE the done counter:
                            // the finishing worker bumps `done` first and
                            // `version` second, so observing a stale
                            // `done` here guarantees the final version
                            // bump is still ahead of `v` and the wait
                            // below cannot miss it.
                            let v = mem.read(version);
                            if mem.read(done) == n as u64 {
                                break;
                            }
                            // Idle until something is enqueued or the last
                            // column completes.
                            mem.wait_until(version, Pred::Ge(v + 1));
                            continue;
                        };

                        // cdiv(j): read the column, scale by sqrt(diag),
                        // write it back.
                        let rows = &pattern[j];
                        let mut vals = Vec::with_capacity(rows.len());
                        for slot in 0..rows.len() as u64 {
                            vals.push(mem.read_f64(col_bases[j].offset_words(slot)));
                        }
                        mem.compute(CYCLES_CDIV * rows.len() as u64);
                        let diag = vals[0].sqrt();
                        vals[0] = diag;
                        for v in &mut vals[1..] {
                            *v /= diag;
                        }
                        for (slot, &v) in vals.iter().enumerate() {
                            mem.write_f64(col_bases[j].offset_words(slot as u64), v);
                        }

                        // Fan-out: cmod(i, j) for every i in j's structure.
                        for (idx, &i) in rows.iter().enumerate().skip(1) {
                            let lij = vals[idx];
                            sync::lock(&mem, col_locks[i]);
                            for (&r, &lrj) in rows[idx..].iter().zip(&vals[idx..]) {
                                let slot = pos(i, r);
                                let addr = col_bases[i].offset_words(slot);
                                let cur = mem.read_f64(addr);
                                mem.write_f64(addr, cur - lij * lrj);
                            }
                            mem.compute(CYCLES_CMOD * (rows.len() - idx) as u64);
                            sync::unlock(&mem, col_locks[i]);

                            // Column i lost one dependency; enqueue when
                            // it becomes runnable.
                            let old = mem.fetch_add(nmod_base.offset_words(i as u64), u64::MAX);
                            if old == 1 {
                                sync::lock(&mem, qlock);
                                let tail = mem.read(qtail);
                                mem.write(items.offset_words(tail), i as u64);
                                mem.write(qtail, tail + 1);
                                sync::unlock(&mem, qlock);
                                mem.fetch_add(version, 1);
                            }
                        }

                        let finished = mem.fetch_add(done, 1) + 1;
                        if finished == n as u64 {
                            mem.fetch_add(version, 1); // release idlers
                        }
                    }
                });
                body
            })
            .collect();

        let a_v = Arc::clone(&a);
        let pattern_v = Arc::clone(&pattern);
        let col_bases_v = col_bases;
        let verify: crate::Verifier = Box::new(move |store| {
            if store.read_word(done) != n as u64 {
                return Err("not all columns factored".to_string());
            }
            // Read L back and check A = L L^T entry-wise (dense check).
            let mut l = vec![vec![0.0f64; n]; n];
            for j in 0..n {
                for (slot, &row) in pattern_v[j].iter().enumerate() {
                    l[row][j] = store.read_f64(col_bases_v[j].offset_words(slot as u64));
                }
            }
            for i in 0..n {
                for jj in 0..n {
                    let want = a_v.rows[i]
                        .iter()
                        .find(|&&(c, _)| c == jj)
                        .map(|&(_, v)| v)
                        .unwrap_or(0.0);
                    let got: f64 = (0..n).map(|k| l[i][k] * l[jj][k]).sum();
                    if !close(got, want, 1e-6) {
                        return Err(format!("(LL^T)[{i}][{jj}] = {got}, want {want}"));
                    }
                }
            }
            Ok(())
        });

        BuiltApp { bodies, verify }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_machine::{Engine, MachineKind};
    use spasm_topology::Topology;

    #[test]
    fn cholesky_verifies_on_every_machine() {
        for kind in [
            MachineKind::Pram,
            MachineKind::Target,
            MachineKind::LogP,
            MachineKind::CLogP,
        ] {
            let topo = Topology::mesh(4);
            let mut setup = SetupCtx::new(4);
            let built = Cholesky::with_params(24, 2).build(&mut setup, 13);
            let report = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&report.final_store).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn cholesky_single_processor() {
        let topo = Topology::full(1);
        let mut setup = SetupCtx::new(1);
        let built = Cholesky::with_params(16, 2).build(&mut setup, 4);
        let r = Engine::new(MachineKind::Target, &topo, setup, built.bodies)
            .run()
            .unwrap();
        (built.verify)(&r.final_store).unwrap();
    }

    #[test]
    fn cholesky_schedule_is_dynamic_but_result_is_not() {
        // Different machine models time the queue differently; the factor
        // must verify regardless (and did, above). Here: two *different*
        // machines produce bit-different execution times but both verify.
        let mut times = Vec::new();
        for kind in [MachineKind::Target, MachineKind::CLogP] {
            let topo = Topology::full(4);
            let mut setup = SetupCtx::new(4);
            let built = Cholesky::with_params(24, 2).build(&mut setup, 13);
            let r = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&r.final_store).unwrap();
            times.push(r.exec_time);
        }
        assert_ne!(
            times[0], times[1],
            "models should time the queue differently"
        );
    }
}
