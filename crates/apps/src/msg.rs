//! Message-passing variants of the application kernels.
//!
//! SPASM simulates message-passing platforms as well as shared-memory ones
//! (the authors' companion scalability study ran the same suite on both).
//! These kernels use explicit SEND/RECEIVE (`MemCtx::send` / `MemCtx::recv`)
//! for *all* interprocessor communication; shared memory is touched only to
//! deposit final results for verification.
//!
//! Two kernels suffice to exercise the platform's characteristic patterns:
//!
//! * [`MsgEp`] — tree reduction + broadcast (the message-passing shape of
//!   EP's accumulate-and-signal ending);
//! * [`MsgFft`] — per-stage butterfly **chunk exchanges**: in the remote
//!   stages each processor swaps its whole chunk with its partner, the
//!   message-passing analogue of the shared-memory version's remote reads.

use std::f64::consts::PI;

use spasm_machine::{MemCtx, ProcBody, SetupCtx};

use crate::common::{block_range, close, proc_rng};
use crate::{App, BuiltApp, SizeClass};
use spasm_prng::Rng;

/// Message-passing EP: private statistics, binary-tree reduction of the
/// bin counts to processor 0, tree broadcast of a completion token.
#[derive(Debug, Clone, Copy)]
pub struct MsgEp {
    /// Total pairs across all processors.
    pub pairs: usize,
}

const BINS: usize = 10;
const CYCLES_PER_PAIR: u64 = 120;

impl MsgEp {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        MsgEp {
            pairs: super::Ep::new(size).pairs,
        }
    }

    /// Creates the kernel with an explicit pair count.
    pub fn with_pairs(pairs: usize) -> Self {
        MsgEp { pairs }
    }
}

fn ep_local_bins(seed: u64, proc: usize, lo: usize, hi: usize) -> [u64; BINS] {
    let mut rng = proc_rng(seed, proc);
    let mut q = [0u64; BINS];
    for _ in lo..hi {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let t = x * x + y * y;
        if t > 0.0 && t <= 1.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let l = (x * f).abs().max((y * f).abs()) as usize;
            if l < BINS {
                q[l] += 1;
            }
        }
    }
    q
}

impl App for MsgEp {
    fn name(&self) -> &'static str {
        "msg-ep"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let pairs = self.pairs;
        let out = setup.alloc(0, BINS as u64);
        let done = setup.alloc(0, 1);

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let body: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let (lo, hi) = block_range(pairs, p, me);
                    mem.compute(CYCLES_PER_PAIR * (hi - lo) as u64);
                    let mut bins = ep_local_bins(seed, me, lo, hi);

                    // Binary-tree reduction: at round r, processors with
                    // bit r set send their bins to (me - 2^r) and leave.
                    let mut round = 0;
                    loop {
                        let bit = 1usize << round;
                        if bit >= p {
                            break;
                        }
                        if me & bit != 0 {
                            // One message per bin (tag = bin index).
                            for (l, &count) in bins.iter().enumerate() {
                                mem.send(me - bit, 32, l as u64, count);
                            }
                            break;
                        } else if me + bit < p {
                            for (l, bin) in bins.iter_mut().enumerate() {
                                *bin += mem.recv(l as u64);
                            }
                        }
                        round += 1;
                    }

                    // Tree broadcast of the completion token from proc 0.
                    const DONE_TAG: u64 = 100;
                    if me == 0 {
                        for (l, &count) in bins.iter().enumerate() {
                            mem.write(out.offset_words(l as u64), count);
                        }
                    } else {
                        mem.recv(DONE_TAG);
                    }
                    let mut bit = 1usize;
                    while bit < p {
                        if me & (bit - 1) == 0 && me & bit == 0 && me + bit < p {
                            mem.send(me + bit, 8, DONE_TAG, 1);
                        }
                        bit <<= 1;
                    }
                    if me == p - 1 || p == 1 {
                        mem.write(done, 1);
                    }
                });
                body
            })
            .collect();

        let verify: crate::Verifier = Box::new(move |store| {
            let mut want = [0u64; BINS];
            for proc in 0..p {
                let (lo, hi) = block_range(pairs, p, proc);
                let q = ep_local_bins(seed, proc, lo, hi);
                for l in 0..BINS {
                    want[l] += q[l];
                }
            }
            for (l, &w) in want.iter().enumerate() {
                let got = store.read_word(out.offset_words(l as u64));
                if got != w {
                    return Err(format!("bin {l}: got {got}, want {w}"));
                }
            }
            Ok(())
        });
        BuiltApp { bodies, verify }
    }
}

/// Message-passing FFT: radix-2 DIF where remote stages exchange whole
/// chunks between butterfly partners (payload words stream as f64 bit
/// patterns, one element component per message).
#[derive(Debug, Clone, Copy)]
pub struct MsgFft {
    /// Transform length (power of two, ≥ processor count).
    pub n: usize,
}

const CYCLES_PER_BUTTERFLY: u64 = 40;

impl MsgFft {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        MsgFft {
            n: super::Fft::new(size).n,
        }
    }

    /// Creates the kernel with an explicit length.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is less than 2.
    pub fn with_len(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2);
        MsgFft { n }
    }
}

fn msg_input(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = proc_rng(seed, usize::MAX - 1);
    (0..n)
        .map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

fn msg_dft(x: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (t, &(re, im)) in x.iter().enumerate() {
                let ang = -2.0 * PI * (k * t % n) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                acc.0 += re * c - im * s;
                acc.1 += re * s + im * c;
            }
            acc
        })
        .collect()
}

impl App for MsgFft {
    fn name(&self) -> &'static str {
        "msg-fft"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let n = self.n;
        assert!(n >= p, "need at least one element per processor");
        let chunk = n / p;
        let signal = msg_input(n, seed);
        // Output deposited to shared memory for verification only.
        let out = setup.alloc(0, (2 * n) as u64);
        let stages = n.trailing_zeros() as usize;

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let signal = signal.clone();
                let body: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let lo = me * chunk;
                    // Local chunk, computed natively; communication is
                    // explicit chunk exchange.
                    let mut data: Vec<(f64, f64)> = signal[lo..lo + chunk].to_vec();

                    for stage in 0..stages {
                        let m = n >> stage;
                        let half = m / 2;
                        if half >= chunk {
                            // Remote stage: swap chunks with the partner.
                            let partner = me ^ (half / chunk);
                            // Exchange: send all components, then receive.
                            for (i, &(re, im)) in data.iter().enumerate() {
                                mem.send(partner, 32, (2 * i) as u64, re.to_bits());
                                mem.send(partner, 32, (2 * i + 1) as u64, im.to_bits());
                            }
                            let other: Vec<(f64, f64)> = (0..chunk)
                                .map(|i| {
                                    (
                                        f64::from_bits(mem.recv((2 * i) as u64)),
                                        f64::from_bits(mem.recv((2 * i + 1) as u64)),
                                    )
                                })
                                .collect();
                            mem.compute(CYCLES_PER_BUTTERFLY * chunk as u64);
                            let upper = me < partner;
                            for i in 0..chunk {
                                let k = lo + i;
                                let (ore, oim) = data[i];
                                let (pre, pim) = other[i];
                                data[i] = if upper {
                                    (ore + pre, oim + pim)
                                } else {
                                    let t = k % m - half;
                                    let ang = -2.0 * PI * t as f64 / m as f64;
                                    let (s, c) = ang.sin_cos();
                                    let (dre, dim) = (pre - ore, pim - oim);
                                    (dre * c - dim * s, dre * s + dim * c)
                                };
                            }
                        } else {
                            // Local stage: in-chunk butterflies.
                            mem.compute(CYCLES_PER_BUTTERFLY * (chunk / 2).max(1) as u64);
                            let mut next = data.clone();
                            for i in 0..chunk {
                                let k = lo + i;
                                let pos = k % m;
                                let pi = if pos < half { i + half } else { i - half };
                                let (ore, oim) = data[i];
                                let (pre, pim) = data[pi];
                                next[i] = if pos < half {
                                    (ore + pre, oim + pim)
                                } else {
                                    let t = pos - half;
                                    let ang = -2.0 * PI * t as f64 / m as f64;
                                    let (s, c) = ang.sin_cos();
                                    let (dre, dim) = (pre - ore, pim - oim);
                                    (dre * c - dim * s, dre * s + dim * c)
                                };
                            }
                            data = next;
                        }
                    }

                    // Gather results to processor 0 by message, so every
                    // byte of interprocessor traffic is an explicit send;
                    // processor 0's deposits into `out` are local writes.
                    const GATHER: u64 = 1 << 20;
                    if me == 0 {
                        for (i, &(re, im)) in data.iter().enumerate() {
                            mem.write_f64(out.offset_words((2 * i) as u64), re);
                            mem.write_f64(out.offset_words((2 * i + 1) as u64), im);
                        }
                        for k in chunk..n {
                            let re = f64::from_bits(mem.recv(GATHER + 2 * k as u64));
                            let im = f64::from_bits(mem.recv(GATHER + 2 * k as u64 + 1));
                            mem.write_f64(out.offset_words((2 * k) as u64), re);
                            mem.write_f64(out.offset_words((2 * k + 1) as u64), im);
                        }
                    } else {
                        for (i, &(re, im)) in data.iter().enumerate() {
                            let k = lo + i;
                            mem.send(0, 32, GATHER + 2 * k as u64, re.to_bits());
                            mem.send(0, 32, GATHER + 2 * k as u64 + 1, im.to_bits());
                        }
                    }
                });
                body
            })
            .collect();

        let verify: crate::Verifier = Box::new(move |store| {
            let want = msg_dft(&signal);
            let bits = n.trailing_zeros();
            for (k, &(wre, wim)) in want.iter().enumerate() {
                let at = k.reverse_bits() >> (usize::BITS - bits);
                let gre = store.read_f64(out.offset_words((2 * at) as u64));
                let gim = store.read_f64(out.offset_words((2 * at + 1) as u64));
                if !close(gre, wre, 1e-6) || !close(gim, wim, 1e-6) {
                    return Err(format!("X[{k}] = ({gre},{gim}), want ({wre},{wim})"));
                }
            }
            Ok(())
        });
        BuiltApp { bodies, verify }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_machine::{Engine, MachineKind};
    use spasm_topology::Topology;

    const ALL: [MachineKind; 4] = [
        MachineKind::Pram,
        MachineKind::Target,
        MachineKind::LogP,
        MachineKind::CLogP,
    ];

    #[test]
    fn msg_ep_verifies_on_every_machine() {
        for kind in ALL {
            for p in [1usize, 2, 4, 8] {
                let topo = Topology::hypercube(p);
                let mut setup = SetupCtx::new(p);
                let built = MsgEp::with_pairs(128).build(&mut setup, 11);
                let r = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
                (built.verify)(&r.final_store).unwrap_or_else(|e| panic!("{kind} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn msg_fft_verifies_on_every_machine() {
        for kind in ALL {
            let topo = Topology::hypercube(4);
            let mut setup = SetupCtx::new(4);
            let built = MsgFft::with_len(32).build(&mut setup, 11);
            let r = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&r.final_store).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn msg_fft_single_processor_is_all_local() {
        let topo = Topology::full(1);
        let mut setup = SetupCtx::new(1);
        let built = MsgFft::with_len(16).build(&mut setup, 2);
        let r = Engine::new(MachineKind::Target, &topo, setup, built.bodies)
            .run()
            .unwrap();
        (built.verify)(&r.final_store).unwrap();
    }

    #[test]
    fn message_passing_latency_is_exact_under_logp() {
        // With explicit 32-byte messages there is no memory system to
        // abstract and L exactly equals the target's per-message
        // transmission time, so the two machines' *latency* overheads
        // agree to the nanosecond (they count the same messages at the
        // same price). The remaining divergence is purely the g-model's
        // contention pessimism — LogP in its cleanest form.
        let run = |kind| {
            let topo = Topology::full(4);
            let mut setup = SetupCtx::new(4);
            let built = MsgFft::with_len(64).build(&mut setup, 5);
            Engine::new(kind, &topo, setup, built.bodies).run().unwrap()
        };
        let target = run(MachineKind::Target);
        let logp = run(MachineKind::LogP);
        // The exchanges dominate traffic; the only shared-memory ops are
        // the final result deposits, identical on both machines in count.
        assert_eq!(
            target.summary.net_messages, logp.summary.net_messages,
            "same messages on both machines"
        );
        // Exchange messages are all 32 B: latency overheads agree exactly.
        assert_eq!(target.totals.latency, logp.totals.latency);
        // Contention is where the models part ways (g pessimism).
        assert!(logp.totals.contention > target.totals.contention);
    }
}
