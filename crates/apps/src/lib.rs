//! # spasm-apps — the paper's application suite, execution-driven
//!
//! Five parallel kernels with the communication and locality structure of
//! the paper's §4 suite:
//!
//! * [`Ep`] — NAS *Embarrassingly Parallel*: random-number statistics;
//!   highest computation-to-communication ratio; a lock-protected global
//!   accumulation and a spin condition variable at the end (whose network
//!   behaviour drives the paper's Figure 3 observation);
//! * [`Fft`] — radix-2 decimation-in-frequency FFT, block-distributed,
//!   statically-known partner reads with strong spatial locality (four
//!   8-byte words per 32-byte cache block → the ≈4× LogP latency factor);
//! * [`Is`] — NAS *Integer Sort*: bucket histogram sort; regular but
//!   communication-heavy, lock-protected global histogram merges and
//!   atomically-claimed ranks;
//! * [`Cg`] — NAS *Conjugate Gradient*: sparse SPD mat-vec iterations with
//!   statically scheduled rows but data-dependent (irregular) vector reads;
//! * [`Cholesky`] — SPLASH-style sparse Cholesky factorization with a
//!   **dynamic task queue**: scheduling, and therefore communication, is
//!   decided at run time by simulated-time ordering.
//!
//! Every kernel computes real values on the simulated shared memory and
//! ships a verifier that checks the numerical result after the run —
//! whatever machine it ran on. Computation executes natively (in Rust) and
//! is charged with explicit cycle counts, exactly how SPASM executes
//! non-shared instructions natively and simulates only shared references.
//!
//! # Example
//!
//! ```
//! use spasm_apps::{App, Ep, SizeClass};
//! use spasm_machine::{Engine, MachineKind, SetupCtx};
//! use spasm_topology::Topology;
//!
//! let app = Ep::new(SizeClass::Test);
//! let topo = Topology::full(2);
//! let mut setup = SetupCtx::new(2);
//! let built = app.build(&mut setup, 42);
//! let report = Engine::new(MachineKind::CLogP, &topo, setup, built.bodies)
//!     .run()
//!     .unwrap();
//! (built.verify)(&report.final_store).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod cholesky;
mod common;
mod dynamic;
mod ep;
mod fft;
mod is;
pub mod msg;
pub mod sparse;

pub use dynamic::register_app;

pub use cg::Cg;
pub use cholesky::Cholesky;
pub use ep::Ep;
pub use fft::Fft;
pub use is::Is;

use spasm_machine::{ProcBody, SetupCtx, ValueStore};

/// Checks an application's numerical result against an independently
/// computed reference.
pub type Verifier = Box<dyn FnOnce(&ValueStore) -> Result<(), String> + Send>;

/// A constructed application instance: one body per processor plus the
/// result verifier.
pub struct BuiltApp {
    /// Per-processor program closures.
    pub bodies: Vec<ProcBody>,
    /// Post-run result check.
    pub verify: Verifier,
}

impl std::fmt::Debug for BuiltApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltApp")
            .field("bodies", &self.bodies.len())
            .finish_non_exhaustive()
    }
}

/// An application that can be instantiated on any processor count.
pub trait App: Send + Sync {
    /// Short lowercase name ("ep", "fft", ...).
    fn name(&self) -> &'static str;

    /// Allocates shared state in `setup` (whose node count fixes `p`) and
    /// returns the processor bodies and verifier. `seed` makes the
    /// workload deterministic.
    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp;
}

/// Problem-size presets.
///
/// The paper ran full-size inputs for 8–10 hours per data point; the
/// reproduction uses scaled inputs (`Small` for figure sweeps, `Test` for
/// the test suite, `Full` for longer validation runs). Curves are plotted
/// against processor count, so input scale shifts absolute values only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizeClass {
    /// Smallest: unit/integration tests.
    Test,
    /// Figure-sweep size.
    #[default]
    Small,
    /// Longer validation runs.
    Full,
}

/// Identifier for an application: the five built-in kernels (figure
/// specs, CLI) plus dynamically registered workloads (see
/// [`register_app`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// NAS EP.
    Ep,
    /// Radix-2 FFT.
    Fft,
    /// NAS IS.
    Is,
    /// NAS CG.
    Cg,
    /// SPLASH CHOLESKY.
    Cholesky,
    /// A dynamically registered application (a compiled scenario); the
    /// index is process-local — durable identity is the registered name
    /// and canonical definition ([`AppId::fingerprint_detail`]).
    Custom(u32),
}

impl AppId {
    /// The five built-ins, in the paper's order of introduction.
    pub const ALL: [AppId; 5] = [AppId::Ep, AppId::Is, AppId::Cg, AppId::Cholesky, AppId::Fft];

    /// Instantiates the application at `size`.
    pub fn instantiate(self, size: SizeClass) -> Box<dyn App> {
        match self {
            AppId::Ep => Box::new(Ep::new(size)),
            AppId::Fft => Box::new(Fft::new(size)),
            AppId::Is => Box::new(Is::new(size)),
            AppId::Cg => Box::new(Cg::new(size)),
            AppId::Cholesky => Box::new(Cholesky::new(size)),
            AppId::Custom(i) => dynamic::instantiate(i, size),
        }
    }

    /// Parses a name as printed by [`AppId::name`] — a built-in first,
    /// then the dynamic registry.
    pub fn from_name(name: &str) -> Option<AppId> {
        match name {
            "ep" => Some(AppId::Ep),
            "fft" => Some(AppId::Fft),
            "is" => Some(AppId::Is),
            "cg" => Some(AppId::Cg),
            "cholesky" => Some(AppId::Cholesky),
            _ => dynamic::lookup(name),
        }
    }

    /// The short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Ep => "ep",
            AppId::Fft => "fft",
            AppId::Is => "is",
            AppId::Cg => "cg",
            AppId::Cholesky => "cholesky",
            AppId::Custom(i) => dynamic::name_of(i),
        }
    }

    /// Content that pins this app's identity beyond its name: the
    /// canonical definition text for a registered custom app, `None` for
    /// the built-ins (their behaviour is fixed by the binary). Sweep
    /// fingerprints absorb this, so journals written under one scenario
    /// definition refuse to resume under another even if the file name
    /// is reused.
    pub fn fingerprint_detail(self) -> Option<&'static str> {
        match self {
            AppId::Custom(i) => Some(dynamic::canon_of(i)),
            _ => None,
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_id_name_roundtrip() {
        for id in AppId::ALL {
            assert_eq!(AppId::from_name(id.name()), Some(id));
        }
        assert_eq!(AppId::from_name("nope"), None);
    }

    #[test]
    fn instantiation_produces_named_apps() {
        for id in AppId::ALL {
            let app = id.instantiate(SizeClass::Test);
            assert_eq!(app.name(), id.name());
        }
    }
}
