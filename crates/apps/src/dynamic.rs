//! Process-global registry for dynamically defined applications.
//!
//! The five built-in kernels are closed [`AppId`] variants; scenario-
//! compiled workloads (and anything else constructed at run time) enter
//! the same machinery through [`register_app`], which hands back an
//! [`AppId::Custom`] usable everywhere a built-in id is: figure specs,
//! sweeps, journals, shards.
//!
//! Identity semantics: a custom app is its *name plus canonical spec
//! text*. Registering the same (name, canon) pair again is idempotent
//! and returns the existing id; the same name with a different canon is
//! refused — two processes that each register their scenario files in
//! CLI order therefore agree on what every name means, and the sweep
//! fingerprint absorbs the canon text itself (never the registry index),
//! so journals and shards written by different scenario files can never
//! silently interchange.

use std::sync::{OnceLock, RwLock};

use crate::{App, AppId, SizeClass};

/// A registered dynamic application.
struct Entry {
    name: &'static str,
    canon: &'static str,
    factory: Box<dyn Fn(SizeClass) -> Box<dyn App> + Send + Sync>,
}

fn registry() -> &'static RwLock<Vec<Entry>> {
    static REGISTRY: OnceLock<RwLock<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

fn read() -> std::sync::RwLockReadGuard<'static, Vec<Entry>> {
    registry().read().expect("app registry poisoned")
}

/// Registers a dynamic application under `name`, with `canon` as its
/// canonical definition text (for the journal fingerprint) and `factory`
/// instantiating it per size class. Idempotent for an identical
/// (name, canon) pair.
///
/// # Errors
///
/// When `name` collides with a built-in app or is already registered
/// with a *different* canonical definition.
pub fn register_app(
    name: &str,
    canon: &str,
    factory: impl Fn(SizeClass) -> Box<dyn App> + Send + Sync + 'static,
) -> Result<AppId, String> {
    if AppId::ALL.iter().any(|id| id.name() == name) {
        return Err(format!("app name {name:?} is a built-in application"));
    }
    let mut entries = registry().write().expect("app registry poisoned");
    if let Some(i) = entries.iter().position(|e| e.name == name) {
        return if entries[i].canon == canon {
            Ok(AppId::Custom(i as u32))
        } else {
            Err(format!(
                "app name {name:?} is already registered with a different definition"
            ))
        };
    }
    let i = entries.len();
    entries.push(Entry {
        name: Box::leak(name.to_string().into_boxed_str()),
        canon: Box::leak(canon.to_string().into_boxed_str()),
        factory: Box::new(factory),
    });
    Ok(AppId::Custom(i as u32))
}

/// The registered name for custom id `i`.
///
/// # Panics
///
/// Panics if `i` was never handed out by [`register_app`] — a custom
/// [`AppId`] cannot be constructed honestly any other way.
pub(crate) fn name_of(i: u32) -> &'static str {
    read()
        .get(i as usize)
        .unwrap_or_else(|| panic!("custom app id {i} was never registered"))
        .name
}

/// The canonical definition text for custom id `i` (see
/// [`AppId::fingerprint_detail`]).
pub(crate) fn canon_of(i: u32) -> &'static str {
    read()
        .get(i as usize)
        .unwrap_or_else(|| panic!("custom app id {i} was never registered"))
        .canon
}

/// Looks a registered app up by name.
pub(crate) fn lookup(name: &str) -> Option<AppId> {
    read()
        .iter()
        .position(|e| e.name == name)
        .map(|i| AppId::Custom(i as u32))
}

/// Instantiates custom id `i` at `size`.
pub(crate) fn instantiate(i: u32, size: SizeClass) -> Box<dyn App> {
    (read()
        .get(i as usize)
        .unwrap_or_else(|| panic!("custom app id {i} was never registered"))
        .factory)(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuiltApp, Ep};
    use spasm_machine::SetupCtx;

    struct Shim(&'static str);

    impl App for Shim {
        fn name(&self) -> &'static str {
            self.0
        }
        fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
            Ep::new(SizeClass::Test).build(setup, seed)
        }
    }

    #[test]
    fn registration_roundtrips_and_is_idempotent() {
        let id = register_app("dyn-test-app", "spec v1", |_| {
            Box::new(Shim("dyn-test-app"))
        })
        .unwrap();
        assert!(matches!(id, AppId::Custom(_)));
        assert_eq!(id.name(), "dyn-test-app");
        assert_eq!(id.to_string(), "dyn-test-app");
        assert_eq!(AppId::from_name("dyn-test-app"), Some(id));
        assert_eq!(id.fingerprint_detail(), Some("spec v1"));
        assert_eq!(id.instantiate(SizeClass::Test).name(), "dyn-test-app");

        // Same name + same canon: the same id back.
        let again = register_app("dyn-test-app", "spec v1", |_| {
            Box::new(Shim("dyn-test-app"))
        })
        .unwrap();
        assert_eq!(id, again);

        // Same name + different canon: refused.
        let err = register_app("dyn-test-app", "spec v2", |_| {
            Box::new(Shim("dyn-test-app"))
        })
        .unwrap_err();
        assert!(err.contains("different definition"), "{err}");
    }

    #[test]
    fn builtin_names_are_reserved() {
        let err = register_app("ep", "x", |_| Box::new(Shim("ep"))).unwrap_err();
        assert!(err.contains("built-in"), "{err}");
    }

    #[test]
    fn builtins_have_no_fingerprint_detail() {
        for id in AppId::ALL {
            assert_eq!(id.fingerprint_detail(), None);
        }
    }
}
