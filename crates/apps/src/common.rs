//! Shared helpers for the application kernels.

use spasm_prng::StdRng;

/// Deterministic per-processor RNG: mixes the run seed and processor id so
/// every machine model sees the identical workload.
pub(crate) fn proc_rng(seed: u64, proc: usize) -> StdRng {
    // SplitMix-style avalanche keeps nearby (seed, proc) pairs uncorrelated.
    let mut z = seed ^ (proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// The contiguous `[lo, hi)` range of `n` items owned by `proc` of `p`
/// under block distribution (remainders spread over the low processors).
pub(crate) fn block_range(n: usize, p: usize, proc: usize) -> (usize, usize) {
    let base = n / p;
    let rem = n % p;
    let lo = proc * base + proc.min(rem);
    let hi = lo + base + usize::from(proc < rem);
    (lo, hi)
}

/// Relative-error comparison for verifiers.
pub(crate) fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_prng::Rng;

    #[test]
    fn proc_rngs_differ_and_are_stable() {
        let a: u64 = proc_rng(1, 0).next_u64();
        let b: u64 = proc_rng(1, 1).next_u64();
        let a2: u64 = proc_rng(1, 0).next_u64();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn block_range_covers_exactly() {
        for n in [1usize, 7, 16, 100] {
            for p in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut last_hi = 0;
                for proc in 0..p {
                    let (lo, hi) = block_range(n, p, proc);
                    assert_eq!(lo, last_hi, "ranges must be contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    last_hi = hi;
                }
                assert_eq!(covered, n);
                assert_eq!(last_hi, n);
            }
        }
    }

    #[test]
    fn close_comparisons() {
        assert!(close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!close(1.0, 1.1, 1e-3));
        assert!(close(0.0, 1e-10, 1e-9)); // absolute floor at scale 1
    }
}
