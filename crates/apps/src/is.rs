//! IS — the NAS Integer Sort kernel (bucket / counting sort).

use spasm_machine::{sync, Addr, MemCtx, ProcBody, SetupCtx};
use spasm_prng::Rng;

use crate::common::{block_range, proc_rng};
use crate::{App, BuiltApp, SizeClass};

/// Integer sort by global histogram ranking. Communication structure:
///
/// * regular (statically determinable) but **communication-heavy** — the
///   lowest computation-to-communication ratio of the three static
///   applications, which is why IS separates the machine models clearly
///   (paper Figure 14);
/// * lock-protected merges of local histograms into a distributed global
///   histogram — the paper notes IS "uses locks for mutual exclusion";
/// * a serial prefix-sum phase (algorithmic overhead visible in ideal
///   time);
/// * a ranking phase that claims output slots with atomic fetch-add and
///   scatters keys remotely.
#[derive(Debug, Clone, Copy)]
pub struct Is {
    /// Number of keys.
    pub keys: usize,
    /// Number of buckets (key range).
    pub buckets: usize,
}

/// Charged cycles per key in the histogram phase.
const CYCLES_HIST: u64 = 6;
/// Charged cycles per key in the ranking phase.
const CYCLES_RANK: u64 = 10;
/// Keys per computation chunk.
const CHUNK: usize = 32;

impl Is {
    /// Creates the kernel at a preset size.
    pub fn new(size: SizeClass) -> Self {
        let keys = match size {
            SizeClass::Test => 512,
            SizeClass::Small => 2_048,
            SizeClass::Full => 8_192,
        };
        Is { keys, buckets: 128 }
    }

    /// Creates the kernel with explicit sizes.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `keys` is zero.
    pub fn with_sizes(keys: usize, buckets: usize) -> Self {
        assert!(keys > 0 && buckets > 0);
        Is { keys, buckets }
    }
}

/// The keys proc `me` contributes.
fn local_keys(seed: u64, me: usize, lo: usize, hi: usize, buckets: usize) -> Vec<u64> {
    let mut rng = proc_rng(seed, me);
    (lo..hi).map(|_| rng.gen_range(0..buckets as u64)).collect()
}

impl App for Is {
    fn name(&self) -> &'static str {
        "is"
    }

    fn build(&self, setup: &mut SetupCtx, seed: u64) -> BuiltApp {
        let p = setup.nodes();
        let keys = self.keys;
        let buckets = self.buckets;
        assert!(buckets >= p, "need at least one bucket per processor");

        // The global histogram and the rank offsets, distributed in
        // per-processor chunks; one lock per chunk.
        let chunk_of = move |b: usize| -> usize { b * p / buckets };
        let hist_bases: Vec<Addr> = (0..p)
            .map(|home| {
                let (lo, hi) = block_range(buckets, p, home);
                setup.alloc_labeled(home, (hi - lo) as u64, "histogram")
            })
            .collect();
        let offs_bases: Vec<Addr> = (0..p)
            .map(|home| {
                let (lo, hi) = block_range(buckets, p, home);
                setup.alloc_labeled(home, (hi - lo) as u64, "offsets")
            })
            .collect();
        let locks: Vec<Addr> = (0..p)
            .map(|home| setup.alloc_labeled(home, 1, "locks"))
            .collect();
        // Sorted output, block-distributed by rank.
        let out_bases: Vec<Addr> = (0..p)
            .map(|home| {
                let (lo, hi) = block_range(keys, p, home);
                setup.alloc_labeled(home, (hi - lo).max(1) as u64, "output")
            })
            .collect();
        let barrier = sync::Barrier::alloc(setup, 0, p);

        let bucket_addr = move |bases: &[Addr], b: usize| -> Addr {
            // Recover which chunk b lives in and its offset.
            let mut proc = chunk_of(b).min(p - 1);
            loop {
                let (lo, hi) = block_range(buckets, p, proc);
                if b >= hi {
                    proc += 1;
                } else if b < lo {
                    proc -= 1;
                } else {
                    return bases[proc].offset_words((b - lo) as u64);
                }
            }
        };
        let out_addr = move |bases: &[Addr], r: usize| -> Addr {
            let mut proc = (r * p / keys).min(p - 1);
            loop {
                let (lo, hi) = block_range(keys, p, proc);
                if r >= hi {
                    proc += 1;
                } else if r < lo {
                    proc -= 1;
                } else {
                    return bases[proc].offset_words((r - lo) as u64);
                }
            }
        };

        let bodies: Vec<ProcBody> = (0..p)
            .map(|_| {
                let hist = hist_bases.clone();
                let offs = offs_bases.clone();
                let locks = locks.clone();
                let out = out_bases.clone();
                let body: ProcBody = Box::new(move |me, ctx| {
                    let mem = MemCtx::new(ctx);
                    let mut bar = barrier.handle();
                    let (lo, hi) = block_range(keys, p, me);
                    let my_keys = local_keys(seed, me, lo, hi, buckets);

                    // Phase 1: private histogram (native + charged).
                    let mut local = vec![0u64; buckets];
                    for batch in my_keys.chunks(CHUNK) {
                        mem.compute(CYCLES_HIST * batch.len() as u64);
                        for &k in batch {
                            local[k as usize] += 1;
                        }
                    }

                    // Phase 2: merge into the global histogram chunk by
                    // chunk, starting at our own chunk to stagger lock
                    // traffic.
                    for step in 0..p {
                        let target = (me + step) % p;
                        let (blo, bhi) = block_range(buckets, p, target);
                        if local[blo..bhi].iter().all(|&c| c == 0) {
                            continue;
                        }
                        sync::lock(&mem, locks[target]);
                        for (b, &count) in local[blo..bhi].iter().enumerate() {
                            if count > 0 {
                                let addr = bucket_addr(&hist, blo + b);
                                let cur = mem.read(addr);
                                mem.write(addr, cur + count);
                            }
                        }
                        sync::unlock(&mem, locks[target]);
                    }
                    bar.wait(&mem);

                    // Phase 3: serial exclusive prefix sum by proc 0 (the
                    // algorithmic serial fraction).
                    if me == 0 {
                        let mut acc = 0u64;
                        for b in 0..buckets {
                            let c = mem.read(bucket_addr(&hist, b));
                            mem.write(bucket_addr(&offs, b), acc);
                            acc += c;
                        }
                    }
                    bar.wait(&mem);

                    // Phase 4: claim ranks atomically and scatter keys.
                    for batch in my_keys.chunks(CHUNK) {
                        mem.compute(CYCLES_RANK * batch.len() as u64);
                        for &k in batch {
                            let rank = mem.fetch_add(bucket_addr(&offs, k as usize), 1);
                            mem.write(out_addr(&out, rank as usize), k);
                        }
                    }
                    bar.wait(&mem);
                });
                body
            })
            .collect();

        let out_bases_v = out_bases;
        let verify: crate::Verifier = Box::new(move |store| {
            // Reference: totals per bucket from the same streams.
            let mut want_hist = vec![0u64; buckets];
            for me in 0..p {
                let (lo, hi) = block_range(keys, p, me);
                for k in local_keys(seed, me, lo, hi, buckets) {
                    want_hist[k as usize] += 1;
                }
            }
            // The output must be the fully sorted key sequence.
            let mut rank = 0usize;
            for (b, &count) in want_hist.iter().enumerate() {
                for _ in 0..count {
                    let got = store.read_word(out_addr(&out_bases_v, rank));
                    if got != b as u64 {
                        return Err(format!("out[{rank}] = {got}, want {b}"));
                    }
                    rank += 1;
                }
            }
            if rank != keys {
                return Err(format!("ranked {rank} keys, want {keys}"));
            }
            Ok(())
        });

        BuiltApp { bodies, verify }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_machine::{Engine, MachineKind};
    use spasm_topology::Topology;

    #[test]
    fn is_verifies_on_every_machine() {
        for kind in [
            MachineKind::Pram,
            MachineKind::Target,
            MachineKind::LogP,
            MachineKind::CLogP,
        ] {
            let topo = Topology::mesh(4);
            let mut setup = SetupCtx::new(4);
            let built = Is::with_sizes(128, 32).build(&mut setup, 17);
            let report = Engine::new(kind, &topo, setup, built.bodies).run().unwrap();
            (built.verify)(&report.final_store).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn is_single_processor() {
        let topo = Topology::full(1);
        let mut setup = SetupCtx::new(1);
        let built = Is::with_sizes(64, 16).build(&mut setup, 2);
        let r = Engine::new(MachineKind::Target, &topo, setup, built.bodies)
            .run()
            .unwrap();
        (built.verify)(&r.final_store).unwrap();
    }

    #[test]
    fn is_generates_substantial_traffic() {
        // IS is the communication-heavy static app: traffic per processor
        // must dwarf EP's at the same scale.
        let topo = Topology::full(4);
        let mut setup = SetupCtx::new(4);
        let built = Is::with_sizes(256, 32).build(&mut setup, 3);
        let r = Engine::new(MachineKind::Target, &topo, setup, built.bodies)
            .run()
            .unwrap();
        assert!(
            r.summary.net_messages > 500,
            "expected heavy traffic, got {}",
            r.summary.net_messages
        );
    }
}
