//! # spasm-exec — a deterministic parallel experiment executor
//!
//! The figure sweeps of the paper are embarrassingly parallel — every
//! (application × machine × processor-count) point is an independent
//! simulation — yet each *simulation* is internally sequential by design
//! (the engine's determinism depends on a single event loop). This crate
//! supplies the missing layer: a bounded OS-thread worker pool that runs
//! many independent simulations at once while keeping every observable
//! output **byte-identical** to a serial run.
//!
//! Determinism contract:
//!
//! * results come back in **submission order**, one slot per job,
//!   regardless of completion order ([`ExecReport::results`]);
//! * jobs receive a **seed** derived only from the configured base seed
//!   and their submission index ([`seed_for`]), never from scheduling;
//! * a panicking job is caught at the job boundary ([`JobError::Panicked`])
//!   and the worker continues — one bad point cannot poison a batch;
//! * with `jobs <= 1` the pool degenerates to an inline loop on the
//!   calling thread with the *same* code path and event stream, so a
//!   serial run is the trivial case of a parallel one, not a fork.
//!
//! Shared machinery: a [`CancelToken`] aborts the not-yet-started tail of
//! a batch (user-triggered, e.g. fail-fast from the observer), a
//! [`CostBudget`] bounds the *total* cost (simulator events, by
//! convention) spent across all workers, and a wall-clock budget turns a
//! runaway batch into typed [`JobError::Cancelled`] results for the
//! remaining jobs. Progress and metrics flow to the submitting thread as
//! an [`ExecEvent`] stream (queued/started/finished, per-job wall time,
//! injected-fault counters).
//!
//! The crate is hermetic: `std` plus the in-tree `spasm-prng` only.
//!
//! # Example
//!
//! ```
//! use spasm_exec::{execute, ExecConfig, JobOutput};
//!
//! let report = execute(
//!     ExecConfig::with_jobs(4),
//!     (0u64..32).collect(),
//!     |_ctx, n| JobOutput::plain(n * n),
//!     |_event| {},
//! );
//! let squares: Vec<u64> = report.results.into_iter().map(Result::unwrap).collect();
//! assert_eq!(squares[7], 49); // submission order, whatever the schedule
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;

pub use events::{ExecEvent, ExecReport, ExecStats};

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a pool stopped taking new jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    User,
    /// The shared [`CostBudget`] ran out.
    CostBudget,
    /// The batch exceeded its wall-clock budget.
    WallBudget,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CancelReason::User => "cancelled by caller",
            CancelReason::CostBudget => "shared cost budget exhausted",
            CancelReason::WallBudget => "wall-clock budget exceeded",
        };
        f.write_str(s)
    }
}

/// Why one job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's closure panicked; the payload is the rendered message.
    Panicked(String),
    /// The pool was cancelled before a worker reached this job.
    Cancelled(CancelReason),
    /// The job overran its per-job wall-clock deadline
    /// ([`ExecConfig::deadline`]). The watchdog *cancels* an overdue
    /// job — it never kills the thread — so the closure ran to
    /// completion, but its result was discarded: once the deadline has
    /// expired the job is deadlined, whatever its closure later
    /// returns (there is no race between expiry and the result-slot
    /// write; see the pool's phase protocol).
    Deadline {
        /// The deadline the job overran. (Deliberately not the elapsed
        /// time: the rendered error stays byte-stable across runs.)
        limit: Duration,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled(reason) => write!(f, "job not run: {reason}"),
            JobError::Deadline { limit } => {
                write!(f, "job overran its {limit:?} wall-clock deadline")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// How often the deadline watchdog wakes to scan running jobs; expiry
/// resolution is therefore ~this coarse, which is fine for deadlines
/// meant to catch minute-scale hangs.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

const CANCEL_NONE: u8 = 0;
const CANCEL_USER: u8 = 1;
const CANCEL_COST: u8 = 2;
const CANCEL_WALL: u8 = 3;

/// Shared, clonable cancellation flag. Cancelling stops *queued* jobs
/// from starting; jobs already running complete (a simulation cannot be
/// safely interrupted mid-event-loop) and their results are kept.
///
/// The first cancellation reason wins; later calls are no-ops.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation on behalf of the caller.
    pub fn cancel(&self) {
        self.trigger(CANCEL_USER);
    }

    fn trigger(&self, code: u8) {
        let _ = self
            .state
            .compare_exchange(CANCEL_NONE, code, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The cancellation reason, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Acquire) {
            CANCEL_USER => Some(CancelReason::User),
            CANCEL_COST => Some(CancelReason::CostBudget),
            CANCEL_WALL => Some(CancelReason::WallBudget),
            _ => None,
        }
    }

    /// True once any cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }
}

/// A shared bound on the total cost spent by a batch, accounted across
/// all workers. Cost units are whatever the jobs report — the experiment
/// layer charges simulator events, making this the parallel analogue of
/// the engine's per-run `RunBudget`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBudget {
    /// Maximum total cost units; `None` is unlimited.
    pub max_cost: Option<u64>,
}

impl CostBudget {
    /// No bound.
    pub const UNLIMITED: CostBudget = CostBudget { max_cost: None };

    /// A bound of `max` total cost units.
    pub fn units(max: u64) -> Self {
        CostBudget {
            max_cost: Some(max),
        }
    }
}

/// Pool configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Worker count: `0` means auto (host parallelism), `1` runs inline
    /// on the calling thread, `n > 1` spawns `min(n, jobs)` workers.
    pub jobs: usize,
    /// Base seed for the per-job seed stream ([`seed_for`]).
    pub seed: u64,
    /// Shared cost bound across all jobs of the batch.
    pub cost_budget: CostBudget,
    /// Wall-clock bound on the whole batch; once exceeded, queued jobs
    /// are cancelled with [`CancelReason::WallBudget`]. Running jobs
    /// still complete — pair with a per-run budget (the experiment
    /// layer's `RunBudget`) so individual runs cannot hang forever.
    pub wall_budget: Option<Duration>,
    /// Per-job wall-clock deadline, enforced by a monotonic-clock
    /// watchdog thread. An overdue job is *cancelled* (cooperatively —
    /// the closure keeps running and may poll
    /// [`JobCtx::deadline_expired`] to bail out early), and its slot
    /// records [`JobError::Deadline`] no matter what the closure
    /// returns after expiry. `None` (the default) spawns no watchdog
    /// and adds no per-job cost.
    pub deadline: Option<Duration>,
    /// External cancellation handle; clone it before passing the config
    /// to keep the ability to cancel mid-batch.
    pub cancel: CancelToken,
}

impl ExecConfig {
    /// Auto-sized pool: one worker per available hardware thread.
    pub fn auto() -> Self {
        ExecConfig::default()
    }

    /// Inline serial execution on the calling thread.
    pub fn serial() -> Self {
        ExecConfig::with_jobs(1)
    }

    /// A pool of exactly `jobs` workers (`0` = auto).
    pub fn with_jobs(jobs: usize) -> Self {
        ExecConfig {
            jobs,
            ..ExecConfig::default()
        }
    }

    /// The worker count this config resolves to for `n_jobs` jobs.
    pub fn resolved_workers(&self, n_jobs: usize) -> usize {
        let requested = if self.jobs == 0 {
            available_parallelism()
        } else {
            self.jobs
        };
        requested.min(n_jobs).max(1)
    }
}

/// The host's available parallelism, defaulting to 1 when unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The seed handed to job `job` under base seed `base`: a pure splitmix
/// derivation, independent of worker assignment and completion order.
/// `seed_for(base, 0) != base` by construction, so job streams never
/// collide with a caller's own use of the base seed.
pub fn seed_for(base: u64, job: u64) -> u64 {
    let mut s = base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(job.wrapping_add(1));
    spasm_prng::splitmix64(&mut s)
}

/// Per-job context handed to the job closure.
#[derive(Debug)]
pub struct JobCtx<'a> {
    /// Submission index of this job.
    pub job: usize,
    /// This job's derived seed ([`seed_for`]).
    pub seed: u64,
    cancel: &'a CancelToken,
    /// This job's lifecycle phase, when a deadline watchdog is active.
    phase: Option<&'a Arc<AtomicU8>>,
}

impl JobCtx<'_> {
    /// True if the batch has been cancelled *or* this job's own
    /// deadline has expired; long-running jobs may poll this to bail
    /// out early (e.g. by tightening their own budget).
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled() || self.deadline_expired()
    }

    /// True once the watchdog has expired this job's deadline. The
    /// job's result is already forfeit ([`JobError::Deadline`]);
    /// returning early just frees the worker sooner.
    pub fn deadline_expired(&self) -> bool {
        self.phase
            .is_some_and(|p| p.load(Ordering::Acquire) == PHASE_EXPIRED)
    }

    /// An owned probe over this job's cancellation state: a boxed
    /// closure equivalent to [`JobCtx::cancelled`] that captures clones
    /// of the shared flags and so outlives the `JobCtx` borrow. The
    /// experiment layer installs it into the simulation engine, which
    /// polls it between events — a cancelled or deadline-expired job
    /// then aborts mid-run (mid-speculation included, in the optimistic
    /// engine) instead of completing a forfeit simulation.
    pub fn cancel_probe(&self) -> Box<dyn Fn() -> bool + Send + 'static> {
        let cancel = self.cancel.clone();
        let phase = self.phase.cloned();
        Box::new(move || {
            cancel.is_cancelled()
                || phase
                    .as_ref()
                    .is_some_and(|p| p.load(Ordering::Acquire) == PHASE_EXPIRED)
        })
    }
}

/// Deterministic capped exponential backoff for retryable failures.
///
/// The schedule is pure: the delay before retry `k` depends only on
/// `(self, seed, k)`, so a resumed sweep waits out exactly the pauses
/// the original would have — no global clock, no shared RNG. Delay
/// before retry `k` (1-based) is drawn from
/// `[ceil/2, ceil]` where `ceil = min(cap, base << (k-1))`, with the
/// jitter derived by splitmix from `(seed, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry ceiling; `ZERO` disables backoff entirely.
    pub base: Duration,
    /// Upper bound the exponential curve saturates at.
    pub cap: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::NONE
    }
}

impl Backoff {
    /// No backoff: every delay is zero.
    pub const NONE: Backoff = Backoff {
        base: Duration::ZERO,
        cap: Duration::ZERO,
    };

    /// A capped exponential schedule starting at `base`.
    pub fn exponential(base: Duration, cap: Duration) -> Self {
        Backoff { base, cap }
    }

    /// The delay before retry `retry` (1-based; `0` and a zero `base`
    /// both yield zero). Pure and deterministic in `(self, seed, retry)`.
    pub fn delay(&self, seed: u64, retry: u32) -> Duration {
        if self.base.is_zero() || retry == 0 {
            return Duration::ZERO;
        }
        let to_ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let base_ns = to_ns(self.base);
        let cap_ns = to_ns(self.cap).max(base_ns);
        let shift = (retry - 1).min(63);
        let ceiling = base_ns.saturating_mul(1u64 << shift).min(cap_ns);
        let half = ceiling / 2;
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(retry));
        let jitter = spasm_prng::splitmix64(&mut s) % (ceiling - half + 1);
        Duration::from_nanos(half + jitter)
    }
}

/// What one job hands back: its value plus metered cost and fault counts
/// for the shared budget and the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutput<R> {
    /// The job's result value.
    pub value: R,
    /// Cost units consumed (simulator events, by convention).
    pub cost: u64,
    /// Faults injected during the job, for the metrics stream.
    pub faults: u64,
}

impl<R> JobOutput<R> {
    /// A result with no metered cost or faults.
    pub fn plain(value: R) -> Self {
        JobOutput {
            value,
            cost: 0,
            faults: 0,
        }
    }
}

/// Runs `run` over every item of `items` on a bounded worker pool and
/// returns the results in submission order. `observe` sees every
/// [`ExecEvent`] on the calling thread, serialized.
///
/// Panics inside `run` are caught per job ([`JobError::Panicked`]);
/// cancellation and exhausted budgets surface as
/// [`JobError::Cancelled`] on the jobs that never started.
pub fn execute<T, R, F, O>(
    config: ExecConfig,
    items: Vec<T>,
    run: F,
    mut observe: O,
) -> ExecReport<R>
where
    T: Send,
    R: Send,
    F: Fn(&JobCtx<'_>, T) -> JobOutput<R> + Sync,
    O: FnMut(&ExecEvent),
{
    let n = items.len();
    let workers = config.resolved_workers(n);
    let started_at = Instant::now();
    let mut stats = ExecStats {
        jobs: n,
        workers,
        ..ExecStats::default()
    };

    let pool = Pool {
        config: &config,
        run: &run,
        next: AtomicUsize::new(0),
        spent: AtomicU64::new(0),
        cells: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
        slots: (0..n).map(|_| Mutex::new(None)).collect(),
        phases: if config.deadline.is_some() {
            (0..n).map(|_| JobPhase::default()).collect()
        } else {
            Vec::new()
        },
        filled: AtomicUsize::new(0),
        started_at,
    };

    for job in 0..n {
        let ev = ExecEvent::Queued { job };
        stats.absorb(&ev);
        observe(&ev);
    }

    if workers <= 1 {
        // Inline serial path: same pool code, synchronous event
        // delivery. A deadline still needs the watchdog thread — it is
        // what flips an overdue job's phase while the job runs.
        let mut emit = |ev: ExecEvent| {
            stats.absorb(&ev);
            observe(&ev);
        };
        if let Some(limit) = config.deadline {
            std::thread::scope(|s| {
                let pool = &pool;
                s.spawn(move || pool.watchdog(limit));
                while pool.run_next(0, &mut emit) {}
            });
        } else {
            while pool.run_next(0, &mut emit) {}
        }
    } else {
        let (tx, rx) = mpsc::channel::<ExecEvent>();
        std::thread::scope(|s| {
            if let Some(limit) = config.deadline {
                let pool = &pool;
                s.spawn(move || pool.watchdog(limit));
            }
            for worker in 0..workers {
                let tx = tx.clone();
                let pool = &pool;
                s.spawn(move || {
                    let mut emit = |ev: ExecEvent| {
                        // A dropped receiver means the observer side is
                        // gone; the results vector is still filled in.
                        let _ = tx.send(ev);
                    };
                    while pool.run_next(worker, &mut emit) {}
                });
            }
            drop(tx);
            // Drain events on the submitting thread until every worker
            // sender is gone; doubles as the wall-budget watchdog.
            loop {
                match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(ev) => {
                        stats.absorb(&ev);
                        observe(&ev);
                    }
                    Err(RecvTimeoutError::Timeout) => pool.check_wall(),
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
    }

    let results = pool
        .slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panics while holding a slot lock")
                .expect("every job slot is filled before the pool drains")
        })
        .collect();
    stats.wall = started_at.elapsed();
    ExecReport { results, stats }
}

/// Lifecycle phases of one job under deadline supervision. The worker
/// and the watchdog race on a single CAS: worker `Running → Done` at
/// result-slot write, watchdog `Running → Expired` at deadline expiry.
/// Exactly one wins, so a job can never both expire and land `Ok` —
/// the loser of the CAS observes the winner's verdict.
// (Pending is the AtomicU8 default, 0; no code needs to name it.)
const PHASE_RUNNING: u8 = 1;
const PHASE_DONE: u8 = 2;
const PHASE_EXPIRED: u8 = 3;

/// Per-job deadline-supervision state (allocated only when
/// [`ExecConfig::deadline`] is set).
#[derive(Debug, Default)]
struct JobPhase {
    /// Shared so [`JobCtx::cancel_probe`] can hand the engine an owned
    /// handle that outlives the pool borrow.
    phase: Arc<AtomicU8>,
    /// When the worker picked the job up; `None` until then. Instant is
    /// monotonic, so suspend/clock-step cannot fire the watchdog early.
    started: Mutex<Option<Instant>>,
}

/// The shared state of one batch, borrowed by every worker.
struct Pool<'a, T, R, F> {
    config: &'a ExecConfig,
    run: &'a F,
    /// Submission-order job cursor; `fetch_add` hands each worker the
    /// next unclaimed job, so starts follow submission order.
    next: AtomicUsize,
    /// Cost units charged so far against the shared budget.
    spent: AtomicU64,
    /// One take-once cell per input item.
    cells: Vec<Mutex<Option<T>>>,
    /// One write-once result slot per job, in submission order.
    slots: Vec<Mutex<Option<Result<R, JobError>>>>,
    /// Per-job phase state for the deadline watchdog; empty when no
    /// deadline is configured (zero overhead on the common path).
    phases: Vec<JobPhase>,
    /// Slots written so far — the watchdog's termination condition.
    filled: AtomicUsize,
    started_at: Instant,
}

impl<T, R, F> Pool<'_, T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(&JobCtx<'_>, T) -> JobOutput<R> + Sync,
{
    /// Claims and runs the next queued job. Returns `false` once the
    /// queue is empty (the worker's signal to exit).
    fn run_next(&self, worker: usize, emit: &mut impl FnMut(ExecEvent)) -> bool {
        let job = self.next.fetch_add(1, Ordering::Relaxed);
        if job >= self.cells.len() {
            return false;
        }
        self.check_wall();
        if let Some(reason) = self.config.cancel.reason() {
            self.fill(job, Err(JobError::Cancelled(reason)));
            emit(ExecEvent::Cancelled { job, reason });
            return true;
        }
        let item = self.cells[job]
            .lock()
            .expect("item cell poisoned")
            .take()
            .expect("each job claimed exactly once");
        emit(ExecEvent::Started { job, worker });
        let t0 = Instant::now();
        if let Some(state) = self.phases.get(job) {
            // Publish the start time before entering Running, so the
            // watchdog never sees a Running job without a start time.
            *state.started.lock().expect("phase start poisoned") = Some(t0);
            state.phase.store(PHASE_RUNNING, Ordering::Release);
        }
        let ctx = JobCtx {
            job,
            seed: seed_for(self.config.seed, job as u64),
            cancel: &self.config.cancel,
            phase: self.phases.get(job).map(|s| &s.phase),
        };
        match catch_unwind(AssertUnwindSafe(|| (self.run)(&ctx, item))) {
            Ok(JobOutput {
                value,
                cost,
                faults,
            }) => {
                if self.finish_phase(job) {
                    // The watchdog expired this job while it ran: its
                    // result is forfeit, whatever the closure returned
                    // and however it observed cancellation. The CAS in
                    // finish_phase is the single arbiter, so there is
                    // no expiry/slot-write race to lose.
                    let limit = self.config.deadline.expect("expired implies a deadline");
                    self.fill(job, Err(JobError::Deadline { limit }));
                    emit(ExecEvent::Deadlined {
                        job,
                        worker,
                        wall: t0.elapsed(),
                        limit,
                    });
                } else {
                    self.charge(cost);
                    self.fill(job, Ok(value));
                    emit(ExecEvent::Finished {
                        job,
                        worker,
                        wall: t0.elapsed(),
                        cost,
                        faults,
                    });
                }
            }
            Err(payload) => {
                // A panic outranks a deadline expiry: the panic message
                // says *why* the job died, a deadline only that it was
                // slow. finish_phase still runs to settle the CAS.
                self.finish_phase(job);
                let message = panic_message(payload.as_ref());
                self.fill(job, Err(JobError::Panicked(message.clone())));
                emit(ExecEvent::Panicked {
                    job,
                    worker,
                    wall: t0.elapsed(),
                    message,
                });
            }
        }
        true
    }

    fn fill(&self, job: usize, result: Result<R, JobError>) {
        *self.slots[job].lock().expect("result slot poisoned") = Some(result);
        self.filled.fetch_add(1, Ordering::AcqRel);
    }

    /// Settles the worker/watchdog race for `job`: CAS `Running → Done`.
    /// Returns true if the watchdog won (the job is expired) — the
    /// caller must then record [`JobError::Deadline`], never `Ok`.
    fn finish_phase(&self, job: usize) -> bool {
        match self.phases.get(job) {
            None => false,
            Some(state) => state
                .phase
                .compare_exchange(
                    PHASE_RUNNING,
                    PHASE_DONE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err(),
        }
    }

    /// The deadline watchdog body: scan Running jobs on the monotonic
    /// clock, expire any that overran `limit`, exit once every result
    /// slot is written. Cancels cooperatively — it flips a phase flag;
    /// it never kills a thread mid-simulation.
    fn watchdog(&self, limit: Duration) {
        while self.filled.load(Ordering::Acquire) < self.slots.len() {
            for state in &self.phases {
                if state.phase.load(Ordering::Acquire) == PHASE_RUNNING {
                    let started = *state.started.lock().expect("phase start poisoned");
                    if started.is_some_and(|t0| t0.elapsed() > limit) {
                        // Worker may have CASed to Done meanwhile —
                        // then this fails and the result is kept.
                        let _ = state.phase.compare_exchange(
                            PHASE_RUNNING,
                            PHASE_EXPIRED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                    }
                }
            }
            std::thread::sleep(WATCHDOG_TICK);
        }
    }

    /// Charges `cost` against the shared budget; the job that crosses the
    /// line cancels the batch for everyone behind it.
    fn charge(&self, cost: u64) {
        let Some(max) = self.config.cost_budget.max_cost else {
            return;
        };
        let spent = self.spent.fetch_add(cost, Ordering::AcqRel) + cost;
        if spent > max {
            self.config.cancel.trigger(CANCEL_COST);
        }
    }

    /// Trips the wall-budget cancellation once the batch overruns.
    fn check_wall(&self) {
        if let Some(limit) = self.config.wall_budget {
            if self.started_at.elapsed() > limit {
                self.config.cancel.trigger(CANCEL_WALL);
            }
        }
    }
}

/// Renders a caught panic payload (same policy as the experiment layer:
/// `&str` and `String` pass through, anything else is described).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(jobs: usize, n: u64) -> ExecReport<u64> {
        execute(
            ExecConfig::with_jobs(jobs),
            (0..n).collect(),
            |_ctx, v| JobOutput::plain(v * v),
            |_| {},
        )
    }

    #[test]
    fn results_are_in_submission_order_for_any_worker_count() {
        for jobs in [1, 2, 3, 8, 64] {
            let report = squares(jobs, 50);
            assert_eq!(report.stats.jobs, 50);
            assert!(report.all_ok());
            for (i, r) in report.results.iter().enumerate() {
                assert_eq!(*r.as_ref().unwrap(), (i * i) as u64, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let serial: Vec<_> = squares(1, 40).results;
        let parallel: Vec<_> = squares(4, 40).results;
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = squares(4, 0);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.finished, 0);
        assert_eq!(report.stats.workers, 1);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(ExecConfig::with_jobs(8).resolved_workers(3), 3);
        assert_eq!(ExecConfig::with_jobs(2).resolved_workers(100), 2);
        assert_eq!(ExecConfig::serial().resolved_workers(100), 1);
        let auto = ExecConfig::auto().resolved_workers(1000);
        assert!(auto >= 1);
        assert_eq!(ExecConfig::with_jobs(8).resolved_workers(0), 1);
    }

    #[test]
    fn panicking_job_is_isolated_and_reported() {
        let report = execute(
            ExecConfig::with_jobs(4),
            (0u64..16).collect(),
            |_ctx, v| {
                if v == 5 {
                    panic!("boom at {v}");
                }
                JobOutput::plain(v)
            },
            |_| {},
        );
        assert_eq!(report.stats.panicked, 1);
        assert_eq!(report.stats.finished, 15);
        match &report.results[5] {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("boom at 5"), "{msg}"),
            other => panic!("expected panic error, got {other:?}"),
        }
        assert!(report.results[4].is_ok() && report.results[6].is_ok());
    }

    #[test]
    fn cost_budget_cancels_the_tail_serially() {
        // Serial pool: deterministic — each job costs 10, budget 25, so
        // jobs 0..3 run (the third crosses the line) and the rest cancel.
        let config = ExecConfig {
            jobs: 1,
            cost_budget: CostBudget::units(25),
            ..ExecConfig::default()
        };
        let report = execute(
            config,
            (0u64..8).collect(),
            |_ctx, v| JobOutput {
                value: v,
                cost: 10,
                faults: 0,
            },
            |_| {},
        );
        assert_eq!(report.stats.finished, 3);
        assert_eq!(report.stats.cancelled, 5);
        assert_eq!(report.stats.cost_spent, 30);
        for r in &report.results[3..] {
            assert_eq!(*r, Err(JobError::Cancelled(CancelReason::CostBudget)));
        }
    }

    #[test]
    fn user_cancel_from_observer_stops_the_tail() {
        let cancel = CancelToken::new();
        let config = ExecConfig {
            jobs: 1,
            cancel: cancel.clone(),
            ..ExecConfig::default()
        };
        let report = execute(
            config,
            (0u64..10).collect(),
            |ctx, v| {
                assert!(!ctx.cancelled() || v > 2);
                JobOutput::plain(v)
            },
            |ev| {
                if matches!(ev, ExecEvent::Finished { job: 2, .. }) {
                    cancel.cancel();
                }
            },
        );
        assert_eq!(report.stats.finished, 3);
        assert_eq!(report.stats.cancelled, 7);
        assert_eq!(
            report.results[9],
            Err(JobError::Cancelled(CancelReason::User))
        );
    }

    #[test]
    fn wall_budget_trips_slow_batches() {
        let config = ExecConfig {
            jobs: 2,
            wall_budget: Some(Duration::from_millis(30)),
            ..ExecConfig::default()
        };
        let report = execute(
            config,
            (0u64..64).collect(),
            |_ctx, v| {
                std::thread::sleep(Duration::from_millis(5));
                JobOutput::plain(v)
            },
            |_| {},
        );
        assert!(
            report.stats.cancelled > 0,
            "64 jobs x 5ms on 2 workers must overrun a 30ms wall budget: {:?}",
            report.stats
        );
        // Every slot is still filled, split between finished and cancelled.
        assert_eq!(
            report.stats.finished + report.stats.cancelled,
            report.stats.jobs
        );
    }

    #[test]
    fn events_cover_every_job_and_stats_fold_them() {
        let mut seen_started = [false; 12];
        let mut seen_done = [false; 12];
        let report = execute(
            ExecConfig::with_jobs(3),
            (0u64..12).collect(),
            |_ctx, v| JobOutput {
                value: v,
                cost: 2,
                faults: 1,
            },
            |ev| match *ev {
                ExecEvent::Started { job, .. } => seen_started[job] = true,
                ExecEvent::Finished { job, .. } => seen_done[job] = true,
                _ => {}
            },
        );
        assert!(seen_started.iter().all(|&b| b));
        assert!(seen_done.iter().all(|&b| b));
        assert_eq!(report.stats.cost_spent, 24);
        assert_eq!(report.stats.faults_injected, 12);
        assert!(report.stats.busy <= report.stats.wall * 3 + Duration::from_millis(1));
    }

    #[test]
    fn seed_stream_is_pure_and_spread() {
        assert_eq!(seed_for(1995, 0), seed_for(1995, 0));
        assert_ne!(seed_for(1995, 0), seed_for(1995, 1));
        assert_ne!(seed_for(1995, 0), seed_for(1996, 0));
        assert_ne!(seed_for(1995, 0), 1995);
        // Jobs observe exactly this stream.
        let report = execute(
            ExecConfig {
                jobs: 4,
                seed: 7,
                ..ExecConfig::default()
            },
            (0u64..8).collect(),
            |ctx, _| JobOutput::plain(ctx.seed),
            |_| {},
        );
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), seed_for(7, i as u64));
        }
    }

    #[test]
    fn cancel_reason_first_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.trigger(CANCEL_COST);
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::CostBudget));
    }

    #[test]
    fn deadline_forfeits_the_result_even_when_the_closure_returns_ok() {
        // The exact race the phase CAS exists for: the job *observes*
        // its expiry, then returns Ok anyway. The slot must still
        // record Deadline — the watchdog's verdict is already final.
        let limit = Duration::from_millis(10);
        let mut deadlined_events = 0;
        let report = execute(
            ExecConfig {
                jobs: 1,
                deadline: Some(limit),
                ..ExecConfig::default()
            },
            vec![()],
            |ctx, ()| {
                while !ctx.deadline_expired() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                assert!(ctx.cancelled(), "own expiry must read as cancelled");
                JobOutput::plain("raced to ok")
            },
            |ev| {
                if matches!(ev, ExecEvent::Deadlined { .. }) {
                    deadlined_events += 1;
                }
            },
        );
        assert_eq!(report.results[0], Err(JobError::Deadline { limit }));
        assert_eq!(report.stats.deadlined, 1);
        assert_eq!(report.stats.finished, 0);
        assert_eq!(deadlined_events, 1);
    }

    #[test]
    fn jobs_within_deadline_are_untouched() {
        let report = execute(
            ExecConfig {
                jobs: 2,
                deadline: Some(Duration::from_secs(60)),
                ..ExecConfig::default()
            },
            (0u64..8).collect(),
            |_ctx, v| JobOutput::plain(v * 3),
            |_| {},
        );
        assert!(report.all_ok());
        assert_eq!(report.stats.deadlined, 0);
        assert_eq!(*report.results[5].as_ref().unwrap(), 15);
    }

    #[test]
    fn deadlined_job_panicking_still_reports_the_panic() {
        // A panic carries more diagnosis than "slow"; it wins.
        let report = execute(
            ExecConfig {
                jobs: 1,
                deadline: Some(Duration::from_millis(5)),
                ..ExecConfig::default()
            },
            vec![()],
            |ctx, ()| -> JobOutput<()> {
                while !ctx.deadline_expired() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                panic!("died late");
            },
            |_| {},
        );
        match &report.results[0] {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("died late"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn backoff_schedule_is_pure_capped_and_bounded() {
        let b = Backoff::exponential(Duration::from_millis(10), Duration::from_millis(80));
        assert_eq!(Backoff::NONE.delay(7, 3), Duration::ZERO);
        assert_eq!(b.delay(7, 0), Duration::ZERO);
        // Pure: same inputs, same delay; different retries decorrelate.
        assert_eq!(b.delay(7, 1), b.delay(7, 1));
        assert_ne!(b.delay(7, 1), b.delay(8, 1));
        // Each delay lies in [ceil/2, ceil] for ceil = min(cap, base<<k).
        for (retry, ceil_ms) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80), (5, 80), (60, 80)] {
            let d = b.delay(1995, retry);
            let ceil = Duration::from_millis(ceil_ms);
            assert!(
                d >= ceil / 2 && d <= ceil,
                "retry {retry}: {d:?} vs {ceil:?}"
            );
        }
        // Saturation safety: a huge retry index must not overflow.
        let wide = Backoff::exponential(Duration::from_secs(1), Duration::from_secs(30));
        assert!(wide.delay(3, u32::MAX) <= Duration::from_secs(30));
    }
}
