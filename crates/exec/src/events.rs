//! Progress and metrics events emitted by the executor.
//!
//! Every state transition of every job produces one [`ExecEvent`], in a
//! single serialized stream observed on the *submitting* thread (the
//! observer closure is `FnMut`, never called concurrently). The events
//! double as the executor's metrics feed: per-job wall time, cost
//! (simulator events) and injected-fault counts ride on
//! [`ExecEvent::Finished`], and [`ExecStats`] is the fold of the stream.

use std::time::Duration;

use crate::{CancelReason, JobError};

/// One job state transition, as seen by the observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecEvent {
    /// The job entered the queue (emitted for every job, in submission
    /// order, before any job starts).
    Queued {
        /// Submission index of the job.
        job: usize,
    },
    /// A worker picked the job up.
    Started {
        /// Submission index of the job.
        job: usize,
        /// Index of the worker running it (`0..workers`).
        worker: usize,
    },
    /// The job's closure returned normally.
    Finished {
        /// Submission index of the job.
        job: usize,
        /// Worker that ran it.
        worker: usize,
        /// Wall-clock time the job's closure took.
        wall: Duration,
        /// Cost units the job reported (simulator events, by convention).
        cost: u64,
        /// Faults the job reported as injected during its run.
        faults: u64,
    },
    /// The job's closure panicked; the panic was caught at the job
    /// boundary and the worker kept going.
    Panicked {
        /// Submission index of the job.
        job: usize,
        /// Worker that ran it.
        worker: usize,
        /// Wall-clock time until the panic.
        wall: Duration,
        /// Rendered panic payload.
        message: String,
    },
    /// The job ran past its per-job wall-clock deadline: the watchdog
    /// cancelled it while it was still running, and when its closure
    /// eventually returned the result was discarded as
    /// [`JobError::Deadline`](crate::JobError::Deadline).
    Deadlined {
        /// Submission index of the job.
        job: usize,
        /// Worker that ran it.
        worker: usize,
        /// Wall-clock time the job actually took before returning.
        wall: Duration,
        /// The deadline it overran.
        limit: Duration,
    },
    /// The job was dropped without running because the pool was
    /// cancelled before a worker reached it.
    Cancelled {
        /// Submission index of the job.
        job: usize,
        /// Why the pool was cancelled.
        reason: CancelReason,
    },
}

impl ExecEvent {
    /// The submission index of the job this event concerns.
    pub fn job(&self) -> usize {
        match *self {
            ExecEvent::Queued { job }
            | ExecEvent::Started { job, .. }
            | ExecEvent::Finished { job, .. }
            | ExecEvent::Panicked { job, .. }
            | ExecEvent::Deadlined { job, .. }
            | ExecEvent::Cancelled { job, .. } => job,
        }
    }
}

/// Aggregate statistics of one [`crate::execute`] call — the fold of its
/// event stream plus pool-level facts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Workers the pool actually ran (`min(requested, jobs)`, at least 1).
    pub workers: usize,
    /// Jobs whose closure returned normally.
    pub finished: usize,
    /// Jobs whose closure panicked.
    pub panicked: usize,
    /// Jobs cancelled mid-run by the per-job deadline watchdog.
    pub deadlined: usize,
    /// Jobs dropped by cancellation before starting.
    pub cancelled: usize,
    /// Wall-clock time of the whole batch (queue to last completion).
    pub wall: Duration,
    /// Sum of per-job wall times — the "busy" time; `busy / wall`
    /// approximates realized parallelism.
    pub busy: Duration,
    /// Total cost units charged by finished jobs.
    pub cost_spent: u64,
    /// Total faults reported injected by finished jobs.
    pub faults_injected: u64,
}

impl ExecStats {
    /// Folds one event into the totals (pool-level fields are set by the
    /// executor, not here).
    pub(crate) fn absorb(&mut self, ev: &ExecEvent) {
        match ev {
            ExecEvent::Queued { .. } | ExecEvent::Started { .. } => {}
            ExecEvent::Finished {
                wall, cost, faults, ..
            } => {
                self.finished += 1;
                self.busy += *wall;
                self.cost_spent += cost;
                self.faults_injected += faults;
            }
            ExecEvent::Panicked { wall, .. } => {
                self.panicked += 1;
                self.busy += *wall;
            }
            ExecEvent::Deadlined { wall, .. } => {
                self.deadlined += 1;
                self.busy += *wall;
            }
            ExecEvent::Cancelled { .. } => self.cancelled += 1,
        }
    }

    /// Realized speedup proxy: busy time over wall time (1.0 on a serial
    /// pool, approaching the worker count under perfect scaling).
    pub fn parallelism(&self) -> f64 {
        if self.wall.is_zero() {
            return 1.0;
        }
        self.busy.as_secs_f64() / self.wall.as_secs_f64()
    }
}

/// The outcome of one batch: per-job results in **submission order** plus
/// the aggregate stats.
#[derive(Debug)]
pub struct ExecReport<R> {
    /// One slot per submitted job, index-aligned with the input vector.
    pub results: Vec<Result<R, JobError>>,
    /// Aggregate counters and timings.
    pub stats: ExecStats,
}

impl<R> ExecReport<R> {
    /// True if every job finished normally.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }
}
