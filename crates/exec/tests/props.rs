//! Property tests for the executor's determinism contract: results come
//! back in submission order with the same values for *any* worker count
//! and *any* completion order, and per-job isolation holds under
//! arbitrary panic patterns.

use std::time::Duration;

use spasm_exec::{execute, seed_for, ExecConfig, ExecEvent, JobError, JobOutput};
use spasm_testkit::{check, gens, prop_assert, prop_assert_eq};

#[test]
fn parallel_results_match_serial_for_any_worker_count() {
    check(
        "exec_order_preserving",
        &gens::tuple2(
            gens::usizes(1..9),
            gens::vecs(gens::u64s(0..1_000_000), 0..40),
        ),
        |(workers, items)| {
            let run = |jobs: usize| {
                execute(
                    ExecConfig::with_jobs(jobs),
                    items.clone(),
                    |ctx, v| JobOutput::plain(v.wrapping_mul(31).wrapping_add(ctx.job as u64)),
                    |_| {},
                )
                .results
            };
            prop_assert_eq!(run(1), run(*workers));
            Ok(())
        },
    );
}

#[test]
fn submission_order_survives_adversarial_completion_order() {
    // Each job sleeps according to a random priority permutation, so
    // completion order is scrambled relative to submission order; the
    // results vector must not care.
    check(
        "exec_scrambled_completion",
        &gens::shuffled(1..14),
        |perm| {
            let n = perm.len();
            let report = execute(
                ExecConfig::with_jobs(n),
                perm.clone(),
                |ctx, rank| {
                    // Later submission ranks may finish first.
                    std::thread::sleep(Duration::from_micros(200 * rank as u64));
                    JobOutput::plain((ctx.job, rank))
                },
                |_| {},
            );
            for (i, r) in report.results.iter().enumerate() {
                let (job, rank) = *r.as_ref().unwrap();
                prop_assert_eq!(job, i);
                prop_assert_eq!(rank, perm[i]);
            }
            Ok(())
        },
    );
}

#[test]
fn panic_pattern_maps_exactly_onto_results() {
    check(
        "exec_panic_isolation",
        &gens::tuple2(gens::usizes(1..6), gens::vecs(gens::bools(), 1..24)),
        |(workers, pattern)| {
            let report = execute(
                ExecConfig::with_jobs(*workers),
                pattern.clone(),
                |ctx, explode| {
                    if explode {
                        panic!("job {} exploded", ctx.job);
                    }
                    JobOutput::plain(ctx.job)
                },
                |_| {},
            );
            for (i, (r, &explode)) in report.results.iter().zip(pattern).enumerate() {
                match r {
                    Ok(job) => prop_assert!(!explode && *job == i),
                    Err(JobError::Panicked(msg)) => {
                        prop_assert!(explode, "job {i} panicked unasked");
                        prop_assert!(msg.contains(&format!("job {i} exploded")), "{msg}");
                    }
                    Err(other) => return Err(format!("job {i}: unexpected {other}")),
                }
            }
            prop_assert_eq!(
                report.stats.panicked,
                pattern.iter().filter(|&&b| b).count()
            );
            Ok(())
        },
    );
}

#[test]
fn event_stream_is_complete_and_consistent() {
    check(
        "exec_event_stream",
        &gens::tuple2(gens::usizes(1..6), gens::usizes(0..30)),
        |(workers, n)| {
            let mut queued = 0usize;
            let mut started = vec![false; *n];
            let mut finished = vec![false; *n];
            let report = execute(
                ExecConfig::with_jobs(*workers),
                (0..*n).collect(),
                |_ctx, v| JobOutput {
                    value: v,
                    cost: 3,
                    faults: 2,
                },
                |ev| match *ev {
                    ExecEvent::Queued { .. } => queued += 1,
                    ExecEvent::Started { job, worker } => {
                        assert!(worker < *workers);
                        started[job] = true;
                    }
                    ExecEvent::Finished { job, .. } => {
                        assert!(started[job], "finish before start");
                        finished[job] = true;
                    }
                    ref other => panic!("unexpected event {other:?}"),
                },
            );
            prop_assert_eq!(queued, *n);
            prop_assert!(finished.iter().all(|&b| b));
            prop_assert_eq!(report.stats.cost_spent, 3 * *n as u64);
            prop_assert_eq!(report.stats.faults_injected, 2 * *n as u64);
            prop_assert_eq!(report.stats.finished, *n);
            Ok(())
        },
    );
}

#[test]
fn job_seeds_are_schedule_independent() {
    check(
        "exec_seed_purity",
        &gens::tuple2(gens::u64s(0..u64::MAX), gens::usizes(1..6)),
        |(base, workers)| {
            let seeds = |jobs: usize| -> Vec<u64> {
                execute(
                    ExecConfig {
                        jobs,
                        seed: *base,
                        ..ExecConfig::default()
                    },
                    vec![(); 12],
                    |ctx, ()| JobOutput::plain(ctx.seed),
                    |_| {},
                )
                .results
                .into_iter()
                .map(Result::unwrap)
                .collect()
            };
            let expect: Vec<u64> = (0..12).map(|i| seed_for(*base, i)).collect();
            prop_assert_eq!(seeds(1), expect.clone());
            prop_assert_eq!(seeds(*workers), expect);
            Ok(())
        },
    );
}
