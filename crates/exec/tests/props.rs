//! Property tests for the executor's determinism contract: results come
//! back in submission order with the same values for *any* worker count
//! and *any* completion order, and per-job isolation holds under
//! arbitrary panic patterns.

use std::time::Duration;

use spasm_exec::{
    execute, seed_for, Backoff, CancelReason, CancelToken, CostBudget, ExecConfig, ExecEvent,
    JobError, JobOutput,
};
use spasm_testkit::{check, check_with, gens, prop_assert, prop_assert_eq, Config};

#[test]
fn parallel_results_match_serial_for_any_worker_count() {
    check(
        "exec_order_preserving",
        &gens::tuple2(
            gens::usizes(1..9),
            gens::vecs(gens::u64s(0..1_000_000), 0..40),
        ),
        |(workers, items)| {
            let run = |jobs: usize| {
                execute(
                    ExecConfig::with_jobs(jobs),
                    items.clone(),
                    |ctx, v| JobOutput::plain(v.wrapping_mul(31).wrapping_add(ctx.job as u64)),
                    |_| {},
                )
                .results
            };
            prop_assert_eq!(run(1), run(*workers));
            Ok(())
        },
    );
}

#[test]
fn submission_order_survives_adversarial_completion_order() {
    // Each job sleeps according to a random priority permutation, so
    // completion order is scrambled relative to submission order; the
    // results vector must not care.
    check(
        "exec_scrambled_completion",
        &gens::shuffled(1..14),
        |perm| {
            let n = perm.len();
            let report = execute(
                ExecConfig::with_jobs(n),
                perm.clone(),
                |ctx, rank| {
                    // Later submission ranks may finish first.
                    std::thread::sleep(Duration::from_micros(200 * rank as u64));
                    JobOutput::plain((ctx.job, rank))
                },
                |_| {},
            );
            for (i, r) in report.results.iter().enumerate() {
                let (job, rank) = *r.as_ref().unwrap();
                prop_assert_eq!(job, i);
                prop_assert_eq!(rank, perm[i]);
            }
            Ok(())
        },
    );
}

#[test]
fn panic_pattern_maps_exactly_onto_results() {
    check(
        "exec_panic_isolation",
        &gens::tuple2(gens::usizes(1..6), gens::vecs(gens::bools(), 1..24)),
        |(workers, pattern)| {
            let report = execute(
                ExecConfig::with_jobs(*workers),
                pattern.clone(),
                |ctx, explode| {
                    if explode {
                        panic!("job {} exploded", ctx.job);
                    }
                    JobOutput::plain(ctx.job)
                },
                |_| {},
            );
            for (i, (r, &explode)) in report.results.iter().zip(pattern).enumerate() {
                match r {
                    Ok(job) => prop_assert!(!explode && *job == i),
                    Err(JobError::Panicked(msg)) => {
                        prop_assert!(explode, "job {i} panicked unasked");
                        prop_assert!(msg.contains(&format!("job {i} exploded")), "{msg}");
                    }
                    Err(other) => return Err(format!("job {i}: unexpected {other}")),
                }
            }
            prop_assert_eq!(
                report.stats.panicked,
                pattern.iter().filter(|&&b| b).count()
            );
            Ok(())
        },
    );
}

#[test]
fn event_stream_is_complete_and_consistent() {
    check(
        "exec_event_stream",
        &gens::tuple2(gens::usizes(1..6), gens::usizes(0..30)),
        |(workers, n)| {
            let mut queued = 0usize;
            let mut started = vec![false; *n];
            let mut finished = vec![false; *n];
            let report = execute(
                ExecConfig::with_jobs(*workers),
                (0..*n).collect(),
                |_ctx, v| JobOutput {
                    value: v,
                    cost: 3,
                    faults: 2,
                },
                |ev| match *ev {
                    ExecEvent::Queued { .. } => queued += 1,
                    ExecEvent::Started { job, worker } => {
                        assert!(worker < *workers);
                        started[job] = true;
                    }
                    ExecEvent::Finished { job, .. } => {
                        assert!(started[job], "finish before start");
                        finished[job] = true;
                    }
                    ref other => panic!("unexpected event {other:?}"),
                },
            );
            prop_assert_eq!(queued, *n);
            prop_assert!(finished.iter().all(|&b| b));
            prop_assert_eq!(report.stats.cost_spent, 3 * *n as u64);
            prop_assert_eq!(report.stats.faults_injected, 2 * *n as u64);
            prop_assert_eq!(report.stats.finished, *n);
            Ok(())
        },
    );
}

#[test]
fn budget_exhausted_exactly_at_job_boundary() {
    // The budget cancels only when spent strictly exceeds the cap, so a
    // budget of exactly k jobs' cost lets job k+1 start (it is the one
    // whose charge crosses the line) and cancels everything after it:
    // serially, exactly min(n, k+1) jobs finish, the rest are typed
    // `Cancelled(CostBudget)`, in submission order.
    check(
        "exec_budget_boundary",
        &gens::tuple3(gens::u64s(1..6), gens::usizes(1..20), gens::usizes(0..24)),
        |&(cost, n, k)| {
            let report = execute(
                ExecConfig {
                    jobs: 1,
                    cost_budget: CostBudget::units(cost * k as u64),
                    ..ExecConfig::default()
                },
                (0..n).collect::<Vec<usize>>(),
                |_ctx, v| JobOutput {
                    value: v,
                    cost,
                    faults: 0,
                },
                |_| {},
            );
            let expect = n.min(k + 1);
            prop_assert_eq!(report.stats.finished, expect);
            prop_assert_eq!(report.stats.cancelled, n - expect);
            for (i, r) in report.results.iter().enumerate() {
                if i < expect {
                    prop_assert_eq!(r.as_ref().unwrap(), &i);
                } else {
                    prop_assert!(
                        matches!(r, Err(JobError::Cancelled(CancelReason::CostBudget))),
                        "job {i}: {r:?}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn parallel_budget_still_runs_at_least_the_boundary_jobs() {
    // In parallel the set of finished jobs is schedule-dependent (jobs
    // already running when the budget trips complete and are kept), but
    // the trip itself needs more than k jobs' cost charged — so at
    // least min(n, k+1) finish, and every slot is either a kept result
    // or a typed cost-budget cancellation.
    check(
        "exec_budget_parallel",
        &gens::tuple3(gens::usizes(2..6), gens::usizes(1..20), gens::usizes(0..10)),
        |&(workers, n, k)| {
            let report = execute(
                ExecConfig {
                    jobs: workers,
                    cost_budget: CostBudget::units(k as u64),
                    ..ExecConfig::default()
                },
                (0..n).collect::<Vec<usize>>(),
                |_ctx, v| JobOutput {
                    value: v,
                    cost: 1,
                    faults: 0,
                },
                |_| {},
            );
            prop_assert!(
                report.stats.finished >= n.min(k + 1),
                "finished {} < min({n}, {})",
                report.stats.finished,
                k + 1
            );
            for (i, r) in report.results.iter().enumerate() {
                match r {
                    Ok(v) => prop_assert_eq!(v, &i),
                    Err(JobError::Cancelled(CancelReason::CostBudget)) => {}
                    other => return Err(format!("job {i}: unexpected {other:?}")),
                }
            }
            Ok(())
        },
    );
}

#[test]
fn cancel_raced_with_the_last_job_changes_nothing_serially() {
    // A cancellation issued from inside the final job arrives after
    // every other job already completed and while the canceller itself
    // is running — running jobs always complete and keep their results,
    // so the batch is indistinguishable from an uncancelled one except
    // for the latched reason.
    check("exec_cancel_last_job", &gens::usizes(1..16), |&n| {
        let token = CancelToken::new();
        let inner = token.clone();
        let report = execute(
            ExecConfig {
                jobs: 1,
                cancel: token.clone(),
                ..ExecConfig::default()
            },
            (0..n).collect::<Vec<usize>>(),
            move |ctx, v| {
                if ctx.job == n - 1 {
                    inner.cancel();
                }
                JobOutput::plain(v)
            },
            |_| {},
        );
        prop_assert_eq!(report.stats.finished, n);
        prop_assert_eq!(report.stats.cancelled, 0);
        prop_assert_eq!(token.reason(), Some(CancelReason::User));
        for (i, r) in report.results.iter().enumerate() {
            prop_assert_eq!(r.as_ref().unwrap(), &i);
        }
        Ok(())
    });
}

#[test]
fn mid_batch_cancel_keeps_the_canceller_and_types_the_rest() {
    // Cancel issued from an arbitrary job in a parallel batch: the
    // canceller always keeps its own result (it was running), and every
    // other slot is either a kept result or `Cancelled(User)` — never a
    // panic, never a missing slot.
    check(
        "exec_cancel_races",
        &gens::tuple3(gens::usizes(2..6), gens::usizes(1..16), gens::usizes(0..16)),
        |&(workers, n, who)| {
            let who = who % n;
            let token = CancelToken::new();
            let inner = token.clone();
            let report = execute(
                ExecConfig {
                    jobs: workers,
                    cancel: token.clone(),
                    ..ExecConfig::default()
                },
                (0..n).collect::<Vec<usize>>(),
                move |ctx, v| {
                    if ctx.job == who {
                        inner.cancel();
                    }
                    JobOutput::plain(v)
                },
                |_| {},
            );
            prop_assert_eq!(report.stats.finished + report.stats.cancelled, n);
            prop_assert_eq!(report.results[who].as_ref().unwrap(), &who);
            for (i, r) in report.results.iter().enumerate() {
                match r {
                    Ok(v) => prop_assert_eq!(v, &i),
                    Err(JobError::Cancelled(CancelReason::User)) => {}
                    other => return Err(format!("job {i}: unexpected {other:?}")),
                }
            }
            Ok(())
        },
    );
}

#[test]
fn first_cancellation_reason_wins_over_a_simultaneous_budget_trip() {
    // A user cancel from inside job 0 lands before that job's cost is
    // charged against an already-exhausted budget: the latched reason —
    // and every cancelled job's error — must say `User`, not
    // `CostBudget`.
    check(
        "exec_cancel_reason_race",
        &gens::tuple2(gens::u64s(1..6), gens::usizes(2..12)),
        |&(cost, n)| {
            let token = CancelToken::new();
            let inner = token.clone();
            let report = execute(
                ExecConfig {
                    jobs: 1,
                    cancel: token.clone(),
                    cost_budget: CostBudget::units(0),
                    ..ExecConfig::default()
                },
                (0..n).collect::<Vec<usize>>(),
                move |ctx, v| {
                    if ctx.job == 0 {
                        inner.cancel();
                    }
                    JobOutput {
                        value: v,
                        cost,
                        faults: 0,
                    }
                },
                |_| {},
            );
            prop_assert_eq!(token.reason(), Some(CancelReason::User));
            prop_assert_eq!(report.stats.finished, 1);
            for r in &report.results[1..] {
                prop_assert!(
                    matches!(r, Err(JobError::Cancelled(CancelReason::User))),
                    "{r:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn deadline_expiry_observed_by_a_job_never_races_to_ok() {
    // Regression for the cancel-path race: a job that *sees* its own
    // deadline expire (via `ctx.deadline_expired()`) and then returns a
    // value anyway must land in its slot as `Deadline`, never `Ok` —
    // the watchdog's verdict is latched by the phase CAS before the
    // job's poll can observe it. Jobs sleep per a shuffled permutation
    // so completion order is adversarial relative to submission order,
    // and some jobs straddle the deadline while others beat it.
    check_with(
        Config {
            cases: 12,
            ..Config::default()
        },
        "exec_deadline_race",
        &gens::tuple2(gens::usizes(1..4), gens::shuffled(0..8)),
        |(workers, perm)| {
            let limit = Duration::from_millis(4);
            let n = perm.len();
            let mut deadlined_events = vec![false; n];
            let report = execute(
                ExecConfig {
                    jobs: *workers,
                    deadline: Some(limit),
                    ..ExecConfig::default()
                },
                perm.clone(),
                |ctx, rank| {
                    // ~1ms of polled sleep per rank unit: rank 0 returns
                    // immediately, high ranks overrun the 4ms limit.
                    let mut observed = false;
                    for _ in 0..rank {
                        std::thread::sleep(Duration::from_millis(1));
                        observed |= ctx.deadline_expired();
                    }
                    JobOutput::plain((ctx.job, observed))
                },
                |ev| {
                    if let ExecEvent::Deadlined { job, limit: l, .. } = ev {
                        assert_eq!(*l, limit);
                        deadlined_events[*job] = true;
                    }
                },
            );
            let mut deadlined = 0usize;
            for (i, r) in report.results.iter().enumerate() {
                match r {
                    Ok((job, observed)) => {
                        prop_assert_eq!(*job, i);
                        prop_assert!(!observed, "job {} observed expiry yet won the slot", i);
                        prop_assert!(!deadlined_events[i], "job {} Ok despite Deadlined event", i);
                    }
                    Err(JobError::Deadline { limit: l }) => {
                        prop_assert_eq!(*l, limit);
                        prop_assert!(deadlined_events[i], "job {} Deadline without event", i);
                        deadlined += 1;
                    }
                    other => return Err(format!("job {i}: unexpected {other:?}")),
                }
            }
            prop_assert_eq!(report.stats.deadlined, deadlined);
            prop_assert_eq!(report.stats.finished + report.stats.deadlined, n);
            Ok(())
        },
    );
}

#[test]
fn job_seeds_are_schedule_independent() {
    check(
        "exec_seed_purity",
        &gens::tuple2(gens::u64s(0..u64::MAX), gens::usizes(1..6)),
        |(base, workers)| {
            let seeds = |jobs: usize| -> Vec<u64> {
                execute(
                    ExecConfig {
                        jobs,
                        seed: *base,
                        ..ExecConfig::default()
                    },
                    vec![(); 12],
                    |ctx, ()| JobOutput::plain(ctx.seed),
                    |_| {},
                )
                .results
                .into_iter()
                .map(Result::unwrap)
                .collect()
            };
            let expect: Vec<u64> = (0..12).map(|i| seed_for(*base, i)).collect();
            prop_assert_eq!(seeds(1), expect.clone());
            prop_assert_eq!(seeds(*workers), expect);
            Ok(())
        },
    );
}

#[test]
fn backoff_schedule_is_jittered_capped_exponential_and_pure() {
    // The documented contract of Backoff::delay: for retry k (1-based)
    // the delay lies in [ceil/2, ceil] with ceil = min(cap, base << (k-1))
    // (cap never undercutting base), the ceiling grows monotonically
    // until it saturates at the cap, and the whole schedule is a pure
    // function of (base, cap, seed, k) — byte-identical on every call.
    check(
        "exec_backoff_schedule",
        &gens::tuple3(
            gens::u64s(1..2_000_000_000),
            gens::u64s(0..2_000_000_000),
            gens::u64s(0..u64::MAX),
        ),
        |&(base_ns, cap_ns, seed)| {
            let b =
                Backoff::exponential(Duration::from_nanos(base_ns), Duration::from_nanos(cap_ns));
            prop_assert_eq!(b.delay(seed, 0), Duration::ZERO);
            let eff_cap = cap_ns.max(base_ns);
            let mut prev_ceiling = 0u64;
            // Past retry 64 the shift saturates; 70 covers both regimes.
            for retry in 1..=70u32 {
                let shift = (retry - 1).min(63);
                let ceiling = base_ns.saturating_mul(1u64 << shift).min(eff_cap);
                prop_assert!(
                    ceiling >= prev_ceiling && ceiling <= eff_cap,
                    "retry {}: ceiling {} not monotone-capped (prev {}, cap {})",
                    retry,
                    ceiling,
                    prev_ceiling,
                    eff_cap
                );
                prev_ceiling = ceiling;
                let d = u64::try_from(b.delay(seed, retry).as_nanos()).unwrap();
                prop_assert!(
                    d >= ceiling / 2 && d <= ceiling,
                    "retry {}: delay {} outside [{}, {}]",
                    retry,
                    d,
                    ceiling / 2,
                    ceiling
                );
                prop_assert_eq!(b.delay(seed, retry), b.delay(seed, retry));
                // Jitter is per-seed: NONE stays identically zero.
                prop_assert_eq!(Backoff::NONE.delay(seed, retry), Duration::ZERO);
            }
            Ok(())
        },
    );
}
