//! # spasm-testkit — a minimal deterministic property-testing harness
//!
//! A small in-tree replacement for the subset of `proptest` the
//! workspace uses: seeded random case generation, bounded value
//! shrinking, and failing-seed replay. Everything is deterministic —
//! by default a property's cases derive from a hash of its name, so a
//! given toolchain always runs the identical inputs, and a failure
//! prints the one seed needed to replay it:
//!
//! ```text
//! SPASM_PT_SEED=0x1f2e3d4c5b6a7988 cargo test -q failing_property
//! ```
//!
//! With `SPASM_PT_SEED` set, every property runs exactly one case — the
//! one generated from that seed — which is the case that failed.
//! `SPASM_PT_CASES` overrides the per-property case count.
//!
//! # Writing a property
//!
//! ```
//! use spasm_testkit::{check, gens, prop_assert, prop_assert_eq};
//!
//! #[allow(clippy::needless_doctest_main)]
//! fn main() {
//!     check(
//!         "reverse_is_involutive",
//!         &gens::vecs(gens::u64s(0..100), 0..20),
//!         |v| {
//!             let mut w = v.clone();
//!             w.reverse();
//!             w.reverse();
//!             prop_assert_eq!(&w, v);
//!             Ok(())
//!         },
//!     );
//! }
//! ```
//!
//! Properties return `Result<(), String>`; the [`prop_assert!`] /
//! [`prop_assert_eq!`] macros mirror `proptest`'s so ports are
//! mechanical. Panics inside a property are caught and treated as
//! failures, so plain `assert!` helpers also work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

pub use spasm_prng::{Rng, SplitMix64, StdRng};

/// The RNG handed to generators — the workspace's deterministic
/// xoshiro256** stream.
pub type TestRng = StdRng;

/// A generator: produces values of `T` from a seeded RNG and proposes
/// strictly "smaller" candidates when shrinking a failure.
///
/// Built from the combinators in [`gens`]; composite generators shrink
/// component-wise. [`Gen::map`] intentionally drops shrinking (the
/// inverse image of a mapped value is unknown), so keep normalization
/// that must survive shrinking — sorting, clamping with `%` — inside
/// the property instead.
pub struct Gen<T> {
    run: Rc<dyn Fn(&mut TestRng) -> T>,
    shrink: ShrinkFn<T>,
}

/// Shared shrinking function: proposes strictly smaller candidates.
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T> Gen<T> {
    /// Generates one value.
    pub fn generate(&self, rng: &mut TestRng) -> T {
        (self.run)(rng)
    }

    /// Proposes shrink candidates for a failing value (possibly empty).
    pub fn shrink_candidates(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

impl<T: 'static> Gen<T> {
    /// Creates a generator from explicit generate and shrink functions.
    pub fn new(
        run: impl Fn(&mut TestRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            run: Rc::new(run),
            shrink: Rc::new(shrink),
        }
    }

    /// Maps the generated value. The mapped generator does not shrink.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let run = self.run;
        Gen {
            run: Rc::new(move |rng| f((run)(rng))),
            shrink: Rc::new(|_| Vec::new()),
        }
    }
}

/// Generator combinators.
pub mod gens {
    use super::*;
    use std::ops::Range;

    macro_rules! int_gen {
        ($name:ident, $t:ty) => {
            /// A uniform integer in the half-open range; shrinks toward
            /// the range start.
            pub fn $name(range: Range<$t>) -> Gen<$t> {
                let (lo, hi) = (range.start, range.end);
                assert!(lo < hi, "empty generator range");
                Gen::new(
                    move |rng| rng.gen_range(lo..hi),
                    move |&v| {
                        let mut out = Vec::new();
                        if v > lo {
                            out.push(lo);
                            let mid = lo + (v - lo) / 2;
                            if mid != lo && mid != v {
                                out.push(mid);
                            }
                            out.push(v - 1);
                        }
                        out.dedup();
                        out
                    },
                )
            }
        };
    }

    int_gen!(u64s, u64);
    int_gen!(u32s, u32);
    int_gen!(usizes, usize);
    int_gen!(i64s, i64);

    /// A uniform boolean; `true` shrinks to `false`.
    pub fn bools() -> Gen<bool> {
        Gen::new(
            |rng| rng.gen_bool(),
            |&v| if v { vec![false] } else { Vec::new() },
        )
    }

    /// A uniform `f64` in the half-open range; shrinks toward the start.
    pub fn f64s(range: Range<f64>) -> Gen<f64> {
        let (lo, hi) = (range.start, range.end);
        assert!(lo < hi, "empty generator range");
        Gen::new(
            move |rng| rng.gen_range(lo..hi),
            move |&v| {
                let mid = lo + (v - lo) / 2.0;
                if mid != v && mid >= lo {
                    vec![lo, mid]
                } else {
                    Vec::new()
                }
            },
        )
    }

    /// A uniform pick from a fixed list; shrinks toward earlier entries.
    pub fn choice<T: Clone + PartialEq + 'static>(items: Vec<T>) -> Gen<T> {
        assert!(!items.is_empty(), "choice of nothing");
        let pick = items.clone();
        Gen::new(
            move |rng| pick[rng.gen_range(0..pick.len())].clone(),
            move |v| {
                let at = items.iter().position(|i| i == v).unwrap_or(0);
                items[..at].to_vec()
            },
        )
    }

    /// The constant generator.
    pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
        Gen::new(move |_| value.clone(), |_| Vec::new())
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `elem`. Shrinks by dropping the front/back half, dropping
    /// single elements (never below the minimum length), and shrinking
    /// individual elements in place.
    pub fn vecs<T: Clone + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
        let (min, max) = (len.start, len.end);
        assert!(min < max, "empty length range");
        let elem_for_shrink = elem.clone();
        Gen::new(
            move |rng| {
                let n = rng.gen_range(min..max);
                (0..n).map(|_| elem.generate(rng)).collect()
            },
            move |v: &Vec<T>| {
                let mut out: Vec<Vec<T>> = Vec::new();
                let n = v.len();
                // Halves first: fastest path to small cases.
                if n / 2 >= min && n / 2 < n {
                    out.push(v[..n / 2].to_vec());
                    out.push(v[n - n / 2..].to_vec());
                }
                // Single removals (bounded for long vectors).
                if n > min {
                    for i in 0..n.min(8) {
                        let mut w = v.clone();
                        w.remove(i * n / n.clamp(1, 8));
                        out.push(w);
                    }
                }
                // Element-wise shrinks on a bounded prefix.
                for i in 0..n.min(4) {
                    for cand in elem_for_shrink.shrink_candidates(&v[i]) {
                        let mut w = v.clone();
                        w[i] = cand;
                        out.push(w);
                    }
                }
                out
            },
        )
    }

    /// A uniform random permutation of `0..n` for `n` drawn from `len`
    /// (Fisher–Yates on the case's own stream). Shrinks toward the
    /// identity permutation — first wholesale, then by squashing single
    /// inversions — so a failing schedule-order property reports the
    /// least-scrambled order that still fails.
    pub fn shuffled(len: Range<usize>) -> Gen<Vec<usize>> {
        let (min, max) = (len.start, len.end);
        assert!(min < max, "empty length range");
        Gen::new(
            move |rng| {
                let n = rng.gen_range(min..max);
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, rng.gen_range(0..i + 1));
                }
                perm
            },
            |v: &Vec<usize>| {
                let identity: Vec<usize> = (0..v.len()).collect();
                if *v == identity {
                    return Vec::new();
                }
                let mut out = vec![identity];
                // Undo one out-of-place element at a time.
                for i in 0..v.len().min(8) {
                    if v[i] != i {
                        let mut w = v.clone();
                        let j = w.iter().position(|&x| x == i).unwrap();
                        w.swap(i, j);
                        out.push(w);
                    }
                }
                out
            },
        )
    }

    macro_rules! tuple_gen {
        ($name:ident, $($g:ident: $t:ident @ $idx:tt),+) => {
            /// A tuple of independent generators; shrinks one coordinate
            /// at a time.
            #[allow(clippy::too_many_arguments)]
            pub fn $name<$($t: Clone + 'static),+>(
                $($g: Gen<$t>),+
            ) -> Gen<($($t,)+)> {
                let run_gens = ($($g.clone(),)+);
                let shrink_gens = ($($g,)+);
                Gen::new(
                    move |rng| ($(run_gens.$idx.generate(rng),)+),
                    move |v| {
                        let mut out = Vec::new();
                        $(
                            for cand in shrink_gens.$idx.shrink_candidates(&v.$idx) {
                                let mut w = v.clone();
                                w.$idx = cand;
                                out.push(w);
                            }
                        )+
                        out
                    },
                )
            }
        };
    }

    tuple_gen!(tuple2, a: A @ 0, b: B @ 1);
    tuple_gen!(tuple3, a: A @ 0, b: B @ 1, c: C @ 2);
    tuple_gen!(tuple4, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3);
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases to run per property (`SPASM_PT_CASES` overrides).
    pub cases: u32,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrinks: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrinks: 512,
        }
    }
}

/// Checks a property over generated cases with the default [`Config`].
///
/// # Panics
///
/// Panics (failing the test) if any case fails, after shrinking to a
/// locally minimal counterexample; the message includes the case seed
/// for `SPASM_PT_SEED` replay.
pub fn check<T: Clone + Debug>(name: &str, gen: &Gen<T>, prop: impl Fn(&T) -> Result<(), String>) {
    check_with(Config::default(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
///
/// # Panics
///
/// See [`check`].
pub fn check_with<T: Clone + Debug>(
    config: Config,
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let replay = std::env::var("SPASM_PT_SEED")
        .ok()
        .map(|s| parse_seed(&s).unwrap_or_else(|| panic!("unparsable SPASM_PT_SEED: {s:?}")));
    let cases = match replay {
        Some(_) => 1,
        None => std::env::var("SPASM_PT_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases),
    };

    // Case seeds form a SplitMix64 stream hashed from the property name,
    // so every property sees its own deterministic inputs.
    let mut seed_stream = fnv1a(name.as_bytes());
    for case in 0..cases {
        let case_seed = match replay {
            Some(s) => s,
            None => spasm_prng::splitmix64(&mut seed_stream),
        };
        let value = gen.generate(&mut TestRng::seed_from_u64(case_seed));
        if let Err(msg) = run_case(&prop, &value) {
            let (minimal, minimal_msg, steps) =
                shrink_failure(gen, &prop, value, msg, config.max_shrinks);
            panic!(
                "property '{name}' failed at case {case}/{cases}\
                 \n  counterexample (after {steps} shrink steps): {minimal:?}\
                 \n  error: {minimal_msg}\
                 \n  replay: SPASM_PT_SEED={case_seed:#018x} cargo test -q"
            );
        }
    }
}

/// Runs one case, converting panics into `Err` so plain `assert!`
/// helpers inside properties participate in shrinking.
fn run_case<T>(prop: &impl Fn(&T) -> Result<(), String>, value: &T) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "property panicked".to_string())),
    }
}

/// Greedily minimizes a failing value outside the [`check`] harness:
/// repeatedly adopts the first shrink candidate that still fails until
/// no candidate fails or the budget runs out. Returns the minimized
/// value, its failure message, and the shrink attempts spent. This is
/// the same shrinker [`check`] applies to failing property cases,
/// exposed for drivers — like the chaos campaign — that find failures
/// on their own and want a minimal reproducer.
pub fn minimize<T: Clone + Debug>(
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
    failing: T,
    msg: String,
    budget: u32,
) -> (T, String, u32) {
    shrink_failure(gen, &prop, failing, msg, budget)
}

/// Greedy bounded shrinking: repeatedly adopt the first candidate that
/// still fails, until no candidate fails or the budget runs out.
fn shrink_failure<T: Clone + Debug>(
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> Result<(), String>,
    mut failing: T,
    mut msg: String,
    budget: u32,
) -> (T, String, u32) {
    let mut spent = 0u32;
    'outer: while spent < budget {
        for cand in gen.shrink_candidates(&failing) {
            if spent >= budget {
                break 'outer;
            }
            spent += 1;
            if let Err(e) = run_case(prop, &cand) {
                failing = cand;
                msg = e;
                continue 'outer;
            }
        }
        break; // local minimum: every candidate passes
    }
    (failing, msg, spent)
}

/// Parses a decimal or `0x`-prefixed hexadecimal seed.
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a over the property name: stable across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a property, returning `Err` instead of
/// panicking so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_generates_permutations_and_shrinks_toward_identity() {
        check("shuffled_is_a_permutation", &gens::shuffled(0..12), |p| {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            let identity: Vec<usize> = (0..p.len()).collect();
            prop_assert_eq!(&sorted, &identity);
            Ok(())
        });
        let g = gens::shuffled(4..5);
        let identity: Vec<usize> = (0..4).collect();
        assert!(g.shrink_candidates(&identity).is_empty());
        let scrambled = vec![3, 2, 1, 0];
        let cands = g.shrink_candidates(&scrambled);
        assert!(cands.contains(&identity));
        for c in &cands {
            let mut s = c.clone();
            s.sort_unstable();
            assert_eq!(s, identity, "shrink must stay a permutation: {c:?}");
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("always_true", &gens::u64s(0..100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        seen += counter.get();
        assert_eq!(seen, Config::default().cases);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let gen = gens::vecs(gens::u64s(0..1000), 0..20);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut stream = fnv1a(b"some_property");
        let mut stream2 = fnv1a(b"some_property");
        for _ in 0..10 {
            a.push(
                gen.generate(&mut TestRng::seed_from_u64(spasm_prng::splitmix64(
                    &mut stream,
                ))),
            );
            b.push(
                gen.generate(&mut TestRng::seed_from_u64(spasm_prng::splitmix64(
                    &mut stream2,
                ))),
            );
        }
        assert_eq!(a, b);
        let mut other = fnv1a(b"other_property");
        let c = gen.generate(&mut TestRng::seed_from_u64(spasm_prng::splitmix64(
            &mut other,
        )));
        assert_ne!(a[0], c, "distinct properties should see distinct cases");
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vector() {
        // Property: no vector contains an element >= 50. The minimal
        // counterexample is the single element [50].
        let gen = gens::vecs(gens::u64s(0..100), 0..40);
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("has_big_element", &gen, |v| {
                prop_assert!(v.iter().all(|&x| x < 50), "big element in {v:?}");
                Ok(())
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("counterexample"), "{msg}");
        assert!(msg.contains("[50]"), "expected minimal [50], got: {msg}");
        assert!(msg.contains("SPASM_PT_SEED=0x"), "{msg}");
    }

    #[test]
    fn integer_shrinking_reaches_the_boundary() {
        // Property: x < 25 over 10..100. The minimal failure is 25.
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("ints_below_25", &gens::u64s(10..100), |&x| {
                prop_assert!(x < 25);
                Ok(())
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains(": 25\n"), "expected minimal 25, got: {msg}");
    }

    #[test]
    fn tuple_shrinking_is_per_coordinate() {
        let gen = gens::tuple2(gens::u64s(0..100), gens::u64s(0..100));
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("tuple_sum_small", &gen, |&(a, b)| {
                prop_assert!(a + b < 60);
                Ok(())
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        // Greedy per-coordinate shrinking lands on a boundary pair whose
        // sum is exactly 60 (e.g. (0, 60) or (60, 0)).
        assert!(msg.contains("counterexample"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("panics_inside", &gens::u64s(0..10), |&x| {
                // A helper that panics (rather than returning Err) must
                // still be caught, shrunk, and reported.
                assert!(x >= 10, "boom {x}");
                Ok(())
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn choice_shrinks_toward_earlier_entries() {
        let gen = gens::choice(vec![1u8, 2, 3]);
        assert_eq!(gen.shrink_candidates(&3), vec![1, 2]);
        assert!(gen.shrink_candidates(&1).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let gen = gens::vecs(gens::u64s(0..10), 2..6);
        for cand in gen.shrink_candidates(&vec![1, 2, 3]) {
            assert!(cand.len() >= 2, "shrank below min length: {cand:?}");
        }
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed("  0x10 "), Some(16));
        assert_eq!(parse_seed("zzz"), None);
    }
}
