//! # spasm-logp — the LogP network abstraction
//!
//! Implements the LogP model of Culler et al. (PPoPP 1993) as used by the
//! paper to *abstract the interconnection network* inside an
//! execution-driven simulator (§3.1):
//!
//! * **L** — the latency: the maximum time spent in the network by a message
//!   from a source to any destination. The paper fixes `L = 1.6 µs`,
//!   assuming 32-byte messages on 20 MB/s serial links, *independent of
//!   topology* — the deliberate pessimism/optimism of this choice is one of
//!   the paper's findings (R1 in DESIGN.md).
//! * **o** — the per-message processor overhead. On a shared-memory platform
//!   the message overhead is incurred in hardware, so the paper drops `o`;
//!   we keep the field (always zero by default) for completeness.
//! * **g** — the gap: the minimum interval between consecutive message
//!   transmissions/receptions at a node, computed from the per-processor
//!   *bisection bandwidth* of the abstracted topology exactly as in the
//!   paper: full `3.2/p µs`, hypercube `1.6 µs`, mesh `0.8·px µs` (`px` =
//!   number of columns).
//! * **P** — the number of processors.
//!
//! The [`GapTracker`] enforces `g` at each node. The paper's §7 observes
//! that LogP's definition — no simultaneous sends *and* receives from one
//! node — is a source of pessimism, and reports an experiment where the gap
//! is enforced only between *identical* communication events; that variant
//! is [`GapPolicy::PerEventType`] and is evaluated as ablation A1.
//!
//! # Example
//!
//! ```
//! use spasm_logp::{GapPolicy, GapTracker, LogPParams};
//! use spasm_topology::Topology;
//! use spasm_desim::SimTime;
//!
//! let params = LogPParams::for_topology(&Topology::hypercube(16));
//! assert_eq!(params.l, SimTime::from_ns(1600));
//! assert_eq!(params.g, SimTime::from_ns(1600));
//!
//! let mut gaps = GapTracker::new(16, params.g, GapPolicy::Unified);
//! let first = gaps.acquire(0, spasm_logp::NetEvent::Send, SimTime::ZERO);
//! assert_eq!(first.start, SimTime::ZERO);
//! let second = gaps.acquire(0, spasm_logp::NetEvent::Send, SimTime::ZERO);
//! assert_eq!(second.start, SimTime::from_ns(1600)); // g-spaced
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spasm_desim::SimTime;
use spasm_topology::{Topology, TopologyKind};

/// The four LogP parameters, in simulation time units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogPParams {
    /// Network latency per message (paper: 1.6 µs for 32-byte messages).
    pub l: SimTime,
    /// Per-node communication gap derived from bisection bandwidth.
    pub g: SimTime,
    /// Per-message processor overhead (0 on the shared-memory platform).
    pub o: SimTime,
    /// Number of processors.
    pub p: usize,
}

/// The paper's fixed L: one 32-byte message at 50 ns/byte.
pub const L_NS: u64 = 1_600;

impl LogPParams {
    /// Derives the parameters for a topology, using the paper's §5 rules.
    ///
    /// `L` is always 1.6 µs. `g` comes from the cross-section (bisection)
    /// bandwidth available per processor:
    ///
    /// * full: `3.2/p µs`
    /// * hypercube: `1.6 µs`
    /// * mesh: `0.8 · px µs`, where `px` is the number of columns
    ///
    /// For `p == 1` the gap is zero (no network at all).
    pub fn for_topology(topo: &Topology) -> Self {
        let p = topo.nodes();
        let g_ns = if p == 1 {
            0
        } else {
            match topo.kind() {
                TopologyKind::Full => 3_200 / p as u64,
                TopologyKind::Hypercube => 1_600,
                TopologyKind::Mesh2D => {
                    let (_, cols) = topo.mesh_geometry();
                    800 * cols as u64
                }
            }
        };
        LogPParams {
            l: SimTime::from_ns(L_NS),
            g: SimTime::from_ns(g_ns),
            o: SimTime::ZERO,
            p,
        }
    }

    /// A variant with `g` scaled by `factor` — used by the "better estimate
    /// of g" ablation the paper's §7 calls for (incorporating application
    /// communication locality would lower the effective g).
    pub fn with_g_scaled(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0");
        let g = SimTime::from_ns((self.g.as_ns() as f64 * factor).round() as u64);
        LogPParams { g, ..self }
    }
}

/// Which network events the per-node gap separates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GapPolicy {
    /// The LogP definition: any two network events at a node (a send and a
    /// receive included) must be ≥ g apart. This is the model the paper
    /// evaluates in the main results.
    #[default]
    Unified,
    /// The paper's §7 experiment: the gap applies only between events of
    /// the same kind (send–send, receive–receive); a send and a receive may
    /// proceed concurrently. Lessens the pessimism considerably.
    PerEventType,
}

/// A network event kind at a node, for [`GapPolicy::PerEventType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetEvent {
    /// Message transmission from this node.
    Send,
    /// Message reception at this node.
    Recv,
}

/// A granted slot at a node's network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapGrant {
    /// When the event may proceed (≥ the request time).
    pub start: SimTime,
    /// Time the event waited for the gap (charged as contention).
    pub waited: SimTime,
}

/// Per-node enforcement of the LogP gap parameter.
#[derive(Debug, Clone)]
pub struct GapTracker {
    g: SimTime,
    policy: GapPolicy,
    /// Next allowed event time, per node: [unified] or [send, recv].
    next_send: Vec<SimTime>,
    next_recv: Vec<SimTime>,
    /// Total gap-induced waiting (contention) accumulated per node.
    waited: Vec<SimTime>,
}

impl GapTracker {
    /// Creates a tracker for `p` nodes with gap `g` under `policy`.
    pub fn new(p: usize, g: SimTime, policy: GapPolicy) -> Self {
        GapTracker {
            g,
            policy,
            next_send: vec![SimTime::ZERO; p],
            next_recv: vec![SimTime::ZERO; p],
            waited: vec![SimTime::ZERO; p],
        }
    }

    /// The gap being enforced.
    pub fn g(&self) -> SimTime {
        self.g
    }

    /// The policy in force.
    pub fn policy(&self) -> GapPolicy {
        self.policy
    }

    /// Acquires a network-interface slot for `kind` at `node`, at or after
    /// `at`. Subsequent events are pushed `g` later according to policy.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn acquire(&mut self, node: usize, kind: NetEvent, at: SimTime) -> GapGrant {
        let start = match (self.policy, kind) {
            (GapPolicy::Unified, _) => {
                let s = at.max(self.next_send[node]).max(self.next_recv[node]);
                self.next_send[node] = s + self.g;
                self.next_recv[node] = s + self.g;
                s
            }
            (GapPolicy::PerEventType, NetEvent::Send) => {
                let s = at.max(self.next_send[node]);
                self.next_send[node] = s + self.g;
                s
            }
            (GapPolicy::PerEventType, NetEvent::Recv) => {
                let s = at.max(self.next_recv[node]);
                self.next_recv[node] = s + self.g;
                s
            }
        };
        let waited = start - at;
        self.waited[node] += waited;
        GapGrant { start, waited }
    }

    /// Total gap-induced waiting accumulated at `node`.
    pub fn waited(&self, node: usize) -> SimTime {
        self.waited[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn paper_g_values() {
        // full: 3.2/p us
        let t = Topology::full(16);
        assert_eq!(LogPParams::for_topology(&t).g, ns(200));
        let t = Topology::full(32);
        assert_eq!(LogPParams::for_topology(&t).g, ns(100));
        // cube: 1.6 us independent of p
        for p in [2, 8, 32] {
            let t = Topology::hypercube(p);
            assert_eq!(LogPParams::for_topology(&t).g, ns(1600));
        }
        // mesh: 0.8 * px us
        let t = Topology::mesh(16); // 4x4
        assert_eq!(LogPParams::for_topology(&t).g, ns(3200));
        let t = Topology::mesh(32); // 4x8
        assert_eq!(LogPParams::for_topology(&t).g, ns(6400));
    }

    #[test]
    fn l_is_topology_independent() {
        for t in [Topology::full(8), Topology::hypercube(8), Topology::mesh(8)] {
            assert_eq!(LogPParams::for_topology(&t).l, ns(1600));
        }
    }

    #[test]
    fn single_node_has_zero_gap() {
        let t = Topology::full(1);
        let p = LogPParams::for_topology(&t);
        assert_eq!(p.g, SimTime::ZERO);
    }

    #[test]
    fn unified_gap_spaces_all_events() {
        let mut g = GapTracker::new(2, ns(100), GapPolicy::Unified);
        let a = g.acquire(0, NetEvent::Send, ns(0));
        let b = g.acquire(0, NetEvent::Recv, ns(0));
        let c = g.acquire(0, NetEvent::Send, ns(0));
        assert_eq!(a.start, ns(0));
        assert_eq!(b.start, ns(100)); // recv also pushed by the send
        assert_eq!(c.start, ns(200));
        assert_eq!(g.waited(0), ns(300));
    }

    #[test]
    fn per_event_type_gap_allows_concurrent_send_recv() {
        let mut g = GapTracker::new(1, ns(100), GapPolicy::PerEventType);
        let a = g.acquire(0, NetEvent::Send, ns(0));
        let b = g.acquire(0, NetEvent::Recv, ns(0));
        assert_eq!(a.start, ns(0));
        assert_eq!(b.start, ns(0)); // not delayed by the send
        let c = g.acquire(0, NetEvent::Send, ns(0));
        assert_eq!(c.start, ns(100));
    }

    #[test]
    fn nodes_are_independent() {
        let mut g = GapTracker::new(2, ns(100), GapPolicy::Unified);
        g.acquire(0, NetEvent::Send, ns(0));
        let b = g.acquire(1, NetEvent::Send, ns(0));
        assert_eq!(b.start, ns(0));
    }

    #[test]
    fn gap_after_idle_period_costs_nothing() {
        let mut g = GapTracker::new(1, ns(100), GapPolicy::Unified);
        g.acquire(0, NetEvent::Send, ns(0));
        let b = g.acquire(0, NetEvent::Send, ns(500));
        assert_eq!(b.start, ns(500));
        assert_eq!(b.waited, SimTime::ZERO);
    }

    #[test]
    fn g_scaling() {
        let t = Topology::mesh(16);
        let p = LogPParams::for_topology(&t).with_g_scaled(0.5);
        assert_eq!(p.g, ns(1600));
        let p0 = LogPParams::for_topology(&t).with_g_scaled(0.0);
        assert_eq!(p0.g, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 0")]
    fn negative_g_scale_rejected() {
        let t = Topology::full(2);
        let _ = LogPParams::for_topology(&t).with_g_scaled(-1.0);
    }

    #[test]
    fn zero_gap_tracker_never_waits() {
        let mut g = GapTracker::new(1, SimTime::ZERO, GapPolicy::Unified);
        for _ in 0..5 {
            let grant = g.acquire(0, NetEvent::Send, ns(42));
            assert_eq!(grant.start, ns(42));
            assert_eq!(grant.waited, SimTime::ZERO);
        }
    }

    #[test]
    fn full_gap_shrinks_with_p() {
        let g8 = LogPParams::for_topology(&Topology::full(8)).g;
        let g32 = LogPParams::for_topology(&Topology::full(32)).g;
        assert!(g32 < g8);
    }

    #[test]
    fn mesh_gap_grows_with_p() {
        let g4 = LogPParams::for_topology(&Topology::mesh(4)).g;
        let g64 = LogPParams::for_topology(&Topology::mesh(64)).g;
        assert!(g64 > g4);
    }
}
