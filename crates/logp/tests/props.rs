//! Property-based tests of the LogP gap machinery (spasm-testkit).

use spasm_desim::SimTime;
use spasm_logp::{GapPolicy, GapTracker, LogPParams, NetEvent};
use spasm_testkit::{check, gens, prop_assert, prop_assert_eq, Gen};
use spasm_topology::Topology;

/// Raw (node, is-send, at) events; sorted by time inside the property
/// (event order = time order, as the engine issues them).
fn events(p: usize) -> Gen<Vec<(usize, bool, u64)>> {
    gens::vecs(
        gens::tuple3(gens::usizes(0..p), gens::bools(), gens::u64s(0..10_000)),
        0..100,
    )
}

fn by_time(v: &[(usize, bool, u64)]) -> Vec<(usize, bool, u64)> {
    let mut v = v.to_vec();
    v.sort_by_key(|&(_, _, t)| t);
    v
}

/// Under the unified policy, consecutive grants at one node are at
/// least g apart, regardless of event kind.
#[test]
fn unified_grants_are_g_spaced() {
    check(
        "unified_grants_are_g_spaced",
        &gens::tuple2(events(4), gens::u64s(1..5_000)),
        |(raw, g)| {
            let g = *g;
            let mut tracker = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::Unified);
            let mut last: [Option<SimTime>; 4] = [None; 4];
            for (node, send, at) in by_time(raw) {
                let kind = if send { NetEvent::Send } else { NetEvent::Recv };
                let grant = tracker.acquire(node, kind, SimTime::from_ns(at));
                prop_assert!(grant.start >= SimTime::from_ns(at));
                if let Some(prev) = last[node] {
                    prop_assert!(
                        grant.start >= prev + SimTime::from_ns(g),
                        "grants {prev} and {} closer than g={g}",
                        grant.start
                    );
                }
                last[node] = Some(grant.start);
            }
            Ok(())
        },
    );
}

/// Under the per-event-type policy, same-kind grants are g-spaced and
/// every grant is still at or after its request.
#[test]
fn per_type_grants_are_g_spaced_within_kind() {
    check(
        "per_type_grants_are_g_spaced_within_kind",
        &gens::tuple2(events(4), gens::u64s(1..5_000)),
        |(raw, g)| {
            let g = *g;
            let mut tracker = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::PerEventType);
            let mut last: std::collections::HashMap<(usize, bool), SimTime> = Default::default();
            for (node, send, at) in by_time(raw) {
                let kind = if send { NetEvent::Send } else { NetEvent::Recv };
                let grant = tracker.acquire(node, kind, SimTime::from_ns(at));
                prop_assert!(grant.start >= SimTime::from_ns(at));
                if let Some(&prev) = last.get(&(node, send)) {
                    prop_assert!(grant.start >= prev + SimTime::from_ns(g));
                }
                last.insert((node, send), grant.start);
            }
            Ok(())
        },
    );
}

/// The per-event-type policy never waits longer than the unified policy
/// for the same event stream.
#[test]
fn per_type_is_never_slower() {
    check(
        "per_type_is_never_slower",
        &gens::tuple2(events(4), gens::u64s(1..5_000)),
        |(raw, g)| {
            let g = *g;
            let mut unified = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::Unified);
            let mut per_type = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::PerEventType);
            for (node, send, at) in by_time(raw) {
                let kind = if send { NetEvent::Send } else { NetEvent::Recv };
                let gu = unified.acquire(node, kind, SimTime::from_ns(at));
                let gp = per_type.acquire(node, kind, SimTime::from_ns(at));
                prop_assert!(gp.start <= gu.start);
            }
            for node in 0..4 {
                prop_assert!(per_type.waited(node) <= unified.waited(node));
            }
            Ok(())
        },
    );
}

/// Accumulated waiting equals the sum of per-grant waits.
#[test]
fn waited_is_sum_of_waits() {
    check(
        "waited_is_sum_of_waits",
        &gens::tuple2(events(2), gens::u64s(1..2_000)),
        |(raw, g)| {
            let mut tracker = GapTracker::new(2, SimTime::from_ns(*g), GapPolicy::Unified);
            let mut sums = [SimTime::ZERO; 2];
            for (node, send, at) in by_time(raw) {
                let kind = if send { NetEvent::Send } else { NetEvent::Recv };
                let grant = tracker.acquire(node, kind, SimTime::from_ns(at));
                sums[node] += grant.waited;
            }
            for (node, &sum) in sums.iter().enumerate() {
                prop_assert_eq!(tracker.waited(node), sum);
            }
            Ok(())
        },
    );
}

/// g derivation: for every topology and size, g is positive (p > 1)
/// and scales as the paper's closed forms dictate.
#[test]
fn g_derivation_matches_paper_forms() {
    check(
        "g_derivation_matches_paper_forms",
        &gens::choice(vec![2usize, 4, 8, 16, 32, 64]),
        |&p| {
            let full = LogPParams::for_topology(&Topology::full(p));
            let cube = LogPParams::for_topology(&Topology::hypercube(p));
            let mesh = LogPParams::for_topology(&Topology::mesh(p));
            prop_assert_eq!(full.g.as_ns(), 3_200 / p as u64);
            prop_assert_eq!(cube.g.as_ns(), 1_600);
            let (_, cols) = Topology::mesh(p).mesh_geometry();
            prop_assert_eq!(mesh.g.as_ns(), 800 * cols as u64);
            // Ordering at every size the paper sweeps: mesh >= cube >= full.
            prop_assert!(mesh.g >= cube.g);
            prop_assert!(cube.g >= full.g);
            Ok(())
        },
    );
}
