//! Property-based tests of the LogP gap machinery.

use proptest::prelude::*;
use spasm_desim::SimTime;
use spasm_logp::{GapPolicy, GapTracker, LogPParams, NetEvent};
use spasm_topology::Topology;

fn arb_events(p: usize) -> impl Strategy<Value = Vec<(usize, bool, u64)>> {
    prop::collection::vec((0..p, any::<bool>(), 0u64..10_000), 0..100).prop_map(|mut v| {
        v.sort_by_key(|&(_, _, t)| t); // event order = time order
        v
    })
}

proptest! {
    /// Under the unified policy, consecutive grants at one node are at
    /// least g apart, regardless of event kind.
    #[test]
    fn unified_grants_are_g_spaced(events in arb_events(4), g in 1u64..5_000) {
        let mut tracker = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::Unified);
        let mut last: [Option<SimTime>; 4] = [None; 4];
        for (node, send, at) in events {
            let kind = if send { NetEvent::Send } else { NetEvent::Recv };
            let grant = tracker.acquire(node, kind, SimTime::from_ns(at));
            prop_assert!(grant.start >= SimTime::from_ns(at));
            if let Some(prev) = last[node] {
                prop_assert!(
                    grant.start >= prev + SimTime::from_ns(g),
                    "grants {prev} and {} closer than g={g}", grant.start
                );
            }
            last[node] = Some(grant.start);
        }
    }

    /// Under the per-event-type policy, same-kind grants are g-spaced and
    /// every grant is still at or after its request.
    #[test]
    fn per_type_grants_are_g_spaced_within_kind(events in arb_events(4), g in 1u64..5_000) {
        let mut tracker = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::PerEventType);
        let mut last: std::collections::HashMap<(usize, bool), SimTime> = Default::default();
        for (node, send, at) in events {
            let kind = if send { NetEvent::Send } else { NetEvent::Recv };
            let grant = tracker.acquire(node, kind, SimTime::from_ns(at));
            prop_assert!(grant.start >= SimTime::from_ns(at));
            if let Some(&prev) = last.get(&(node, send)) {
                prop_assert!(grant.start >= prev + SimTime::from_ns(g));
            }
            last.insert((node, send), grant.start);
        }
    }

    /// The per-event-type policy never waits longer than the unified
    /// policy for the same event stream.
    #[test]
    fn per_type_is_never_slower(events in arb_events(4), g in 1u64..5_000) {
        let mut unified = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::Unified);
        let mut per_type = GapTracker::new(4, SimTime::from_ns(g), GapPolicy::PerEventType);
        for (node, send, at) in events {
            let kind = if send { NetEvent::Send } else { NetEvent::Recv };
            let gu = unified.acquire(node, kind, SimTime::from_ns(at));
            let gp = per_type.acquire(node, kind, SimTime::from_ns(at));
            prop_assert!(gp.start <= gu.start);
        }
        for node in 0..4 {
            prop_assert!(per_type.waited(node) <= unified.waited(node));
        }
    }

    /// Accumulated waiting equals the sum of per-grant waits.
    #[test]
    fn waited_is_sum_of_waits(events in arb_events(2), g in 1u64..2_000) {
        let mut tracker = GapTracker::new(2, SimTime::from_ns(g), GapPolicy::Unified);
        let mut sums = [SimTime::ZERO; 2];
        for (node, send, at) in events {
            let kind = if send { NetEvent::Send } else { NetEvent::Recv };
            let grant = tracker.acquire(node, kind, SimTime::from_ns(at));
            sums[node] += grant.waited;
        }
        for (node, &sum) in sums.iter().enumerate() {
            prop_assert_eq!(tracker.waited(node), sum);
        }
    }

    /// g derivation: for every topology and size, g is positive (p > 1)
    /// and scales as the paper's closed forms dictate.
    #[test]
    fn g_derivation_matches_paper_forms(e in 1u32..=6) {
        let p = 1usize << e;
        let full = LogPParams::for_topology(&Topology::full(p));
        let cube = LogPParams::for_topology(&Topology::hypercube(p));
        let mesh = LogPParams::for_topology(&Topology::mesh(p));
        prop_assert_eq!(full.g.as_ns(), 3_200 / p as u64);
        prop_assert_eq!(cube.g.as_ns(), 1_600);
        let (_, cols) = Topology::mesh(p).mesh_geometry();
        prop_assert_eq!(mesh.g.as_ns(), 800 * cols as u64);
        // Ordering at every size the paper sweeps: mesh >= cube >= full.
        prop_assert!(mesh.g >= cube.g);
        if p >= 2 {
            prop_assert!(cube.g >= full.g);
        }
    }
}
