//! Property-based tests of the simulation kernel (spasm-testkit).

use spasm_desim::{EventQueue, Facility, SimTime};
use spasm_testkit::{check, gens, prop_assert, prop_assert_eq};

/// The event queue is a stable priority queue: pops are sorted by time,
/// and equal-time events preserve push order.
#[test]
fn event_queue_pops_sorted_and_stable() {
    check(
        "event_queue_pops_sorted_and_stable",
        &gens::vecs(gens::u64s(0..100), 0..200),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ns(t), i);
            }
            let mut expect: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expect.sort(); // stable sort: (time, push index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_ns(), i))).collect();
            prop_assert_eq!(got, expect);
            Ok(())
        },
    );
}

/// Interleaved pushes and pops never violate the time order among the
/// events popped after any push.
#[test]
fn event_queue_interleaved_operations() {
    check(
        "event_queue_interleaved_operations",
        &gens::vecs(gens::tuple2(gens::bools(), gens::u64s(0..50)), 0..100),
        |ops| {
            let mut q = EventQueue::new();
            let mut last_popped = None::<u64>;
            for &(push, t) in ops {
                if push {
                    // Monotonic pushes (like a simulator: never schedule
                    // in the past relative to consumed time).
                    let t = t.max(last_popped.unwrap_or(0));
                    q.push(SimTime::from_ns(t), ());
                } else if let Some((t, ())) = q.pop() {
                    if let Some(prev) = last_popped {
                        prop_assert!(t.as_ns() >= prev);
                    }
                    last_popped = Some(t.as_ns());
                }
            }
            Ok(())
        },
    );
}

/// A facility serializes: grants never overlap, start at or after the
/// request, and FCFS order is preserved.
#[test]
fn facility_grants_never_overlap() {
    check(
        "facility_grants_never_overlap",
        &gens::vecs(gens::tuple2(gens::u64s(0..1000), gens::u64s(1..100)), 1..50),
        |reqs| {
            let mut f = Facility::new();
            let mut sorted = reqs.clone();
            sorted.sort(); // requests arrive in time order
            let mut last_end = SimTime::ZERO;
            let mut busy_total = SimTime::ZERO;
            for (at, service) in sorted {
                let g = f.reserve(SimTime::from_ns(at), SimTime::from_ns(service));
                prop_assert!(g.start >= SimTime::from_ns(at));
                prop_assert!(g.start >= last_end, "overlapping grants");
                prop_assert_eq!(g.end, g.start + SimTime::from_ns(service));
                prop_assert_eq!(g.waited, g.start - SimTime::from_ns(at));
                last_end = g.end;
                busy_total += SimTime::from_ns(service);
            }
            prop_assert_eq!(f.stats().busy, busy_total);
            prop_assert_eq!(f.free_at(), last_end);
            Ok(())
        },
    );
}

/// SimTime arithmetic: associativity of addition and the saturating
/// subtraction identity `a - b + b >= a` (equality when b <= a).
#[test]
fn simtime_arithmetic() {
    check(
        "simtime_arithmetic",
        &gens::tuple3(
            gens::u64s(0..u64::MAX / 4),
            gens::u64s(0..u64::MAX / 4),
            gens::u64s(0..u64::MAX / 4),
        ),
        |&(a, b, c)| {
            let (ta, tb, tc) = (
                SimTime::from_ns(a),
                SimTime::from_ns(b),
                SimTime::from_ns(c),
            );
            prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
            if b <= a {
                prop_assert_eq!(ta - tb + tb, ta);
            } else {
                prop_assert_eq!(ta - tb, SimTime::ZERO);
            }
            prop_assert_eq!(ta.max(tb).as_ns(), a.max(b));
            prop_assert_eq!(ta.min(tb).as_ns(), a.min(b));
            Ok(())
        },
    );
}
