//! Differential queue property suite: `CalendarQueue` must be
//! observationally identical to the seed-era `HeapQueue` oracle — pop
//! sequences (including FIFO tie order), `peek_time`, lengths, and the
//! `pushed()`/`popped()`/`last_popped()` accounting — across adversarial
//! schedules: same-timestamp bursts, far-future spills, interleaved
//! push/pop, monotonic engine-like streams, and non-monotonic inserts
//! into the past.

use spasm_desim::{CalendarQueue, HeapQueue, SimTime};
use spasm_testkit::{check, gens, prop_assert, prop_assert_eq};

/// One scripted operation against both queues.
#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    Pop,
    PopIfBefore(u64),
    PeekAndAudit,
}

/// Runs the script through both implementations in lock step, comparing
/// every observable result. Events carry their push index so FIFO tie
/// order is visible in the payload.
fn run_diff(ops: &[Op]) -> Result<(), String> {
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut payload = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Push(t) => {
                cal.push(SimTime::from_ns(t), payload);
                heap.push(SimTime::from_ns(t), payload);
                payload += 1;
            }
            Op::Pop => {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b, "step {step}: pop diverged: {a:?} vs {b:?}");
            }
            Op::PopIfBefore(limit) => {
                let l = SimTime::from_ns(limit);
                let (a, b) = (cal.pop_if_before(l), heap.pop_if_before(l));
                prop_assert_eq!(
                    a,
                    b,
                    "step {step}: pop_if_before({limit}) diverged: {a:?} vs {b:?}"
                );
            }
            Op::PeekAndAudit => {
                let (a, b) = (cal.peek_time(), heap.peek_time());
                prop_assert_eq!(a, b, "step {step}: peek_time diverged: {a:?} vs {b:?}");
            }
        }
        prop_assert_eq!(cal.len(), heap.len(), "step {step}: len diverged");
        prop_assert_eq!(cal.pushed(), heap.pushed(), "step {step}: pushed diverged");
        prop_assert_eq!(cal.popped(), heap.popped(), "step {step}: popped diverged");
        let (a, b) = (cal.last_popped(), heap.last_popped());
        prop_assert_eq!(a, b, "step {step}: last_popped diverged: {a:?} vs {b:?}");
    }
    // Drain both to the end: the full residual order must agree too.
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        prop_assert_eq!(a, b, "drain: pop diverged: {a:?} vs {b:?}");
        if a.is_none() {
            prop_assert!(cal.is_empty(), "calendar not empty after drain");
            return Ok(());
        }
    }
}

/// Decodes a raw `(sel, tsel, tweak)` tuple into an op. Timestamps come
/// from a palette mixing near times, bucket boundaries, the spill
/// ladder, and extremes, anchored at `origin`.
fn decode(origin: u64, sel: u64, tsel: u64, tweak: u64) -> Op {
    let palette: [u64; 8] = [
        0,
        origin,
        origin.saturating_add(tweak % 64), // same initial bucket
        origin.saturating_add(64 + tweak % 4_096), // nearby buckets
        origin.saturating_add(32_768),     // exactly past the initial window
        origin.saturating_add(40_000 + tweak % 100_000), // beyond the window
        origin.saturating_add(1 << 30).saturating_add(tweak), // deep spill
        u64::MAX,                          // extreme boundary
    ];
    let t = palette[(tsel % 8) as usize];
    match sel % 8 {
        0..=3 => Op::Push(t),
        4 | 5 => Op::Pop,
        6 => Op::PopIfBefore(t),
        _ => Op::PeekAndAudit,
    }
}

#[test]
fn random_interleaved_schedules_agree() {
    let raw = gens::tuple2(
        gens::u64s(0..100_000),
        gens::vecs(
            gens::tuple3(gens::u64s(0..8), gens::u64s(0..8), gens::u64s(0..u64::MAX)),
            1..200,
        ),
    );
    check(
        "queue_diff/random_interleaved",
        &raw,
        |(origin, raw_ops)| {
            let ops: Vec<Op> = raw_ops
                .iter()
                .map(|&(sel, tsel, tweak)| decode(*origin, sel, tsel, tweak))
                .collect();
            run_diff(&ops)
        },
    );
}

#[test]
fn same_timestamp_bursts_pop_fifo_identically() {
    // Bursts of equal timestamps with pops interleaved: FIFO tie order
    // must match the heap exactly.
    let raw = gens::vecs(
        gens::tuple3(gens::u64s(0..50_000), gens::u64s(2..65), gens::u64s(0..65)),
        1..6,
    );
    check("queue_diff/same_time_bursts", &raw, |bursts| {
        let mut ops = Vec::new();
        for &(t, burst, pops) in bursts {
            for _ in 0..burst {
                ops.push(Op::Push(t));
            }
            for _ in 0..pops.min(burst) {
                ops.push(Op::Pop);
            }
        }
        run_diff(&ops)
    });
}

#[test]
fn far_future_spills_and_reseeds_agree() {
    // Clusters separated by huge gaps force the spill ladder and its
    // re-seed/redistribute path, including width re-adaptation.
    let raw = gens::vecs(
        gens::tuple3(
            gens::vecs(gens::u64s(0..10_000), 1..20),
            gens::u64s(0..25),
            gens::u64s(20..51),
        ),
        1..5,
    );
    check("queue_diff/far_future", &raw, |clusters| {
        let mut ops = Vec::new();
        let mut base = 0u64;
        for (offsets, pops, gap_log2) in clusters {
            for &off in offsets {
                ops.push(Op::Push(base.saturating_add(off)));
            }
            for _ in 0..*pops {
                ops.push(Op::Pop);
            }
            // Jump far beyond any plausible ring window (up to 2^50 ns).
            base = base.saturating_add(1 << gap_log2);
        }
        ops.push(Op::PeekAndAudit);
        run_diff(&ops)
    });
}

#[test]
fn monotonic_engine_like_streams_agree() {
    // The engine's usual shape: pop one, push a handful at bounded
    // offsets from "now" — times never go backwards.
    let raw = gens::vecs(
        gens::tuple2(gens::u64s(0..5_000), gens::vecs(gens::u64s(0..5_000), 0..3)),
        10..120,
    );
    check("queue_diff/monotonic", &raw, |rounds| {
        let mut ops = Vec::new();
        let mut now = 0u64;
        for _ in 0..8 {
            ops.push(Op::Push(now));
        }
        for (advance, offsets) in rounds {
            ops.push(Op::Pop);
            now += advance;
            for &off in offsets {
                ops.push(Op::Push(now + off));
            }
        }
        run_diff(&ops)
    });
}

#[test]
fn non_monotonic_inserts_into_the_past_agree() {
    // Drain forward, then schedule before the last popped timestamp
    // (the heap permits it; the calendar must match).
    let raw = gens::tuple2(
        gens::u64s(1_000..200_000),
        gens::vecs(gens::tuple2(gens::u64s(0..200_000), gens::bools()), 1..40),
    );
    check("queue_diff/non_monotonic", &raw, |(t0, pasts)| {
        let mut ops = vec![Op::Push(*t0), Op::Pop];
        for &(t, pop) in pasts {
            // Anything in [0, t0): strictly in the past for the calendar
            // window that has advanced to t0.
            ops.push(Op::Push(t % t0));
            if pop {
                ops.push(Op::Pop);
            }
        }
        run_diff(&ops)
    });
}

#[test]
fn pop_if_before_deadline_sweep_agrees() {
    let raw = gens::vecs(
        gens::tuple2(gens::u64s(0..100_000), gens::u64s(0..100_000)),
        1..30,
    );
    check("queue_diff/pop_if_before", &raw, |pairs| {
        let mut ops = Vec::new();
        for &(t, limit) in pairs {
            ops.push(Op::Push(t));
            ops.push(Op::PopIfBefore(limit));
        }
        // Deadline exactly at, just below, and just above a pending time.
        ops.push(Op::Push(77_777));
        ops.push(Op::PopIfBefore(77_776));
        ops.push(Op::PopIfBefore(77_777));
        ops.push(Op::PopIfBefore(u64::MAX));
        run_diff(&ops)
    });
}

#[test]
fn deterministic_regression_scripts() {
    // Hand-picked boundary scripts, kept deterministic so failures here
    // are immediately reproducible without a seed.
    let scripts: Vec<Vec<Op>> = vec![
        // Same-time burst wider than one bucket's typical population.
        (0..200)
            .map(|_| Op::Push(42))
            .chain((0..200).map(|_| Op::Pop))
            .collect(),
        // u64::MAX and 0 with pops between.
        vec![
            Op::Push(u64::MAX),
            Op::PeekAndAudit,
            Op::Push(0),
            Op::Pop,
            Op::Pop,
            Op::Pop,
        ],
        // Exact initial window boundary: 64ns × 512 buckets = 32768.
        vec![
            Op::Push(32_767),
            Op::Push(32_768),
            Op::Push(32_769),
            Op::Pop,
            Op::Pop,
            Op::Pop,
        ],
        // Re-seed then immediately schedule into the new past.
        vec![
            Op::Push(1 << 40),
            Op::Pop,
            Op::Push(5),
            Op::Push(1 << 41),
            Op::Pop,
            Op::Pop,
        ],
        // pop_if_before on an empty queue, then deferred, then popped.
        vec![
            Op::PopIfBefore(100),
            Op::Push(50),
            Op::PopIfBefore(49),
            Op::PopIfBefore(50),
        ],
        // Engine-like drain with occasional same-time ties and reschedules.
        {
            let mut ops = Vec::new();
            let mut now = 0u64;
            for i in 0..400u64 {
                ops.push(Op::Push(now + (i * 2_654_435_761) % 4_096));
                if i % 3 != 0 {
                    ops.push(Op::Pop);
                    now += (i * 40_503) % 977;
                }
            }
            ops
        },
    ];
    for (i, script) in scripts.iter().enumerate() {
        if let Err(e) = run_diff(script) {
            panic!("script {i}: {e}");
        }
    }
}
