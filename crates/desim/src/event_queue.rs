//! Timestamped event queues with stable tie-breaking.
//!
//! Two interchangeable implementations live here:
//!
//! * [`CalendarQueue`] — a bucketed ladder/calendar queue with O(1)
//!   amortized push/pop, the default [`EventQueue`];
//! * [`HeapQueue`] — the original `BinaryHeap`-backed queue, retained as
//!   the differential-testing oracle and selectable crate-wide with the
//!   `heap-queue` feature.
//!
//! Both order events by `(time, push sequence)`: events scheduled for the
//! same instant pop in the order they were pushed (FIFO within a
//! timestamp). This total order is what makes entire simulations built on
//! these queues deterministic — no behaviour ever depends on container
//! internals — and it is also what makes the two implementations
//! *exactly* interchangeable: `crates/desim/tests/queue_diff.rs` drives
//! adversarial schedules through both and demands identical pop
//! sequences and accounting.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Result of [`CalendarQueue::pop_if_before`] / [`HeapQueue::pop_if_before`]:
/// a single head-comparison-and-pop, so callers with a time budget never
/// peek and then pop (two head traversals) in their hot loop.
#[derive(Debug, PartialEq, Eq)]
pub enum PopIfBefore<E> {
    /// The earliest event's time was at or before the limit; it has been
    /// removed and is returned.
    Popped(SimTime, E),
    /// The earliest event lies strictly after the limit; the queue is
    /// untouched and the head's timestamp is reported.
    Deferred(SimTime),
    /// No events are pending.
    Empty,
}

// ---------------------------------------------------------------------------
// HeapQueue — the original binary-heap implementation (differential oracle)
// ---------------------------------------------------------------------------

/// A min-ordered queue of `(SimTime, E)` events backed by a binary heap.
///
/// This is the seed-era implementation, kept verbatim behind the
/// `heap-queue` feature as a differential-testing oracle for
/// [`CalendarQueue`]. Events scheduled for the same instant are popped in
/// the order they were pushed (FIFO within a timestamp).
///
/// # Example
///
/// ```
/// use spasm_desim::{HeapQueue, SimTime};
///
/// let mut q = HeapQueue::new();
/// q.push(SimTime::from_ns(5), 'b');
/// q.push(SimTime::from_ns(1), 'a');
/// assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), 'a')));
/// ```
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    last_popped: Option<SimTime>,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) out first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            last_popped: None,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            self.last_popped = Some(e.time);
            (e.time, e.event)
        })
    }

    /// Pops the earliest event only if its timestamp is at or before
    /// `limit` — a combined head-compare-and-pop. See [`PopIfBefore`].
    pub fn pop_if_before(&mut self, limit: SimTime) -> PopIfBefore<E> {
        match self.heap.peek() {
            None => PopIfBefore::Empty,
            Some(e) if e.time > limit => PopIfBefore::Deferred(e.time),
            Some(_) => {
                let (t, e) = self.pop().expect("peeked head must pop");
                PopIfBefore::Popped(t, e)
            }
        }
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (a simulator "event count" metric).
    pub fn pushed(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever popped. Invariant checkers compare this
    /// against [`HeapQueue::pushed`] at end of run: a drained queue must
    /// have popped exactly what was pushed.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the most recently popped event, if any — the queue-side
    /// record of the simulation clock, for monotonicity checks.
    pub fn last_popped(&self) -> Option<SimTime> {
        self.last_popped
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// CalendarQueue — bucketed ladder/calendar queue (the default EventQueue)
// ---------------------------------------------------------------------------

/// Number of ring buckets. Power of two so the ring index is a mask. The
/// engine's pending-event population is small (a handful per processor),
/// so a fixed modest ring plus the far-future spill ladder covers every
/// workload without calendar-queue resize heuristics.
const RING_BUCKETS: usize = 512;
/// Initial bucket width as a shift (2^6 = 64 ns ≈ two CPU cycles). The
/// width re-adapts to the observed event-time span whenever the window is
/// re-seeded from the spill ladder.
const INIT_WIDTH_SHIFT: u32 = 6;
/// Widest allowed bucket (2^40 ns ≈ 18 min of simulated time per bucket):
/// beyond this, far-apart events simply share buckets and are ordered by
/// the per-bucket sort, which stays correct at any width.
const MAX_WIDTH_SHIFT: u32 = 40;

/// A min-ordered queue of `(SimTime, E)` events backed by a ladder /
/// calendar structure: a sorted "current" run being drained, a ring of
/// unsorted near-future buckets, and an unsorted far-future spill ladder.
///
/// Push and pop are O(1) amortized: a push appends to a bucket (or
/// binary-inserts into the small current run when the event is due inside
/// the bucket being drained), and each event is sorted exactly once, in
/// the small batch of its bucket, when the drain front reaches it. The
/// observable behaviour — pop order, FIFO stability within a timestamp,
/// `pushed`/`popped`/`last_popped` accounting — is bit-identical to
/// [`HeapQueue`], which the differential suite enforces.
///
/// # Example
///
/// ```
/// use spasm_desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), 'b');
/// q.push(SimTime::from_ns(1), 'a');
/// assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), 'a')));
/// ```
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// The run currently being drained, sorted by `(time, seq)`
    /// DESCENDING so pop is `Vec::pop` from the tail. Also receives
    /// pushes due before the current bucket's end (including pushes in
    /// the past, which the heap semantics allow).
    cur: Vec<(SimTime, u64, E)>,
    /// Ring of unsorted near-future buckets. `ring[ring_pos]` is the
    /// bucket being drained into `cur`; bucket `i` steps ahead holds
    /// times `[base + i·W, base + (i+1)·W)`.
    ring: Vec<Vec<(SimTime, u64, E)>>,
    /// Physical ring index of the current bucket.
    ring_pos: usize,
    /// Start of the current bucket's time range, aligned to the width.
    base: u64,
    /// log2 of the bucket width W.
    width_shift: u32,
    /// Events pending in the ring (not counting `cur`).
    in_ring: usize,
    /// Exclusive end of the epoch's ring window, FROZEN between
    /// re-seeds. The boundary must not track the advancing `base`:
    /// otherwise an event spilled to `far` (≥ the boundary at push time)
    /// could silently fall into the past as the window slides forward,
    /// and the ring would pop later events first. u128 so `u64::MAX`
    /// timestamps compare without saturation.
    epoch_end: u128,
    /// Far-future spill ladder: unsorted events at or beyond
    /// `epoch_end`, redistributed (and the width re-adapted) when the
    /// ring and current run drain dry.
    far: Vec<(SimTime, u64, E)>,
    seq: u64,
    popped: u64,
    last_popped: Option<SimTime>,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            cur: Vec::new(),
            ring: std::iter::repeat_with(Vec::new)
                .take(RING_BUCKETS)
                .collect(),
            ring_pos: 0,
            base: 0,
            width_shift: INIT_WIDTH_SHIFT,
            in_ring: 0,
            epoch_end: (1u128 << INIT_WIDTH_SHIFT) * RING_BUCKETS as u128,
            far: Vec::new(),
            seq: 0,
            popped: 0,
            last_popped: None,
        }
    }

    #[inline]
    fn width(&self) -> u64 {
        1u64 << self.width_shift
    }

    /// End of the current bucket (exclusive), in u128 so `u64::MAX`
    /// timestamps never saturate into an off-by-one.
    #[inline]
    fn cur_end(&self) -> u128 {
        u128::from(self.base) + u128::from(self.width())
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let t = u128::from(time.as_ns());
        if t < self.cur_end() {
            // Due inside (or before) the bucket being drained — including
            // pushes into the past, which must pop next. `cur` is sorted
            // descending by (time, seq); this seq is the largest ever
            // issued, so the insertion point is found by time alone and
            // lands after any equal-time entries (FIFO).
            let key = (time, seq);
            let idx = self.cur.partition_point(|&(et, es, _)| (et, es) > key);
            self.cur.insert(idx, (time, seq, event));
        } else if t < self.epoch_end {
            // Within the frozen epoch window: `base` has advanced k
            // buckets into the epoch, so the offset is < RING_BUCKETS - k
            // and the slot never laps the drain position.
            let offset = ((time.as_ns() - self.base) >> self.width_shift) as usize;
            debug_assert!((1..RING_BUCKETS).contains(&offset));
            let slot = (self.ring_pos + offset) & (RING_BUCKETS - 1);
            self.ring[slot].push((time, seq, event));
            self.in_ring += 1;
        } else {
            self.far.push((time, seq, event));
        }
    }

    /// Ensures `cur` holds the next events to pop, advancing the ring
    /// window and re-seeding from the spill ladder as needed. Returns
    /// `false` when the queue is empty.
    fn refill(&mut self) -> bool {
        if !self.cur.is_empty() {
            return true;
        }
        if self.in_ring > 0 {
            // Advance to the next non-empty bucket. Bounded by the ring
            // size, and each step is a length check on a contiguous Vec.
            loop {
                self.ring_pos = (self.ring_pos + 1) & (RING_BUCKETS - 1);
                self.base = self.base.saturating_add(self.width());
                if !self.ring[self.ring_pos].is_empty() {
                    break;
                }
            }
            let mut batch = std::mem::take(&mut self.ring[self.ring_pos]);
            self.in_ring -= batch.len();
            batch.sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
            self.cur = batch;
            return true;
        }
        if self.far.is_empty() {
            return false;
        }
        self.reseed_from_far();
        true
    }

    /// Re-anchors the window at the earliest far event, re-adapting the
    /// bucket width to the observed span, and redistributes the ladder.
    fn reseed_from_far(&mut self) {
        let (mut min_t, mut max_t) = (u64::MAX, 0u64);
        for &(t, _, _) in &self.far {
            let ns = t.as_ns();
            min_t = min_t.min(ns);
            max_t = max_t.max(ns);
        }
        // Aim to spread the span over about half the ring; any width is
        // correct (buckets are sorted when drained), wider just batches
        // more events per sort.
        let span = max_t - min_t;
        let target = (span / (RING_BUCKETS as u64 / 2)).max(1);
        self.width_shift =
            (64 - (target - 1).leading_zeros()).clamp(INIT_WIDTH_SHIFT, MAX_WIDTH_SHIFT);
        self.base = min_t & !(self.width() - 1);
        self.ring_pos = 0;
        self.epoch_end = u128::from(self.base) + u128::from(self.width()) * RING_BUCKETS as u128;
        let cur_end = self.cur_end();
        let epoch_end = self.epoch_end;
        let mut batch = Vec::new();
        let mut keep = Vec::new();
        for (time, seq, event) in self.far.drain(..) {
            let t = u128::from(time.as_ns());
            if t < cur_end {
                batch.push((time, seq, event));
            } else if t < epoch_end {
                let offset = ((time.as_ns() - self.base) >> self.width_shift) as usize;
                let slot = (self.ring_pos + offset) & (RING_BUCKETS - 1);
                self.ring[slot].push((time, seq, event));
                self.in_ring += 1;
            } else {
                keep.push((time, seq, event));
            }
        }
        self.far = keep;
        debug_assert!(!batch.is_empty(), "min far event must land in the window");
        batch.sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
        self.cur = batch;
    }

    #[inline]
    fn take_head(&mut self) -> (SimTime, E) {
        let (t, _, e) = self.cur.pop().expect("refill guaranteed a head");
        self.popped += 1;
        self.last_popped = Some(t);
        (t, e)
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.refill() {
            return None;
        }
        Some(self.take_head())
    }

    /// Pops the earliest event only if its timestamp is at or before
    /// `limit` — a combined head-compare-and-pop, so a deadline-bounded
    /// caller touches the head once per event instead of peeking and then
    /// popping. See [`PopIfBefore`].
    pub fn pop_if_before(&mut self, limit: SimTime) -> PopIfBefore<E> {
        if !self.refill() {
            return PopIfBefore::Empty;
        }
        let head = self.cur.last().expect("refill guaranteed a head").0;
        if head > limit {
            return PopIfBefore::Deferred(head);
        }
        let (t, e) = self.take_head();
        PopIfBefore::Popped(t, e)
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(&(t, _, _)) = self.cur.last() {
            return Some(t);
        }
        if self.in_ring > 0 {
            for step in 1..=RING_BUCKETS {
                let slot = (self.ring_pos + step) & (RING_BUCKETS - 1);
                if let Some(t) = self.ring[slot].iter().map(|&(t, _, _)| t).min() {
                    return Some(t);
                }
            }
        }
        self.far.iter().map(|&(t, _, _)| t).min()
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.cur.len() + self.in_ring + self.far.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (a simulator "event count" metric).
    pub fn pushed(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever popped. Invariant checkers compare this
    /// against [`CalendarQueue::pushed`] at end of run: a drained queue
    /// must have popped exactly what was pushed.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the most recently popped event, if any — the queue-side
    /// record of the simulation clock, for monotonicity checks.
    pub fn last_popped(&self) -> Option<SimTime> {
        self.last_popped
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.cur.clear();
        for b in &mut self.ring {
            b.clear();
        }
        self.in_ring = 0;
        self.far.clear();
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit suite runs generically over both implementations; the
    // module-level tests pin the shared behaviour on whichever one is the
    // crate-wide `EventQueue`, and `both_agree_*` cases below drive the
    // pair directly (the full adversarial suite is tests/queue_diff.rs).
    use crate::EventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_equal_and_distinct_times() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), "a5");
        q.push(SimTime::from_ns(1), "a1");
        q.push(SimTime::from_ns(5), "b5");
        q.push(SimTime::from_ns(1), "b1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a1", "b1", "a5", "b5"]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pushed_counts_all_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    fn popped_and_last_popped_track_consumption() {
        let mut q = EventQueue::new();
        assert_eq!(q.popped(), 0);
        assert_eq!(q.last_popped(), None);
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(20), 'b');
        q.pop();
        assert_eq!(q.popped(), 1);
        assert_eq!(q.last_popped(), Some(SimTime::from_ns(10)));
        q.pop();
        assert_eq!(q.popped(), 2);
        assert_eq!(q.last_popped(), Some(SimTime::from_ns(20)));
        assert_eq!(q.popped(), q.pushed());
        q.pop();
        assert_eq!(q.popped(), 2); // empty pop does not count
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_if_before_pops_at_or_before_limit_only() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(20), 'b');
        assert_eq!(
            q.pop_if_before(SimTime::from_ns(10)),
            PopIfBefore::Popped(SimTime::from_ns(10), 'a')
        );
        assert_eq!(
            q.pop_if_before(SimTime::from_ns(19)),
            PopIfBefore::Deferred(SimTime::from_ns(20))
        );
        assert_eq!(q.len(), 1); // deferred pop left the queue untouched
        assert_eq!(q.popped(), 1);
        assert_eq!(
            q.pop_if_before(SimTime::MAX),
            PopIfBefore::Popped(SimTime::from_ns(20), 'b')
        );
        assert_eq!(q.pop_if_before(SimTime::MAX), PopIfBefore::Empty);
    }

    #[test]
    fn far_future_spill_and_reseed() {
        let mut q = CalendarQueue::new();
        // Far beyond the initial ring window (64ns × 512 buckets).
        q.push(SimTime::from_ms(500), 'z');
        q.push(SimTime::from_ns(3), 'a');
        q.push(SimTime::from_ms(400), 'y');
        q.push(SimTime::from_ms(400), 'w'); // same far timestamp: FIFO
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((SimTime::from_ns(3), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_ms(400), 'y')));
        assert_eq!(q.pop(), Some((SimTime::from_ms(400), 'w')));
        assert_eq!(q.pop(), Some((SimTime::from_ms(500), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn extreme_timestamps_terminate() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::MAX, 'm');
        q.push(SimTime::ZERO, 'z');
        q.push(SimTime::from_ns(u64::MAX - 1), 'n');
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 'z')));
        assert_eq!(q.pop(), Some((SimTime::from_ns(u64::MAX - 1), 'n')));
        assert_eq!(q.pop(), Some((SimTime::MAX, 'm')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_into_the_past_pops_next() {
        // The heap allows scheduling before the last popped time; the
        // calendar must match (non-monotonic inserts land in `cur`).
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_ns(100), 'b');
        assert_eq!(q.pop(), Some((SimTime::from_ns(100), 'b')));
        q.push(SimTime::from_ns(5), 'a');
        q.push(SimTime::from_us(90), 'c'); // ring range
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_us(90), 'c')));
    }

    #[test]
    fn both_agree_on_a_monotonic_engine_stream() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for i in 0..64u64 {
            cal.push(SimTime::from_ns(i % 7), i);
            heap.push(SimTime::from_ns(i % 7), i);
        }
        for i in 0..10_000u64 {
            let a = cal.pop().unwrap();
            let b = heap.pop().unwrap();
            assert_eq!(a, b);
            let t = a.0 + SimTime::from_ns((a.1 * 2654435761) % 4096 + 1);
            cal.push(t, i);
            heap.push(t, i);
        }
        assert_eq!(cal.len(), heap.len());
        assert_eq!(cal.peek_time(), heap.peek_time());
    }
}
