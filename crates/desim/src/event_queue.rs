//! Timestamped event queue with stable tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A min-ordered queue of `(SimTime, E)` events.
///
/// Events scheduled for the same instant are popped in the order they were
/// pushed (FIFO within a timestamp). This stability is what makes entire
/// simulations built on this queue deterministic: no behaviour ever depends
/// on heap-internal ordering.
///
/// # Example
///
/// ```
/// use spasm_desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), 'b');
/// q.push(SimTime::from_ns(1), 'a');
/// assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), 'a')));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    last_popped: Option<SimTime>,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) out first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            last_popped: None,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            self.last_popped = Some(e.time);
            (e.time, e.event)
        })
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (a simulator "event count" metric).
    pub fn pushed(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever popped. Invariant checkers compare this
    /// against [`EventQueue::pushed`] at end of run: a drained queue must
    /// have popped exactly what was pushed.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the most recently popped event, if any — the queue-side
    /// record of the simulation clock, for monotonicity checks.
    pub fn last_popped(&self) -> Option<SimTime> {
        self.last_popped
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_equal_and_distinct_times() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), "a5");
        q.push(SimTime::from_ns(1), "a1");
        q.push(SimTime::from_ns(5), "b5");
        q.push(SimTime::from_ns(1), "b1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a1", "b1", "a5", "b5"]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pushed_counts_all_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    fn popped_and_last_popped_track_consumption() {
        let mut q = EventQueue::new();
        assert_eq!(q.popped(), 0);
        assert_eq!(q.last_popped(), None);
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(20), 'b');
        q.pop();
        assert_eq!(q.popped(), 1);
        assert_eq!(q.last_popped(), Some(SimTime::from_ns(10)));
        q.pop();
        assert_eq!(q.popped(), 2);
        assert_eq!(q.last_popped(), Some(SimTime::from_ns(20)));
        assert_eq!(q.popped(), q.pushed());
        q.pop();
        assert_eq!(q.popped(), 2); // empty pop does not count
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
