//! Simulation processes as OS-thread coroutines.
//!
//! The paper's SPASM simulator is *execution-driven*: application code
//! actually executes, and only operations that may touch the network are
//! simulated. We reproduce that structure by running each simulated
//! processor's program as a real OS thread that **rendezvouses** with the
//! single-threaded simulator:
//!
//! * exactly one process thread is runnable at any instant — the simulator
//!   resumes a process by sending it a response, then blocks until that
//!   process either issues its next request or finishes;
//! * consequently the interleaving of processes is chosen entirely by the
//!   simulator's event queue, and simulations are fully deterministic;
//! * application code is ordinary blocking Rust: control flow may depend on
//!   values computed from shared data (dynamic task queues, sparse
//!   structures), which is exactly what makes execution-driven simulation
//!   more faithful than trace-driven simulation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// Identifier of a simulated processor / simulation process.
pub type ProcId = usize;

/// What a resumed process did with its time slice.
#[derive(Debug)]
pub enum Step<Q> {
    /// The process issued a request and is blocked awaiting the response.
    Request(Q),
    /// The process's body returned normally.
    Done,
    /// The process's body panicked; the payload is the panic message.
    Panicked(String),
}

enum Envelope<Q> {
    Request(ProcId, Q),
    Done(ProcId),
    Panicked(ProcId, String),
}

/// The process-side handle used to issue simulation requests.
///
/// Passed to each process body; [`CoroCtx::call`] blocks the process (in
/// real time) until the simulator responds (in simulated time).
#[derive(Debug)]
pub struct CoroCtx<Q, R> {
    me: ProcId,
    tx: SyncSender<Envelope<Q>>,
    rx: Receiver<R>,
}

impl<Q, R> CoroCtx<Q, R> {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.me
    }

    /// Issues `req` to the simulator and blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Unwinds (terminating the process body) if the simulator has shut
    /// down. [`CoroPool`]'s drop handler triggers exactly this to unwind
    /// any still-blocked process threads; the unwind uses
    /// [`std::panic::resume_unwind`] with a private `Shutdown` token, so
    /// it never reaches the global panic hook (no spurious backtraces) and
    /// is caught silently by the pool's thread wrapper.
    pub fn call(&self, req: Q) -> R {
        if self.tx.send(Envelope::Request(self.me, req)).is_err() {
            std::panic::resume_unwind(Box::new(Shutdown));
        }
        match self.rx.recv() {
            Ok(resp) => resp,
            Err(_) => std::panic::resume_unwind(Box::new(Shutdown)),
        }
    }
}

/// Private unwind token for simulator-initiated shutdown of a blocked
/// process thread. Not a real panic: bypasses the panic hook.
struct Shutdown;

#[derive(Debug)]
struct ProcSlot<R> {
    tx: SyncSender<R>,
    handle: Option<JoinHandle<()>>,
    live: bool,
}

/// A pool of simulation processes in rendezvous with the simulator.
///
/// Type parameters: `Q` is the request type processes send to the
/// simulator; `R` is the response type the simulator sends back.
///
/// # Protocol
///
/// Each process starts parked. The simulator calls [`CoroPool::resume`] with
/// a response value; the process runs until it issues its next request via
/// [`CoroCtx::call`] (returned as [`Step::Request`]), returns
/// ([`Step::Done`]) or panics ([`Step::Panicked`]). The very first `resume`
/// of a process delivers its "start" response.
///
/// # Example
///
/// ```
/// use spasm_desim::{CoroPool, Step};
///
/// // Processes that ask the simulator to double numbers.
/// let mut pool: CoroPool<u64, u64> = CoroPool::new(2, |id, ctx| {
///     let doubled = ctx.call(id as u64 + 1);
///     assert_eq!(doubled, (id as u64 + 1) * 2);
/// });
/// for p in 0..2 {
///     // First resume: the "start" value is ignored by `call`-side code.
///     let req = match pool.resume(p, 0) {
///         Step::Request(q) => q,
///         other => panic!("expected request, got {other:?}"),
///     };
///     assert!(matches!(pool.resume(p, req * 2), Step::Done));
/// }
/// ```
#[derive(Debug)]
pub struct CoroPool<Q, R> {
    slots: Vec<ProcSlot<R>>,
    rx: Receiver<Envelope<Q>>,
}

impl<Q, R> CoroPool<Q, R>
where
    Q: Send + 'static,
    R: Send + 'static,
{
    /// Spawns `n` process threads, each running `body(proc_id, ctx)`.
    ///
    /// Processes are parked until their first [`CoroPool::resume`].
    pub fn new<F>(n: usize, body: F) -> Self
    where
        F: Fn(ProcId, &CoroCtx<Q, R>) + Send + Sync + Clone + 'static,
    {
        Self::from_bodies((0..n).map(|_| body.clone()).collect::<Vec<_>>())
    }

    /// Spawns one process per element of `bodies`.
    ///
    /// Unlike [`CoroPool::new`], each process can have a distinct body
    /// (closure), which is how per-processor application kernels are built.
    pub fn from_bodies<F>(bodies: Vec<F>) -> Self
    where
        F: FnOnce(ProcId, &CoroCtx<Q, R>) + Send + 'static,
    {
        let (env_tx, env_rx) = sync_channel::<Envelope<Q>>(bodies.len().max(1));
        let mut slots = Vec::with_capacity(bodies.len());
        for (id, body) in bodies.into_iter().enumerate() {
            // Rendezvous channel: the process blocks until resumed.
            let (resp_tx, resp_rx) = sync_channel::<R>(1);
            let env_tx = env_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sim-proc-{id}"))
                .spawn(move || {
                    // Park until the simulator's first resume.
                    let Ok(_start) = resp_rx.recv() else {
                        return; // simulator dropped before starting us
                    };
                    let ctx = CoroCtx {
                        me: id,
                        tx: env_tx.clone(),
                        rx: resp_rx,
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| body(id, &ctx)));
                    // If the simulator is gone these sends fail; that is the
                    // normal shutdown path and the error is ignored.
                    let _ = match result {
                        Ok(()) => env_tx.send(Envelope::Done(id)),
                        Err(payload) => {
                            // Teardown-induced unwinds (simulator dropped
                            // the response channel mid-call) are normal
                            // shutdown, not application panics.
                            if payload.is::<Shutdown>() {
                                return;
                            }
                            let msg = panic_message(payload.as_ref());
                            env_tx.send(Envelope::Panicked(id, msg))
                        }
                    };
                })
                .expect("spawn simulation process thread");
            slots.push(ProcSlot {
                tx: resp_tx,
                handle: Some(handle),
                live: true,
            });
        }
        CoroPool { slots, rx: env_rx }
    }

    /// Number of processes in the pool.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the pool has no processes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resumes process `proc` with response `resp` and waits for its next
    /// action.
    ///
    /// # Panics
    ///
    /// Panics if `proc` already finished (resuming a dead process is a
    /// simulator logic error) or if the process thread vanished without
    /// reporting (should be impossible).
    pub fn resume(&mut self, proc: ProcId, resp: R) -> Step<Q> {
        let slot = &mut self.slots[proc];
        assert!(slot.live, "resumed process {proc} after it finished");
        slot.tx.send(resp).expect("process thread vanished");
        // Only `proc` is runnable, so the next envelope must be from it.
        match self.rx.recv().expect("process thread vanished") {
            Envelope::Request(p, q) => {
                debug_assert_eq!(p, proc, "request from unexpected process");
                Step::Request(q)
            }
            Envelope::Done(p) => {
                debug_assert_eq!(p, proc);
                self.retire(proc);
                Step::Done
            }
            Envelope::Panicked(p, msg) => {
                debug_assert_eq!(p, proc);
                self.retire(proc);
                Step::Panicked(msg)
            }
        }
    }

    fn retire(&mut self, proc: ProcId) {
        let slot = &mut self.slots[proc];
        slot.live = false;
        if let Some(h) = slot.handle.take() {
            let _ = h.join();
        }
    }

    /// Returns `true` if `proc` has not yet finished.
    pub fn is_live(&self, proc: ProcId) -> bool {
        self.slots[proc].live
    }
}

impl<Q, R> Drop for CoroPool<Q, R> {
    fn drop(&mut self) {
        // Unblock any process still parked in `call`: dropping the response
        // sender makes its recv fail, which unwinds the body thread.
        for slot in &mut self.slots {
            // Replace the sender with a dead one by dropping ours.
            let (dead_tx, _dead_rx) = sync_channel::<R>(1);
            let real_tx = std::mem::replace(&mut slot.tx, dead_tx);
            drop(real_tx);
            if let Some(h) = slot.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::type_complexity)]
mod tests {
    use super::*;

    #[test]
    fn single_process_request_response_cycle() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, ctx| {
            let a = ctx.call(10);
            let b = ctx.call(a + 1);
            assert_eq!(b, 22);
        });
        let q = match pool.resume(0, 0) {
            Step::Request(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q, 10);
        let q = match pool.resume(0, 11) {
            Step::Request(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q, 12);
        assert!(matches!(pool.resume(0, 22), Step::Done));
        assert!(!pool.is_live(0));
    }

    #[test]
    fn many_processes_interleave_deterministically() {
        let n = 8;
        let mut pool: CoroPool<usize, usize> = CoroPool::new(n, |id, ctx| {
            for round in 0..3 {
                let echoed = ctx.call(id * 100 + round);
                assert_eq!(echoed, id * 100 + round);
            }
        });
        // Drive round-robin; every request must come from the resumed proc.
        let mut pending: Vec<Option<usize>> = vec![None; n];
        for p in 0..n {
            if let Step::Request(q) = pool.resume(p, 0) {
                pending[p] = Some(q);
            }
        }
        let mut done = 0;
        while done < n {
            done = 0;
            for p in 0..n {
                if let Some(q) = pending[p].take() {
                    match pool.resume(p, q) {
                        Step::Request(q2) => pending[p] = Some(q2),
                        Step::Done => {}
                        Step::Panicked(m) => panic!("{m}"),
                    }
                }
                if !pool.is_live(p) {
                    done += 1;
                }
            }
        }
    }

    #[test]
    fn distinct_bodies_per_process() {
        let bodies: Vec<Box<dyn FnOnce(ProcId, &CoroCtx<u32, u32>) + Send>> = vec![
            Box::new(|_, ctx| {
                ctx.call(1);
            }),
            Box::new(|_, ctx| {
                ctx.call(2);
            }),
        ];
        let mut pool = CoroPool::from_bodies(bodies);
        match pool.resume(0, 0) {
            Step::Request(1) => {}
            other => panic!("{other:?}"),
        }
        match pool.resume(1, 0) {
            Step::Request(2) => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(pool.resume(0, 0), Step::Done));
        assert!(matches!(pool.resume(1, 0), Step::Done));
    }

    #[test]
    fn panicking_body_is_reported_not_propagated() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, _| {
            panic!("deliberate test panic");
        });
        match pool.resume(0, 0) {
            Step::Panicked(msg) => assert!(msg.contains("deliberate test panic")),
            other => panic!("{other:?}"),
        }
        assert!(!pool.is_live(0));
    }

    #[test]
    fn body_returning_without_requests_is_done_immediately() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, _| {});
        assert!(matches!(pool.resume(0, 0), Step::Done));
    }

    #[test]
    fn dropping_pool_with_blocked_processes_does_not_hang() {
        let pool: CoroPool<u32, u32> = CoroPool::new(4, |_, ctx| {
            // Processes immediately block on their first call; the pool is
            // dropped while they are blocked.
            let _ = ctx.call(0);
            unreachable!("never resumed");
        });
        let mut pool = pool;
        // Start them so they are genuinely parked inside `call`.
        for p in 0..4 {
            match pool.resume(p, 0) {
                Step::Request(_) => {}
                other => panic!("{other:?}"),
            }
        }
        drop(pool); // must not deadlock or panic
    }

    #[test]
    fn proc_id_visible_to_body() {
        let mut pool: CoroPool<usize, usize> = CoroPool::new(3, |id, ctx| {
            assert_eq!(ctx.id(), id);
            ctx.call(id);
        });
        for p in 0..3 {
            match pool.resume(p, 0) {
                Step::Request(q) => assert_eq!(q, p),
                other => panic!("{other:?}"),
            }
        }
    }
}
