//! Simulation processes as OS-thread coroutines.
//!
//! The paper's SPASM simulator is *execution-driven*: application code
//! actually executes, and only operations that may touch the network are
//! simulated. We reproduce that structure by running each simulated
//! processor's program as a real OS thread that **rendezvouses** with the
//! single-threaded simulator:
//!
//! * exactly one process thread is runnable at any instant — the simulator
//!   resumes a process by sending it a response, then blocks until that
//!   process either issues its next request or finishes;
//! * consequently the interleaving of processes is chosen entirely by the
//!   simulator's event queue, and simulations are fully deterministic;
//! * application code is ordinary blocking Rust: control flow may depend on
//!   values computed from shared data (dynamic task queues, sparse
//!   structures), which is exactly what makes execution-driven simulation
//!   more faithful than trace-driven simulation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Single-slot rendezvous channel
// ---------------------------------------------------------------------------
//
// The simulator↔process handoff is the hottest edge in the whole stack:
// every simulated memory operation crosses it twice (request out,
// response in). `std::sync::mpsc` channels park the receiving thread on
// every recv, which costs a futex sleep + wake syscall pair per crossing.
// But a rendezvous has a special shape — exactly one value is ever in
// flight, and the peer is about to produce it — so a single-slot channel
// that briefly spins and yields before parking completes most handoffs
// with no syscall beyond the scheduler's own context switch.
//
// Protocol safety: `waiting` is only set by the receiver while holding
// the lock, and `Condvar::wait` releases that lock atomically, so a
// sender that sees `waiting == true` knows the receiver is (or is about
// to be) parked and a `notify_one` cannot be lost. A sender that sees
// `waiting == false` skips the notify entirely — the receiver is in its
// spin/yield phase and will observe the value on its next lock.

/// Spin-then-yield budget before parking on the condvar. The first few
/// iterations use `spin_loop` (cheap, helps when the peer runs on another
/// core); the rest call `yield_now`, which on a loaded or single-CPU host
/// donates the timeslice straight to the peer thread.
const SPIN_ROUNDS: u32 = 16;
const YIELD_ROUNDS: u32 = 4;

struct Slot<T> {
    value: Option<T>,
    waiting: bool,
    closed: bool,
}

struct Chan<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
    /// Bumped under the lock on every deposit/close. Receivers spin on
    /// this instead of taking the lock each round; a change guarantees
    /// the next locked check finds the value (or the close flag).
    gen: AtomicU32,
}

struct Sender<T>(Arc<Chan<T>>);

struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

// Bound-free Debug (like mpsc's endpoints): the payload is opaque.
impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        slot: Mutex::new(Slot {
            value: None,
            waiting: false,
            closed: false,
        }),
        cv: Condvar::new(),
        gen: AtomicU32::new(0),
    });
    (Sender(Arc::clone(&chan)), Receiver { chan })
}

impl<T> Chan<T> {
    fn close(&self) {
        let mut s = self.slot.lock().expect("rendezvous lock poisoned");
        s.closed = true;
        self.gen.fetch_add(1, Ordering::Release);
        self.cv.notify_all();
    }
}

impl<T> Sender<T> {
    /// Deposits `value` for the receiver. Errors (returning the value)
    /// if the channel is closed. The rendezvous protocol guarantees the
    /// slot is empty: only one value is ever in flight per channel.
    fn send(&self, value: T) -> Result<(), T> {
        let mut s = self.0.slot.lock().expect("rendezvous lock poisoned");
        if s.closed {
            return Err(value);
        }
        assert!(
            s.value.is_none(),
            "rendezvous protocol violation: slot full"
        );
        s.value = Some(value);
        self.0.gen.fetch_add(1, Ordering::Release);
        if s.waiting {
            self.0.cv.notify_one();
        }
        Ok(())
    }

    /// Closes the channel, waking and erroring any parked receiver.
    fn close(&self) {
        self.0.close();
    }
}

impl<T> Clone for Sender<T> {
    // Cloning shares the channel; dropping a clone does NOT close it
    // (the env channel has one sender per process thread).
    fn clone(&self) -> Self {
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Receiver<T> {
    /// One locked inspection of the slot. `Some(result)` if a value or
    /// close was found; `None` (plus the generation observed under the
    /// lock) if the slot is still empty.
    fn try_take(&self) -> Result<Result<T, ()>, u32> {
        let mut s = self.chan.slot.lock().expect("rendezvous lock poisoned");
        if let Some(v) = s.value.take() {
            return Ok(Ok(v));
        }
        if s.closed {
            return Ok(Err(()));
        }
        // `gen` only changes under this lock, so the value read here is
        // exact: any later bump means a deposit or close we have not seen.
        Err(self.chan.gen.load(Ordering::Acquire))
    }

    /// Blocks until a value arrives or the channel closes, parking on the
    /// condvar once the spin/yield budget runs out. Used by process
    /// threads: their next resume may be arbitrarily far in the future
    /// (other processes run first), so they must eventually sleep.
    fn recv(&self) -> Result<T, ()> {
        let gen0 = match self.try_take() {
            Ok(done) => return done,
            Err(g) => g,
        };
        // Fast path: watch the generation hint without touching the lock.
        for round in 0..(SPIN_ROUNDS + YIELD_ROUNDS) {
            if self.chan.gen.load(Ordering::Acquire) != gen0 {
                if let Ok(done) = self.try_take() {
                    return done;
                }
                unreachable!("generation advanced but slot empty and open");
            }
            if round < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Slow path: park until the sender notifies.
        let mut s = self.chan.slot.lock().expect("rendezvous lock poisoned");
        loop {
            if let Some(v) = s.value.take() {
                return Ok(v);
            }
            if s.closed {
                return Err(());
            }
            s.waiting = true;
            s = self.chan.cv.wait(s).expect("rendezvous lock poisoned");
            s.waiting = false;
        }
    }

    /// Like [`Receiver::recv`] but never parks: spins and donates
    /// timeslices until the value arrives. Used by the simulator while
    /// awaiting the envelope from the one process it just resumed — that
    /// process is the only runnable peer and always replies, so parking
    /// would only add a futex sleep/wake pair to every rendezvous.
    fn recv_spin(&self) -> Result<T, ()> {
        let gen0 = match self.try_take() {
            Ok(done) => return done,
            Err(g) => g,
        };
        let mut round = 0u32;
        loop {
            if self.chan.gen.load(Ordering::Acquire) != gen0 {
                if let Ok(done) = self.try_take() {
                    return done;
                }
                unreachable!("generation advanced but slot empty and open");
            }
            if round < SPIN_ROUNDS {
                round += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    // A vanished receiver must fail subsequent sends (the simulator
    // treats that as "process thread vanished").
    fn drop(&mut self) {
        self.chan.close();
    }
}

/// Identifier of a simulated processor / simulation process.
pub type ProcId = usize;

/// What a resumed process did with its time slice.
#[derive(Debug)]
pub enum Step<Q> {
    /// The process issued a request and is blocked awaiting the response.
    Request(Q),
    /// The process's body returned normally.
    Done,
    /// The process's body panicked; the payload is the panic message.
    Panicked(String),
}

enum Envelope<Q> {
    Request(ProcId, Q),
    Done(ProcId),
    Panicked(ProcId, String),
}

/// The process-side handle used to issue simulation requests.
///
/// Passed to each process body; [`CoroCtx::call`] blocks the process (in
/// real time) until the simulator responds (in simulated time).
#[derive(Debug)]
pub struct CoroCtx<Q, R> {
    me: ProcId,
    tx: Sender<Envelope<Q>>,
    rx: Receiver<R>,
}

impl<Q, R> CoroCtx<Q, R> {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.me
    }

    /// Issues `req` to the simulator and blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Unwinds (terminating the process body) if the simulator has shut
    /// down. [`CoroPool`]'s drop handler triggers exactly this to unwind
    /// any still-blocked process threads; the unwind uses
    /// [`std::panic::resume_unwind`] with a private `Shutdown` token, so
    /// it never reaches the global panic hook (no spurious backtraces) and
    /// is caught silently by the pool's thread wrapper.
    pub fn call(&self, req: Q) -> R {
        if self.tx.send(Envelope::Request(self.me, req)).is_err() {
            std::panic::resume_unwind(Box::new(Shutdown));
        }
        match self.rx.recv() {
            Ok(resp) => resp,
            Err(()) => std::panic::resume_unwind(Box::new(Shutdown)),
        }
    }
}

/// Private unwind token for simulator-initiated shutdown of a blocked
/// process thread. Not a real panic: bypasses the panic hook.
struct Shutdown;

#[derive(Debug)]
struct ProcSlot<Q, R> {
    tx: Sender<R>,
    /// This process's private envelope channel. One channel per process
    /// (rather than one shared by the pool) so several processes can have
    /// deposited envelopes at once — the optimistic engine resumes many
    /// processes speculatively and collects their envelopes later, which
    /// would overfill a single shared rendezvous slot.
    env: Receiver<Envelope<Q>>,
    handle: Option<JoinHandle<()>>,
    live: bool,
}

/// A pool of simulation processes in rendezvous with the simulator.
///
/// Type parameters: `Q` is the request type processes send to the
/// simulator; `R` is the response type the simulator sends back.
///
/// # Protocol
///
/// Each process starts parked. The simulator calls [`CoroPool::resume`] with
/// a response value; the process runs until it issues its next request via
/// [`CoroCtx::call`] (returned as [`Step::Request`]), returns
/// ([`Step::Done`]) or panics ([`Step::Panicked`]). The very first `resume`
/// of a process delivers its "start" response.
///
/// # Example
///
/// ```
/// use spasm_desim::{CoroPool, Step};
///
/// // Processes that ask the simulator to double numbers.
/// let mut pool: CoroPool<u64, u64> = CoroPool::new(2, |id, ctx| {
///     let doubled = ctx.call(id as u64 + 1);
///     assert_eq!(doubled, (id as u64 + 1) * 2);
/// });
/// for p in 0..2 {
///     // First resume: the "start" value is ignored by `call`-side code.
///     let req = match pool.resume(p, 0) {
///         Step::Request(q) => q,
///         other => panic!("expected request, got {other:?}"),
///     };
///     assert!(matches!(pool.resume(p, req * 2), Step::Done));
/// }
/// ```
#[derive(Debug)]
pub struct CoroPool<Q, R> {
    slots: Vec<ProcSlot<Q, R>>,
}

impl<Q, R> CoroPool<Q, R>
where
    Q: Send + 'static,
    R: Send + 'static,
{
    /// Spawns `n` process threads, each running `body(proc_id, ctx)`.
    ///
    /// Processes are parked until their first [`CoroPool::resume`].
    pub fn new<F>(n: usize, body: F) -> Self
    where
        F: Fn(ProcId, &CoroCtx<Q, R>) + Send + Sync + Clone + 'static,
    {
        Self::from_bodies((0..n).map(|_| body.clone()).collect::<Vec<_>>())
    }

    /// Spawns one process per element of `bodies`.
    ///
    /// Unlike [`CoroPool::new`], each process can have a distinct body
    /// (closure), which is how per-processor application kernels are built.
    pub fn from_bodies<F>(bodies: Vec<F>) -> Self
    where
        F: FnOnce(ProcId, &CoroCtx<Q, R>) + Send + 'static,
    {
        let slots = bodies
            .into_iter()
            .enumerate()
            .map(|(id, body)| Self::spawn_proc(id, body))
            .collect();
        CoroPool { slots }
    }

    /// Spawns one process thread with fresh rendezvous channels.
    fn spawn_proc<F>(id: ProcId, body: F) -> ProcSlot<Q, R>
    where
        F: FnOnce(ProcId, &CoroCtx<Q, R>) + Send + 'static,
    {
        // Rendezvous channels: the process blocks until resumed, and its
        // envelopes land in a slot only the simulator reads.
        let (resp_tx, resp_rx) = channel::<R>();
        let (env_tx, env_rx) = channel::<Envelope<Q>>();
        let handle = std::thread::Builder::new()
            .name(format!("sim-proc-{id}"))
            .spawn(move || {
                // Park until the simulator's first resume.
                let Ok(_start) = resp_rx.recv() else {
                    return; // simulator dropped before starting us
                };
                let ctx = CoroCtx {
                    me: id,
                    tx: env_tx.clone(),
                    rx: resp_rx,
                };
                let result = catch_unwind(AssertUnwindSafe(|| body(id, &ctx)));
                // If the simulator is gone these sends fail; that is the
                // normal shutdown path and the error is ignored.
                let _ = match result {
                    Ok(()) => env_tx.send(Envelope::Done(id)),
                    Err(payload) => {
                        // Teardown-induced unwinds (simulator dropped
                        // the response channel mid-call) are normal
                        // shutdown, not application panics.
                        if payload.is::<Shutdown>() {
                            return;
                        }
                        let msg = panic_message(payload.as_ref());
                        env_tx.send(Envelope::Panicked(id, msg))
                    }
                };
            })
            .expect("spawn simulation process thread");
        ProcSlot {
            tx: resp_tx,
            env: env_rx,
            handle: Some(handle),
            live: true,
        }
    }

    /// Number of processes in the pool.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the pool has no processes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resumes process `proc` with response `resp` and waits for its next
    /// action.
    ///
    /// # Panics
    ///
    /// Panics if `proc` already finished (resuming a dead process is a
    /// simulator logic error) or if the process thread vanished without
    /// reporting (should be impossible).
    pub fn resume(&mut self, proc: ProcId, resp: R) -> Step<Q> {
        self.resume_async(proc, resp);
        self.collect(proc)
    }

    /// Delivers response `resp` to process `proc` without waiting for its
    /// next envelope. The process becomes runnable and will deposit its
    /// next envelope whenever the OS schedules it; pair with
    /// [`CoroPool::collect`] to retrieve it.
    ///
    /// This is the speculation primitive: an optimistic simulator can make
    /// several processes runnable at once and only synchronize with each
    /// when its envelope is actually needed, amortizing context switches
    /// across the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `proc` already finished or its thread vanished.
    pub fn resume_async(&mut self, proc: ProcId, resp: R) {
        let slot = &mut self.slots[proc];
        assert!(slot.live, "resumed process {proc} after it finished");
        assert!(slot.tx.send(resp).is_ok(), "process thread vanished");
    }

    /// Waits for the envelope from a previously resumed process `proc`.
    ///
    /// Spins rather than parks: the process is runnable and about to
    /// deposit (or already has). Exactly one `collect` must follow each
    /// [`CoroPool::resume_async`].
    ///
    /// # Panics
    ///
    /// Panics if the process thread vanished without reporting.
    pub fn collect(&mut self, proc: ProcId) -> Step<Q> {
        match self.slots[proc].env.recv_spin() {
            Ok(Envelope::Request(p, q)) => {
                debug_assert_eq!(p, proc, "request from unexpected process");
                Step::Request(q)
            }
            Ok(Envelope::Done(p)) => {
                debug_assert_eq!(p, proc);
                self.retire(proc);
                Step::Done
            }
            Ok(Envelope::Panicked(p, msg)) => {
                debug_assert_eq!(p, proc);
                self.retire(proc);
                Step::Panicked(msg)
            }
            Err(()) => panic!("process thread vanished"),
        }
    }

    /// Forcibly terminates process `proc`, discarding whatever it was
    /// doing. Closing the response channel unwinds the thread out of its
    /// next (or current) `call`; any envelope it deposited before dying is
    /// drained and discarded.
    ///
    /// This is the rollback primitive: a mis-speculated process cannot be
    /// "rewound", so the optimistic simulator kills it and respawns a
    /// fresh body, replaying the committed response history. The slot goes
    /// dead until [`CoroPool::respawn`].
    ///
    /// Note the thread is *joined*: a body spinning forever in pure
    /// computation (never calling the simulator) would hang this join.
    /// Simulation kernels always issue requests, so this is accepted.
    pub fn kill(&mut self, proc: ProcId) {
        let slot = &mut self.slots[proc];
        slot.tx.close();
        if let Some(h) = slot.handle.take() {
            let _ = h.join();
        }
        slot.live = false;
        // At most one stale envelope can be in flight (`call` deposits
        // exactly one before blocking on the response); drop it.
        let _ = slot.env.try_take();
    }

    /// Replaces a killed (or finished) process slot with a freshly spawned
    /// body. The new process is parked awaiting its first resume, exactly
    /// like at pool construction.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is still live — kill or retire it first.
    pub fn respawn<F>(&mut self, proc: ProcId, body: F)
    where
        F: FnOnce(ProcId, &CoroCtx<Q, R>) + Send + 'static,
    {
        assert!(
            !self.slots[proc].live,
            "respawned process {proc} while it is still live"
        );
        self.slots[proc] = Self::spawn_proc(proc, body);
    }

    fn retire(&mut self, proc: ProcId) {
        let slot = &mut self.slots[proc];
        slot.live = false;
        if let Some(h) = slot.handle.take() {
            let _ = h.join();
        }
    }

    /// Returns `true` if `proc` has not yet finished.
    pub fn is_live(&self, proc: ProcId) -> bool {
        self.slots[proc].live
    }
}

impl<Q, R> Drop for CoroPool<Q, R> {
    fn drop(&mut self) {
        // Unblock any process still parked in `call`: closing the response
        // channel makes its recv fail, which unwinds the body thread.
        for slot in &mut self.slots {
            slot.tx.close();
            if let Some(h) = slot.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::type_complexity)]
mod tests {
    use super::*;

    #[test]
    fn single_process_request_response_cycle() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, ctx| {
            let a = ctx.call(10);
            let b = ctx.call(a + 1);
            assert_eq!(b, 22);
        });
        let q = match pool.resume(0, 0) {
            Step::Request(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q, 10);
        let q = match pool.resume(0, 11) {
            Step::Request(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q, 12);
        assert!(matches!(pool.resume(0, 22), Step::Done));
        assert!(!pool.is_live(0));
    }

    #[test]
    fn many_processes_interleave_deterministically() {
        let n = 8;
        let mut pool: CoroPool<usize, usize> = CoroPool::new(n, |id, ctx| {
            for round in 0..3 {
                let echoed = ctx.call(id * 100 + round);
                assert_eq!(echoed, id * 100 + round);
            }
        });
        // Drive round-robin; every request must come from the resumed proc.
        let mut pending: Vec<Option<usize>> = vec![None; n];
        for p in 0..n {
            if let Step::Request(q) = pool.resume(p, 0) {
                pending[p] = Some(q);
            }
        }
        let mut done = 0;
        while done < n {
            done = 0;
            for p in 0..n {
                if let Some(q) = pending[p].take() {
                    match pool.resume(p, q) {
                        Step::Request(q2) => pending[p] = Some(q2),
                        Step::Done => {}
                        Step::Panicked(m) => panic!("{m}"),
                    }
                }
                if !pool.is_live(p) {
                    done += 1;
                }
            }
        }
    }

    #[test]
    fn distinct_bodies_per_process() {
        let bodies: Vec<Box<dyn FnOnce(ProcId, &CoroCtx<u32, u32>) + Send>> = vec![
            Box::new(|_, ctx| {
                ctx.call(1);
            }),
            Box::new(|_, ctx| {
                ctx.call(2);
            }),
        ];
        let mut pool = CoroPool::from_bodies(bodies);
        match pool.resume(0, 0) {
            Step::Request(1) => {}
            other => panic!("{other:?}"),
        }
        match pool.resume(1, 0) {
            Step::Request(2) => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(pool.resume(0, 0), Step::Done));
        assert!(matches!(pool.resume(1, 0), Step::Done));
    }

    #[test]
    fn panicking_body_is_reported_not_propagated() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, _| {
            panic!("deliberate test panic");
        });
        match pool.resume(0, 0) {
            Step::Panicked(msg) => assert!(msg.contains("deliberate test panic")),
            other => panic!("{other:?}"),
        }
        assert!(!pool.is_live(0));
    }

    #[test]
    fn body_returning_without_requests_is_done_immediately() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, _| {});
        assert!(matches!(pool.resume(0, 0), Step::Done));
    }

    #[test]
    fn dropping_pool_with_blocked_processes_does_not_hang() {
        let pool: CoroPool<u32, u32> = CoroPool::new(4, |_, ctx| {
            // Processes immediately block on their first call; the pool is
            // dropped while they are blocked.
            let _ = ctx.call(0);
            unreachable!("never resumed");
        });
        let mut pool = pool;
        // Start them so they are genuinely parked inside `call`.
        for p in 0..4 {
            match pool.resume(p, 0) {
                Step::Request(_) => {}
                other => panic!("{other:?}"),
            }
        }
        drop(pool); // must not deadlock or panic
    }

    #[test]
    fn async_resume_batch_collects_in_any_order() {
        let n = 4;
        let mut pool: CoroPool<usize, usize> = CoroPool::new(n, |id, ctx| {
            let echoed = ctx.call(id + 100);
            assert_eq!(echoed, id + 100);
        });
        // Make every process runnable at once, then collect in reverse.
        for p in 0..n {
            pool.resume_async(p, 0);
        }
        for p in (0..n).rev() {
            match pool.collect(p) {
                Step::Request(q) => assert_eq!(q, p + 100),
                other => panic!("{other:?}"),
            }
        }
        for p in 0..n {
            assert!(matches!(pool.resume(p, p + 100), Step::Done));
        }
    }

    #[test]
    fn kill_and_respawn_replays_a_fresh_body() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, ctx| {
            ctx.call(1);
            ctx.call(2);
        });
        // Run to the second request, then kill mid-rendezvous.
        assert!(matches!(pool.resume(0, 0), Step::Request(1)));
        assert!(matches!(pool.resume(0, 0), Step::Request(2)));
        pool.kill(0);
        assert!(!pool.is_live(0));
        // The respawned body starts from scratch: same request sequence.
        pool.respawn(0, |_, ctx: &CoroCtx<u32, u32>| {
            ctx.call(1);
            ctx.call(2);
        });
        assert!(pool.is_live(0));
        assert!(matches!(pool.resume(0, 0), Step::Request(1)));
        assert!(matches!(pool.resume(0, 0), Step::Request(2)));
        assert!(matches!(pool.resume(0, 0), Step::Done));
    }

    #[test]
    fn kill_discards_a_deposited_envelope() {
        let mut pool: CoroPool<u32, u32> = CoroPool::new(1, |_, ctx| {
            ctx.call(7);
            unreachable!("killed before the response arrives");
        });
        // Resume asynchronously and give the thread time to deposit its
        // request envelope, then kill without collecting it.
        pool.resume_async(0, 0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        pool.kill(0);
        pool.respawn(0, |_, ctx: &CoroCtx<u32, u32>| {
            ctx.call(9);
        });
        // The stale envelope (7) must be gone: the first collect after the
        // respawn sees the fresh body's request.
        assert!(matches!(pool.resume(0, 0), Step::Request(9)));
        assert!(matches!(pool.resume(0, 0), Step::Done));
    }

    #[test]
    fn proc_id_visible_to_body() {
        let mut pool: CoroPool<usize, usize> = CoroPool::new(3, |id, ctx| {
            assert_eq!(ctx.id(), id);
            ctx.call(id);
        });
        for p in 0..3 {
            match pool.resume(p, 0) {
                Step::Request(q) => assert_eq!(q, p),
                other => panic!("{other:?}"),
            }
        }
    }
}
