//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic is the same and the simulator never needs sub-nanosecond
/// resolution (the finest-grained quantum in the reproduced system is one
/// 30 ns CPU cycle).
///
/// All arithmetic is saturating: a simulation that overflows `u64`
/// nanoseconds (~584 years) has already gone wrong in a way that saturation
/// makes easier to observe than wrapping.
///
/// # Example
///
/// ```
/// use spasm_desim::SimTime;
///
/// let t = SimTime::from_us(1) + SimTime::from_ns(600);
/// assert_eq!(t.as_ns(), 1_600);
/// assert_eq!(t - SimTime::from_ns(600), SimTime::from_us(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero time (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable time; used as an "idle forever" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Returns the time in whole nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the time in microseconds as a float (for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time in milliseconds as a float (for reporting).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference: `self - other`, or zero if `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Multiplies a duration by an integer count (saturating).
    #[inline]
    pub fn scale(self, n: u64) -> SimTime {
        SimTime(self.0.saturating_mul(n))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating subtraction; see [`SimTime::saturating_sub`].
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_ns(42).as_ns(), 42);
    }

    #[test]
    fn arithmetic_is_saturating() {
        assert_eq!(SimTime::MAX + SimTime::from_ns(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_ns(1), SimTime::ZERO);
        assert_eq!(SimTime::MAX.scale(2), SimTime::MAX);
    }

    #[test]
    fn sub_is_saturating_difference() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(250);
        assert_eq!(b - a, SimTime::from_ns(150));
        assert_eq!(a - b, SimTime::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_ns(n)).sum();
        assert_eq!(total, SimTime::from_ns(6));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ns(500).to_string(), "500ns");
        assert_eq!(SimTime::from_ns(1_600).to_string(), "1.600us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
    }

    #[test]
    fn float_conversions() {
        assert!((SimTime::from_ns(1_500).as_us_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_us(2_500).as_ms_f64() - 2.5).abs() < 1e-12);
    }
}
