//! # spasm-desim — deterministic discrete-event simulation kernel
//!
//! This crate provides the simulation substrate used by the `spasm-rs`
//! reproduction of *"Abstracting Network Characteristics and Locality
//! Properties of Parallel Systems"* (HPCA-1, 1995). The paper's SPASM
//! simulator was built on CSIM, a process-oriented sequential simulation
//! package; this crate plays the same role:
//!
//! * [`SimTime`] — simulated time in nanoseconds, with saturating arithmetic;
//! * [`EventQueue`] — a min-ordered queue of timestamped events with
//!   **stable tie-breaking** (events at equal times pop in push order),
//!   which makes whole simulations deterministic and reproducible. Two
//!   implementations exist: the default [`CalendarQueue`] (a bucketed
//!   ladder/calendar queue, O(1) amortized) and the seed-era
//!   [`HeapQueue`] (binary heap), selected crate-wide by the
//!   `heap-queue` cargo feature and verified against each other by a
//!   differential test suite;
//! * [`CoroPool`] — process-oriented simulation processes implemented as OS
//!   threads in rendezvous with the (single-threaded) simulator, so that
//!   application code can be written as ordinary blocking Rust code while the
//!   simulator retains full control over interleaving (exactly one process
//!   runs at any instant);
//! * [`Facility`] — a CSIM-style FCFS single-server resource with wait-time
//!   accounting.
//!
//! # Example
//!
//! ```
//! use spasm_desim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_ns(30), "beta");
//! q.push(SimTime::from_ns(10), "alpha");
//! q.push(SimTime::from_ns(10), "gamma"); // same time: pops after alpha
//! assert_eq!(q.pop(), Some((SimTime::from_ns(10), "alpha")));
//! assert_eq!(q.pop(), Some((SimTime::from_ns(10), "gamma")));
//! assert_eq!(q.pop(), Some((SimTime::from_ns(30), "beta")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coro;
mod epoch;
mod event_queue;
mod facility;
mod time;

pub use coro::{CoroCtx, CoroPool, ProcId, Step};
pub use epoch::EpochClock;
pub use event_queue::{CalendarQueue, HeapQueue, PopIfBefore};
pub use facility::{Facility, FacilityStats};
pub use time::SimTime;

/// The crate-wide event queue: [`CalendarQueue`] by default, or the
/// seed-era [`HeapQueue`] when the `heap-queue` feature is enabled (the
/// differential tier in `scripts/ci.sh` runs the whole test suite under
/// both).
#[cfg(not(feature = "heap-queue"))]
pub type EventQueue<E> = CalendarQueue<E>;

/// The crate-wide event queue (the `heap-queue` feature is enabled:
/// binary-heap implementation).
#[cfg(feature = "heap-queue")]
pub type EventQueue<E> = HeapQueue<E>;
