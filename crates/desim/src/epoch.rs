//! Commit-epoch bookkeeping for optimistic execution.
//!
//! An optimistic simulator commits events continuously but reclaims
//! speculation bookkeeping (snapshots, response histories, ledger
//! counters) only at coarser *epoch* boundaries — the moral equivalent of
//! Time Warp's periodic GVT computation. [`EpochClock`] is that cadence:
//! it counts committed events and reports when an epoch boundary is
//! crossed, so the engine can fence its reclamation work to a bounded,
//! deterministic schedule.

/// Counts committed events and fires an epoch boundary every `stride`
/// commits.
///
/// The clock is pure bookkeeping — it holds no event state — so the
/// sequential and optimistic engines can share commit paths without the
/// sequential one paying anything beyond an integer increment.
///
/// # Example
///
/// ```
/// use spasm_desim::EpochClock;
///
/// let mut gvt = EpochClock::new(3);
/// assert!(!gvt.tick()); // 1 commit
/// assert!(!gvt.tick()); // 2
/// assert!(gvt.tick()); // 3: epoch boundary
/// assert_eq!(gvt.committed(), 3);
/// assert_eq!(gvt.epochs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EpochClock {
    stride: u64,
    committed: u64,
    epochs: u64,
}

impl EpochClock {
    /// Creates a clock that fires every `stride` committed events.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero (an epoch must contain work).
    pub fn new(stride: u64) -> Self {
        assert!(stride > 0, "epoch stride must be nonzero");
        EpochClock {
            stride,
            committed: 0,
            epochs: 0,
        }
    }

    /// Records one committed event; returns `true` when this commit
    /// crosses an epoch boundary.
    pub fn tick(&mut self) -> bool {
        self.committed += 1;
        if self.committed.is_multiple_of(self.stride) {
            self.epochs += 1;
            true
        } else {
            false
        }
    }

    /// Total events committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Epoch boundaries crossed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_fire_every_stride_commits() {
        let mut c = EpochClock::new(4);
        let fired: Vec<bool> = (0..10).map(|_| c.tick()).collect();
        assert_eq!(
            fired,
            [false, false, false, true, false, false, false, true, false, false]
        );
        assert_eq!(c.committed(), 10);
        assert_eq!(c.epochs(), 2);
    }

    #[test]
    fn stride_one_fires_every_commit() {
        let mut c = EpochClock::new(1);
        assert!(c.tick());
        assert!(c.tick());
        assert_eq!(c.epochs(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_stride_is_rejected() {
        EpochClock::new(0);
    }
}
