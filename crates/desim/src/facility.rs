//! CSIM-style FCFS single-server facility with wait accounting.

use crate::SimTime;

/// A first-come-first-served single-server resource.
///
/// Requests are granted in arrival order; each request holds the facility
/// for a caller-supplied service duration. The facility tracks, per request,
/// how long it had to wait behind earlier requests — the raw material for
/// the "contention" style overheads the SPASM framework separates out.
///
/// This models things like a memory module or a directory controller that
/// serializes transactions.
///
/// # Example
///
/// ```
/// use spasm_desim::{Facility, SimTime};
///
/// let mut mem = Facility::new();
/// // Two back-to-back requests at t=0, each needing 300ns of service.
/// let g0 = mem.reserve(SimTime::ZERO, SimTime::from_ns(300));
/// let g1 = mem.reserve(SimTime::ZERO, SimTime::from_ns(300));
/// assert_eq!(g0.start, SimTime::ZERO);
/// assert_eq!(g1.start, SimTime::from_ns(300));
/// assert_eq!(g1.waited, SimTime::from_ns(300));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Facility {
    free_at: SimTime,
    stats: FacilityStats,
}

/// A granted reservation on a [`Facility`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (≥ the request time).
    pub start: SimTime,
    /// When service completes and the facility becomes free again.
    pub end: SimTime,
    /// Time spent queued behind earlier requests (`start - request`).
    pub waited: SimTime,
}

/// Aggregate usage statistics for a [`Facility`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FacilityStats {
    /// Number of reservations granted.
    pub requests: u64,
    /// Total busy (service) time.
    pub busy: SimTime,
    /// Total time requests spent waiting for the server.
    pub waited: SimTime,
}

impl Facility {
    /// Creates an idle facility, free from time zero.
    pub fn new() -> Self {
        Facility::default()
    }

    /// Reserves the facility at or after `at` for `service` time, FCFS.
    ///
    /// Returns the grant describing when service starts/ends and how long
    /// the request waited. Reservations must be made in simulation-event
    /// order; the facility serializes overlapping requests.
    pub fn reserve(&mut self, at: SimTime, service: SimTime) -> Grant {
        let start = at.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        let waited = start - at;
        self.stats.requests += 1;
        self.stats.busy += service;
        self.stats.waited += waited;
        Grant { start, end, waited }
    }

    /// The earliest time a new request could begin service.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Returns the usage statistics accumulated so far.
    pub fn stats(&self) -> FacilityStats {
        self.stats
    }

    /// Utilization over `[0, horizon]`: busy time divided by horizon.
    ///
    /// Returns 0.0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.stats.busy.as_ns() as f64 / horizon.as_ns() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_facility_grants_immediately() {
        let mut f = Facility::new();
        let g = f.reserve(SimTime::from_ns(50), SimTime::from_ns(10));
        assert_eq!(g.start, SimTime::from_ns(50));
        assert_eq!(g.end, SimTime::from_ns(60));
        assert_eq!(g.waited, SimTime::ZERO);
    }

    #[test]
    fn overlapping_requests_serialize_fcfs() {
        let mut f = Facility::new();
        let g0 = f.reserve(SimTime::from_ns(0), SimTime::from_ns(100));
        let g1 = f.reserve(SimTime::from_ns(40), SimTime::from_ns(100));
        let g2 = f.reserve(SimTime::from_ns(40), SimTime::from_ns(100));
        assert_eq!(g0.end, SimTime::from_ns(100));
        assert_eq!(g1.start, SimTime::from_ns(100));
        assert_eq!(g1.waited, SimTime::from_ns(60));
        assert_eq!(g2.start, SimTime::from_ns(200));
        assert_eq!(g2.waited, SimTime::from_ns(160));
    }

    #[test]
    fn gap_between_requests_leaves_facility_idle() {
        let mut f = Facility::new();
        f.reserve(SimTime::ZERO, SimTime::from_ns(10));
        let g = f.reserve(SimTime::from_ns(100), SimTime::from_ns(10));
        assert_eq!(g.start, SimTime::from_ns(100));
        assert_eq!(g.waited, SimTime::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = Facility::new();
        f.reserve(SimTime::ZERO, SimTime::from_ns(100));
        f.reserve(SimTime::ZERO, SimTime::from_ns(50));
        let s = f.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.busy, SimTime::from_ns(150));
        assert_eq!(s.waited, SimTime::from_ns(100));
    }

    #[test]
    fn utilization_fraction() {
        let mut f = Facility::new();
        f.reserve(SimTime::ZERO, SimTime::from_ns(250));
        assert!((f.utilization(SimTime::from_ns(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(f.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn zero_service_time_is_allowed() {
        let mut f = Facility::new();
        let g = f.reserve(SimTime::from_ns(5), SimTime::ZERO);
        assert_eq!(g.start, g.end);
        assert_eq!(f.free_at(), SimTime::from_ns(5));
    }
}
