//! Property-based tests: the Berkeley protocol invariants hold under
//! arbitrary access interleavings (spasm-testkit).

use spasm_cache::{AccessKind, BState, CacheConfig, CoherenceController};
use spasm_testkit::{check, gens, prop_assert_eq, Gen};

/// Raw (node, block, write) accesses.
fn ops(p: usize, blocks: u64) -> Gen<Vec<(usize, u64, bool)>> {
    gens::vecs(
        gens::tuple3(gens::usizes(0..p), gens::u64s(0..blocks), gens::bools()),
        0..200,
    )
}

fn kind_of(write: bool) -> AccessKind {
    if write {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

fn small_cc(p: usize) -> CoherenceController {
    CoherenceController::new(
        p,
        CacheConfig {
            size_bytes: 256, // 4 sets x 2 ways: evictions happen
            assoc: 2,
            block_bytes: 32,
        },
    )
}

/// Checks the protocol's global invariants. Plain `assert!`s: the
/// harness catches the panic and shrinks the access history.
fn check_invariants(cc: &CoherenceController, blocks: u64) {
    for block in 0..blocks {
        let holders: Vec<usize> = (0..cc.nodes())
            .filter(|&n| cc.cache(n).peek(block).is_some())
            .collect();
        let entry = cc.directory().get(block).copied().unwrap_or_default();
        // 1. Directory presence equals actual residency.
        let dir_sharers: Vec<usize> = entry.sharers().collect();
        assert_eq!(holders, dir_sharers, "presence mismatch for block {block}");
        // 2. At most one owned copy, and the directory knows who owns it.
        let owners: Vec<usize> = holders
            .iter()
            .copied()
            .filter(|&n| cc.cache(n).peek(block).unwrap().is_owned())
            .collect();
        assert!(owners.len() <= 1, "multiple owners of block {block}");
        assert_eq!(entry.owner(), owners.first().copied());
        // 3. A Dirty copy is exclusive.
        for &n in &holders {
            if cc.cache(n).peek(block) == Some(BState::Dirty) {
                assert_eq!(holders.len(), 1, "Dirty block {block} is shared");
            }
        }
        // 4. Non-owner copies are Valid.
        for &n in &holders {
            if entry.owner() != Some(n) {
                assert_eq!(cc.cache(n).peek(block), Some(BState::Valid));
            }
        }
    }
}

#[test]
fn berkeley_invariants_hold() {
    check("berkeley_invariants_hold", &ops(4, 16), |history| {
        let mut cc = small_cc(4);
        for &(node, block, write) in history {
            cc.access(node, block, kind_of(write));
        }
        check_invariants(&cc, 16);
        Ok(())
    });
}

/// After any history, a write by node n leaves n as the exclusive
/// Dirty owner.
#[test]
fn write_always_ends_exclusive() {
    check(
        "write_always_ends_exclusive",
        &gens::tuple3(ops(4, 16), gens::usizes(0..4), gens::u64s(0..16)),
        |(history, node, block)| {
            let (node, block) = (*node, *block);
            let mut cc = small_cc(4);
            for &(n, b, write) in history {
                cc.access(n, b, kind_of(write));
            }
            cc.access(node, block, AccessKind::Write);
            assert_eq!(cc.cache(node).peek(block), Some(BState::Dirty));
            assert_eq!(cc.directory().get(block).unwrap().owner(), Some(node));
            for other in 0..4 {
                if other != node {
                    assert_eq!(cc.cache(other).peek(block), None);
                }
            }
            Ok(())
        },
    );
}

/// The controller is deterministic: identical histories give identical
/// outcomes.
#[test]
fn controller_deterministic() {
    check("controller_deterministic", &ops(4, 16), |history| {
        let mut a = small_cc(4);
        let mut b = small_cc(4);
        for &(node, block, write) in history {
            let kind = kind_of(write);
            prop_assert_eq!(a.access(node, block, kind), b.access(node, block, kind));
        }
        Ok(())
    });
}

/// Hits never lie: an access reported Hit leaves every other node's
/// state untouched (no hidden invalidations).
#[test]
fn hits_are_local() {
    check(
        "hits_are_local",
        &gens::tuple3(ops(3, 8), gens::usizes(0..3), gens::u64s(0..8)),
        |(history, node, block)| {
            let (node, block) = (*node, *block);
            let mut cc = small_cc(3);
            for &(n, b, write) in history {
                cc.access(n, b, kind_of(write));
            }
            let before: Vec<_> = (0..3).map(|n| cc.cache(n).peek(block)).collect();
            let outcome = cc.access(node, block, AccessKind::Read);
            if outcome == spasm_cache::Outcome::Hit {
                let after: Vec<_> = (0..3).map(|n| cc.cache(n).peek(block)).collect();
                prop_assert_eq!(before, after);
            }
            Ok(())
        },
    );
}
