//! Property-based tests: the Berkeley protocol invariants hold under
//! arbitrary access interleavings.

use proptest::prelude::*;
use spasm_cache::{AccessKind, BState, CacheConfig, CoherenceController};

#[derive(Debug, Clone)]
struct Op {
    node: usize,
    block: u64,
    write: bool,
}

fn arb_ops(p: usize, blocks: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..p, 0..blocks, any::<bool>()).prop_map(|(node, block, write)| Op { node, block, write }),
        0..200,
    )
}

fn small_cc(p: usize) -> CoherenceController {
    CoherenceController::new(
        p,
        CacheConfig {
            size_bytes: 256, // 4 sets x 2 ways: evictions happen
            assoc: 2,
            block_bytes: 32,
        },
    )
}

/// Checks the protocol's global invariants.
fn check_invariants(cc: &CoherenceController, blocks: u64) {
    for block in 0..blocks {
        let holders: Vec<usize> = (0..cc.nodes())
            .filter(|&n| cc.cache(n).peek(block).is_some())
            .collect();
        let entry = cc.directory().get(block).copied().unwrap_or_default();
        // 1. Directory presence equals actual residency.
        let dir_sharers: Vec<usize> = entry.sharers().collect();
        assert_eq!(holders, dir_sharers, "presence mismatch for block {block}");
        // 2. At most one owned copy, and the directory knows who owns it.
        let owners: Vec<usize> = holders
            .iter()
            .copied()
            .filter(|&n| cc.cache(n).peek(block).unwrap().is_owned())
            .collect();
        assert!(owners.len() <= 1, "multiple owners of block {block}");
        assert_eq!(entry.owner(), owners.first().copied());
        // 3. A Dirty copy is exclusive.
        for &n in &holders {
            if cc.cache(n).peek(block) == Some(BState::Dirty) {
                assert_eq!(holders.len(), 1, "Dirty block {block} is shared");
            }
        }
        // 4. Non-owner copies are Valid.
        for &n in &holders {
            if entry.owner() != Some(n) {
                assert_eq!(cc.cache(n).peek(block), Some(BState::Valid));
            }
        }
    }
}

proptest! {
    #[test]
    fn berkeley_invariants_hold(ops in arb_ops(4, 16)) {
        let mut cc = small_cc(4);
        for op in &ops {
            let kind = if op.write { AccessKind::Write } else { AccessKind::Read };
            cc.access(op.node, op.block, kind);
        }
        check_invariants(&cc, 16);
    }

    /// After any history, a write by node n leaves n as the exclusive
    /// Dirty owner.
    #[test]
    fn write_always_ends_exclusive(ops in arb_ops(4, 16), node in 0usize..4, block in 0u64..16) {
        let mut cc = small_cc(4);
        for op in &ops {
            let kind = if op.write { AccessKind::Write } else { AccessKind::Read };
            cc.access(op.node, op.block, kind);
        }
        cc.access(node, block, AccessKind::Write);
        assert_eq!(cc.cache(node).peek(block), Some(BState::Dirty));
        assert_eq!(cc.directory().get(block).unwrap().owner(), Some(node));
        for other in 0..4 {
            if other != node {
                assert_eq!(cc.cache(other).peek(block), None);
            }
        }
    }

    /// The controller is deterministic: identical histories give identical
    /// outcomes.
    #[test]
    fn controller_deterministic(ops in arb_ops(4, 16)) {
        let mut a = small_cc(4);
        let mut b = small_cc(4);
        for op in &ops {
            let kind = if op.write { AccessKind::Write } else { AccessKind::Read };
            prop_assert_eq!(a.access(op.node, op.block, kind), b.access(op.node, op.block, kind));
        }
    }

    /// Hits never lie: an access reported Hit leaves every other node's
    /// state untouched (no hidden invalidations).
    #[test]
    fn hits_are_local(ops in arb_ops(3, 8), node in 0usize..3, block in 0u64..8) {
        let mut cc = small_cc(3);
        for op in &ops {
            let kind = if op.write { AccessKind::Write } else { AccessKind::Read };
            cc.access(op.node, op.block, kind);
        }
        let before: Vec<_> = (0..3).map(|n| cc.cache(n).peek(block)).collect();
        let outcome = cc.access(node, block, AccessKind::Read);
        if outcome == spasm_cache::Outcome::Hit {
            let after: Vec<_> = (0..3).map(|n| cc.cache(n).peek(block)).collect();
            prop_assert_eq!(before, after);
        }
    }
}
