//! Bitset-directory unit and parity tests.
//!
//! [`DirEntry`] packs the presence set into one `u64` word and the
//! [`Directory`] map is an insert-only open-addressing table. Both are
//! checked here against a transparent reference model — a `Vec<bool>`
//! presence set and a `Vec<(u64, Entry)>` association list — across
//! random operation streams at every system size the paper sweeps
//! (1..=64 processors) plus the word-width boundary itself.

use spasm_cache::{DirEntry, Directory};
use spasm_testkit::{check, gens, prop_assert, prop_assert_eq};

/// Reference presence set: one bool per node plus an explicit owner.
#[derive(Default, Clone)]
struct RefEntry {
    present: Vec<bool>,
    owner: Option<usize>,
}

impl RefEntry {
    fn with_nodes(n: usize) -> Self {
        RefEntry {
            present: vec![false; n],
            owner: None,
        }
    }

    fn add_sharer(&mut self, node: usize) {
        self.present[node] = true;
    }

    fn remove_sharer(&mut self, node: usize) {
        self.present[node] = false;
        if self.owner == Some(node) {
            self.owner = None;
        }
    }

    fn sharers(&self) -> Vec<usize> {
        (0..self.present.len())
            .filter(|&i| self.present[i])
            .collect()
    }
}

/// Drives one `DirEntry` and the reference in lock step.
fn entry_parity(nodes: usize, ops: &[(u64, u64)]) -> Result<(), String> {
    let mut real = DirEntry::default();
    let mut model = RefEntry::with_nodes(nodes);
    for &(sel, who) in ops {
        let node = (who % nodes as u64) as usize;
        match sel % 4 {
            0 | 1 => {
                real.add_sharer(node);
                model.add_sharer(node);
            }
            2 => {
                real.remove_sharer(node);
                model.remove_sharer(node);
            }
            _ => {
                // Ownership may only be granted to a current sharer.
                if real.is_sharer(node) {
                    real.set_owner(Some(node));
                    model.owner = Some(node);
                }
            }
        }
        prop_assert_eq!(
            real.sharers().collect::<Vec<_>>(),
            model.sharers(),
            "sharer sets diverged (nodes={nodes})"
        );
        prop_assert_eq!(real.owner(), model.owner, "owner diverged");
        prop_assert_eq!(
            real.sharer_count() as usize,
            model.sharers().len(),
            "sharer_count diverged"
        );
        prop_assert_eq!(
            real.is_uncached(),
            model.sharers().is_empty(),
            "is_uncached diverged"
        );
        for n in 0..nodes {
            prop_assert_eq!(
                real.is_sharer(n),
                model.present[n],
                "is_sharer({n}) diverged"
            );
        }
    }
    Ok(())
}

#[test]
fn entry_matches_reference_at_paper_system_sizes() {
    for nodes in [1usize, 2, 4, 8, 64] {
        let raw = gens::vecs(gens::tuple2(gens::u64s(0..4), gens::u64s(0..64)), 1..200);
        check(&format!("directory_bitset/entry_p{nodes}"), &raw, |ops| {
            entry_parity(nodes, ops)
        });
    }
}

#[test]
fn popcount_iteration_yields_ascending_ids() {
    let raw = gens::vecs(gens::u64s(0..64), 0..40);
    check("directory_bitset/ascending", &raw, |nodes| {
        let mut e = DirEntry::default();
        for &n in nodes {
            e.add_sharer(n as usize);
        }
        let order: Vec<usize> = e.sharers().collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(order, sorted, "sharers() not ascending+deduped");
        Ok(())
    });
}

#[test]
fn word_width_boundary() {
    // Node 63 is the last representable id; 64 must be rejected loudly.
    let mut e = DirEntry::default();
    e.add_sharer(63);
    assert!(e.is_sharer(63));
    assert_eq!(e.sharers().collect::<Vec<_>>(), vec![63]);
    e.set_owner(Some(63));
    assert_eq!(e.owner(), Some(63));
    e.remove_sharer(63);
    assert!(e.is_uncached());
    assert_eq!(e.owner(), None);
}

#[test]
#[should_panic(expected = "up to 64 nodes")]
fn node_64_is_out_of_range() {
    DirEntry::default().add_sharer(64);
}

/// Drives the open-addressing `Directory` against an association list,
/// exercising growth, colliding keys, and every read-side accessor.
#[test]
fn directory_map_matches_association_list() {
    let raw = gens::tuple2(
        // Key palette mixing small, aligned, low-bit-colliding, and
        // extreme block numbers; `u64s` tweaks pick within it.
        gens::vecs(
            gens::tuple3(gens::u64s(0..6), gens::u64s(0..1_000), gens::u64s(0..64)),
            1..300,
        ),
        gens::u64s(0..64),
    );
    check("directory_bitset/map_parity", &raw, |(ops, _)| {
        let mut real = Directory::new();
        let mut model: Vec<(u64, Vec<usize>)> = Vec::new();
        for &(ksel, tweak, who) in ops {
            let block = match ksel % 6 {
                0 => tweak,                                     // dense small blocks
                1 => tweak * 64,                                // same low bits, spread high
                2 => tweak << 32,                               // collide in the low word
                3 => u64::MAX - tweak,                          // top of the space
                4 => 0,                                         // repeated single block
                _ => tweak.wrapping_mul(0x9E37_79B9_7F4A_7C15), // scattered
            };
            let node = (who % 64) as usize;
            real.entry(block).add_sharer(node);
            match model.iter_mut().find(|(k, _)| *k == block) {
                Some((_, sharers)) => {
                    if !sharers.contains(&node) {
                        sharers.push(node);
                        sharers.sort_unstable();
                    }
                }
                None => model.push((block, vec![node])),
            }
            prop_assert_eq!(real.len(), model.len(), "len diverged");
        }
        // Full read-side comparison after the stream.
        for (block, sharers) in &model {
            let e = real
                .get(*block)
                .ok_or_else(|| format!("block {block} missing from directory"))?;
            prop_assert_eq!(
                &e.sharers().collect::<Vec<_>>(),
                sharers,
                "sharers diverged for block {block}"
            );
        }
        let mut real_blocks: Vec<u64> = real.blocks().collect();
        real_blocks.sort_unstable();
        let mut model_blocks: Vec<u64> = model.iter().map(|(k, _)| *k).collect();
        model_blocks.sort_unstable();
        prop_assert_eq!(real_blocks, model_blocks, "block sets diverged");
        // Untouched keys must not resolve.
        prop_assert!(
            real.get(0xDEAD_BEEF_0000_0001).is_none()
                || model.iter().any(|(k, _)| *k == 0xDEAD_BEEF_0000_0001),
            "phantom block resolved"
        );
        Ok(())
    });
}

#[test]
fn directory_growth_preserves_entries() {
    // Push well past the initial 64-slot table through several doublings.
    let mut d = Directory::new();
    for block in 0..10_000u64 {
        d.entry(block * 7).add_sharer((block % 64) as usize);
    }
    assert_eq!(d.len(), 10_000);
    for block in 0..10_000u64 {
        let e = d.get(block * 7).expect("entry survived growth");
        assert!(e.is_sharer((block % 64) as usize));
    }
    assert!(d.get(3).is_none()); // 3 is not a multiple of 7
}
