//! # spasm-cache — caches, Berkeley coherence, fully-mapped directory
//!
//! The locality substrate of the reproduction. The paper's target machine
//! (§5) gives each node a private **64 KB, 2-way set-associative cache with
//! 32-byte blocks**, kept sequentially consistent by an invalidation-based
//! **Berkeley protocol** with a **fully-mapped directory**. The CLogP
//! machine reuses the *same* coherence state machine but charges nothing
//! for coherence actions — an "ideal coherent cache" that captures the
//! application's inherent data locality (§3.2).
//!
//! This crate therefore provides:
//!
//! * [`Cache`] — a set-associative cache array with LRU replacement and
//!   Berkeley line states;
//! * [`Directory`] — fully-mapped directory entries (presence set + owner);
//! * [`CoherenceController`] — the pure protocol state machine. An access
//!   mutates cache/directory state and returns an [`Outcome`] describing
//!   *what happened* (hit, upgrade, miss with supplier / invalidations /
//!   writeback). The machine models translate outcomes into time and
//!   messages: the target prices every action; CLogP prices only true data
//!   transfers. Keeping the state machine shared guarantees both machines
//!   see *identical* miss/traffic structure, which is exactly the
//!   comparison the paper makes.
//!
//! # Example
//!
//! ```
//! use spasm_cache::{AccessKind, CacheConfig, CoherenceController, Outcome, Supplier};
//!
//! let mut cc = CoherenceController::new(2, CacheConfig::paper());
//! // Node 0 reads block 5 (homed wherever the machine says; the controller
//! // only needs to know the requester): cold miss, memory supplies.
//! match cc.access(0, 5, AccessKind::Read) {
//!     Outcome::Miss { supplier: Supplier::Memory, .. } => {}
//!     other => panic!("{other:?}"),
//! }
//! // Second read hits.
//! assert!(matches!(cc.access(0, 5, AccessKind::Read), Outcome::Hit));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod controller;
mod directory;

pub use cache::{Cache, CacheConfig, CacheSnapshot, CacheStats, Evicted};
pub use controller::{
    AccessKind, CoherenceController, CoherenceSnapshot, Outcome, ProtocolKind, Supplier, Writeback,
};
pub use directory::{DirEntry, Directory, DirectorySnapshot};

/// FNV-1a offset basis, shared by the crate's state-hash digests.
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds one word into an FNV-1a digest, byte by byte.
#[inline]
pub(crate) fn fnv_word(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Berkeley-protocol cache line states.
///
/// Absence from the cache is the Invalid state. `Valid` is an unowned,
/// possibly-shared clean copy; `SharedDirty` is an owned copy that other
/// caches may also hold (memory is stale — the owner supplies data);
/// `Dirty` is an exclusive owned copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BState {
    /// Unowned readable copy (may be shared; memory may also be stale if
    /// another cache owns the block).
    Valid,
    /// Owned but possibly shared: this cache must supply the block and
    /// write it back on eviction.
    SharedDirty,
    /// Owned exclusively: writable without any network transaction.
    Dirty,
}

impl BState {
    /// Whether this state carries ownership (write-back responsibility).
    pub fn is_owned(self) -> bool {
        matches!(self, BState::SharedDirty | BState::Dirty)
    }
}
