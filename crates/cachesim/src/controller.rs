//! The Berkeley-protocol coherence state machine.

use crate::{
    fnv_word, BState, Cache, CacheConfig, CacheSnapshot, Directory, DirectorySnapshot, FNV_OFFSET,
};

/// The two access kinds the protocol distinguishes. Atomic read-modify-write
/// operations are writes for coherence purposes (they need exclusivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store or atomic read-modify-write.
    Write,
}

/// Who supplies the data on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Supplier {
    /// The home node's memory holds the freshest copy.
    Memory,
    /// The owning cache supplies (Berkeley: memory may be stale).
    Owner(usize),
}

/// A displaced owned block that must be written back to its home memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// The victim block.
    pub block: u64,
    /// The evicting node.
    pub from: usize,
}

/// Which invalidation-based protocol the controller runs.
///
/// The paper fixes the Berkeley protocol but argues (citing Wood et al.,
/// ISCA 1993) that results are "not very sensitive to different cache
/// coherence protocols"; the second protocol lets the reproduction test
/// that claim directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// Berkeley: owned blocks are supplied cache-to-cache; memory may be
    /// stale; the owner keeps ownership across reads (Dirty → SharedDirty).
    #[default]
    Berkeley,
    /// Write-back-on-read ("memory-clean"): a read of a dirty block makes
    /// the owner supply the requester *and* write the block back to its
    /// home; ownership is relinquished (owner downgrades to Valid), so
    /// later read misses are served by memory.
    WriteBackOnRead,
}

/// What one access did to the coherence state.
///
/// The machine models translate an `Outcome` into time and messages. The
/// target machine prices the request/forward/invalidate/ack/data messages;
/// the CLogP "ideal cache" prices only true data transfers (`Miss` fetches
/// and writebacks) and performs `UpgradeHit` invalidations for free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Data present with sufficient rights; no directory involvement.
    Hit,
    /// A write found the block present but not exclusive: other copies
    /// were invalidated, no data transfer is needed.
    UpgradeHit {
        /// Nodes whose copies were invalidated (may be empty).
        invalidated: Vec<usize>,
    },
    /// The block was not resident and was fetched.
    Miss {
        /// Where the data comes from.
        supplier: Supplier,
        /// Nodes invalidated (write misses only; empty for reads).
        invalidated: Vec<usize>,
        /// Owned victim displaced by the fill, if any.
        writeback: Option<Writeback>,
        /// Under [`ProtocolKind::WriteBackOnRead`], the supplying owner's
        /// simultaneous write-back of the block to its home.
        downgrade_writeback: Option<Writeback>,
    },
}

/// The coherence state machine shared by the target and CLogP machines:
/// one [`Cache`] per node plus a fully-mapped [`Directory`].
///
/// All state transitions are performed synchronously in simulator event
/// order; timing is entirely the caller's concern. This mirrors SPASM's
/// structure, where protocol state is exact and only *costs* differ between
/// machine characterizations.
#[derive(Debug, Clone)]
pub struct CoherenceController {
    caches: Vec<Cache>,
    dir: Directory,
    protocol: ProtocolKind,
}

impl CoherenceController {
    /// Creates a Berkeley-protocol controller for `p` nodes with per-node
    /// caches of the given geometry.
    pub fn new(p: usize, config: CacheConfig) -> Self {
        Self::with_protocol(p, config, ProtocolKind::Berkeley)
    }

    /// Creates a controller running the given protocol.
    pub fn with_protocol(p: usize, config: CacheConfig, protocol: ProtocolKind) -> Self {
        CoherenceController {
            caches: (0..p).map(|_| Cache::new(config)).collect(),
            dir: Directory::new(),
            protocol,
        }
    }

    /// The protocol in force.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Performs `kind` access by `node` to `block`, mutating cache and
    /// directory state, and reports what happened.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn access(&mut self, node: usize, block: u64, kind: AccessKind) -> Outcome {
        let resident = self.caches[node].lookup(block);
        match (kind, resident) {
            (AccessKind::Read, Some(_)) => Outcome::Hit,
            (AccessKind::Write, Some(BState::Dirty)) => Outcome::Hit,
            (AccessKind::Write, Some(_)) => {
                let invalidated = self.invalidate_others(node, block);
                self.caches[node].set_state(block, BState::Dirty);
                let entry = self.dir.entry(block);
                entry.set_owner(Some(node));
                Outcome::UpgradeHit { invalidated }
            }
            (_, None) => self.miss(node, block, kind),
        }
    }

    fn miss(&mut self, node: usize, block: u64, kind: AccessKind) -> Outcome {
        let entry = *self.dir.entry(block);
        let supplier = match entry.owner() {
            Some(owner) => Supplier::Owner(owner),
            None => Supplier::Memory,
        };

        let mut downgrade_writeback = None;
        let (invalidated, fill_state) = match kind {
            AccessKind::Read => {
                if let Some(owner) = entry.owner() {
                    match self.protocol {
                        ProtocolKind::Berkeley => {
                            // The owner keeps ownership; Dirty degrades to
                            // SharedDirty and keeps supplying.
                            if self.caches[owner].peek(block) == Some(BState::Dirty) {
                                self.caches[owner].set_state(block, BState::SharedDirty);
                            }
                        }
                        ProtocolKind::WriteBackOnRead => {
                            // The owner supplies, writes back, and keeps an
                            // unowned clean copy; memory is fresh again.
                            self.caches[owner].set_state(block, BState::Valid);
                            self.dir.entry(block).set_owner(None);
                            downgrade_writeback = Some(Writeback { block, from: owner });
                        }
                    }
                }
                (Vec::new(), BState::Valid)
            }
            AccessKind::Write => {
                let invalidated = self.invalidate_others(node, block);
                (invalidated, BState::Dirty)
            }
        };

        let writeback = self.fill(node, block, fill_state);
        let entry = self.dir.entry(block);
        entry.add_sharer(node);
        if kind == AccessKind::Write {
            entry.set_owner(Some(node));
        }
        Outcome::Miss {
            supplier,
            invalidated,
            writeback,
            downgrade_writeback,
        }
    }

    /// Invalidates every copy of `block` except `node`'s, updating both
    /// caches and directory. Returns the invalidated nodes in id order.
    fn invalidate_others(&mut self, node: usize, block: u64) -> Vec<usize> {
        let entry = *self.dir.entry(block);
        let victims: Vec<usize> = entry.sharers().filter(|&s| s != node).collect();
        for &s in &victims {
            let was = self.caches[s].invalidate(block);
            debug_assert!(was.is_some(), "directory said {s} held block {block}");
            self.dir.entry(block).remove_sharer(s);
        }
        victims
    }

    /// Inserts `block` into `node`'s cache, handling the victim's
    /// directory bookkeeping. An owned victim produces a writeback; a
    /// clean victim is dropped silently (the directory is updated as a
    /// free replacement hint — see DESIGN.md).
    fn fill(&mut self, node: usize, block: u64, state: BState) -> Option<Writeback> {
        let evicted = self.caches[node].insert(block, state)?;
        self.dir.entry(evicted.block).remove_sharer(node);
        if evicted.state.is_owned() {
            Some(Writeback {
                block: evicted.block,
                from: node,
            })
        } else {
            None
        }
    }

    /// Per-node cache statistics.
    pub fn cache_stats(&self, node: usize) -> crate::CacheStats {
        self.caches[node].stats()
    }

    /// Read-only view of a node's cache (tests, invariant checks).
    pub fn cache(&self, node: usize) -> &Cache {
        &self.caches[node]
    }

    /// Read-only view of the directory (tests, invariant checks).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Mutable view of a node's cache.
    ///
    /// Exists so fault-negative tests can corrupt protocol state directly
    /// (e.g. conjure a second `Dirty` copy) and prove a checker notices.
    /// The controller itself never needs it.
    pub fn cache_mut(&mut self, node: usize) -> &mut Cache {
        &mut self.caches[node]
    }

    /// Mutable view of the directory, for the same corruption tests as
    /// [`CoherenceController::cache_mut`].
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.dir
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.caches.len()
    }

    /// Captures the complete protocol state — every node's cache plus the
    /// directory — for a later [`CoherenceController::restore`].
    pub fn save(&self) -> CoherenceSnapshot {
        CoherenceSnapshot {
            caches: self.caches.iter().map(Cache::save).collect(),
            dir: self.dir.save(),
        }
    }

    /// Reverts the protocol state to a previously saved snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot covers a different node count.
    pub fn restore(&mut self, snap: &CoherenceSnapshot) {
        assert_eq!(
            self.caches.len(),
            snap.caches.len(),
            "restore from a snapshot of a different machine size"
        );
        for (cache, s) in self.caches.iter_mut().zip(&snap.caches) {
            cache.restore(s);
        }
        self.dir.restore(&snap.dir);
    }

    /// A 64-bit digest over every cache (in node order) and the
    /// directory's logical state.
    pub fn state_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for cache in &self.caches {
            fnv_word(&mut h, cache.state_hash());
        }
        fnv_word(&mut h, self.dir.state_hash());
        h
    }
}

/// An opaque snapshot of a [`CoherenceController`]'s complete state.
#[derive(Debug, Clone)]
pub struct CoherenceSnapshot {
    caches: Vec<CacheSnapshot>,
    dir: DirectorySnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(p: usize) -> CoherenceController {
        // Small cache so eviction paths are exercisable: 4 sets x 2 ways.
        CoherenceController::new(
            p,
            CacheConfig {
                size_bytes: 256,
                assoc: 2,
                block_bytes: 32,
            },
        )
    }

    #[test]
    fn cold_read_miss_memory_supplies() {
        let mut c = cc(2);
        match c.access(0, 10, AccessKind::Read) {
            Outcome::Miss {
                supplier: Supplier::Memory,
                invalidated,
                writeback: None,
                ..
            } => assert!(invalidated.is_empty()),
            o => panic!("{o:?}"),
        }
        assert_eq!(c.cache(0).peek(10), Some(BState::Valid));
        assert!(c.directory().get(10).unwrap().is_sharer(0));
    }

    #[test]
    fn read_after_read_hits() {
        let mut c = cc(1);
        c.access(0, 10, AccessKind::Read);
        assert_eq!(c.access(0, 10, AccessKind::Read), Outcome::Hit);
    }

    #[test]
    fn write_miss_takes_ownership() {
        let mut c = cc(2);
        match c.access(1, 10, AccessKind::Write) {
            Outcome::Miss {
                supplier: Supplier::Memory,
                ..
            } => {}
            o => panic!("{o:?}"),
        }
        assert_eq!(c.cache(1).peek(10), Some(BState::Dirty));
        assert_eq!(c.directory().get(10).unwrap().owner(), Some(1));
    }

    #[test]
    fn write_hit_on_dirty_is_free() {
        let mut c = cc(1);
        c.access(0, 10, AccessKind::Write);
        assert_eq!(c.access(0, 10, AccessKind::Write), Outcome::Hit);
    }

    #[test]
    fn write_to_shared_block_upgrades_and_invalidates() {
        let mut c = cc(3);
        c.access(0, 10, AccessKind::Read);
        c.access(1, 10, AccessKind::Read);
        c.access(2, 10, AccessKind::Read);
        match c.access(0, 10, AccessKind::Write) {
            Outcome::UpgradeHit { invalidated } => assert_eq!(invalidated, vec![1, 2]),
            o => panic!("{o:?}"),
        }
        assert_eq!(c.cache(0).peek(10), Some(BState::Dirty));
        assert_eq!(c.cache(1).peek(10), None);
        assert_eq!(c.cache(2).peek(10), None);
        let e = c.directory().get(10).unwrap();
        assert_eq!(e.owner(), Some(0));
        assert_eq!(e.sharer_count(), 1);
    }

    #[test]
    fn read_of_dirty_block_forwards_from_owner_and_downgrades() {
        let mut c = cc(2);
        c.access(0, 10, AccessKind::Write);
        match c.access(1, 10, AccessKind::Read) {
            Outcome::Miss {
                supplier: Supplier::Owner(0),
                ..
            } => {}
            o => panic!("{o:?}"),
        }
        // Berkeley: owner keeps ownership as SharedDirty; reader gets Valid.
        assert_eq!(c.cache(0).peek(10), Some(BState::SharedDirty));
        assert_eq!(c.cache(1).peek(10), Some(BState::Valid));
        assert_eq!(c.directory().get(10).unwrap().owner(), Some(0));
    }

    #[test]
    fn shared_dirty_owner_still_supplies_later_reads() {
        let mut c = cc(3);
        c.access(0, 10, AccessKind::Write);
        c.access(1, 10, AccessKind::Read);
        match c.access(2, 10, AccessKind::Read) {
            Outcome::Miss {
                supplier: Supplier::Owner(0),
                ..
            } => {}
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn write_miss_invalidates_owner_and_sharers() {
        let mut c = cc(3);
        c.access(0, 10, AccessKind::Write); // 0 Dirty owner
        c.access(1, 10, AccessKind::Read); // 0 SharedDirty, 1 Valid
        match c.access(2, 10, AccessKind::Write) {
            Outcome::Miss {
                supplier: Supplier::Owner(0),
                invalidated,
                ..
            } => assert_eq!(invalidated, vec![0, 1]),
            o => panic!("{o:?}"),
        }
        assert_eq!(c.cache(0).peek(10), None);
        assert_eq!(c.cache(1).peek(10), None);
        assert_eq!(c.cache(2).peek(10), Some(BState::Dirty));
        assert_eq!(c.directory().get(10).unwrap().owner(), Some(2));
    }

    #[test]
    fn paper_example_write_then_read_costs_one_transfer() {
        // §3.2's example: a block Valid in two caches; a write invalidates
        // (free on CLogP), and the other processor's next read misses on
        // both machines.
        let mut c = cc(2);
        c.access(0, 10, AccessKind::Read);
        c.access(1, 10, AccessKind::Read);
        assert!(matches!(
            c.access(0, 10, AccessKind::Write),
            Outcome::UpgradeHit { .. }
        ));
        // Reader must re-fetch: a true communication event.
        assert!(matches!(
            c.access(1, 10, AccessKind::Read),
            Outcome::Miss {
                supplier: Supplier::Owner(0),
                ..
            }
        ));
    }

    #[test]
    fn eviction_of_dirty_block_writes_back() {
        let mut c = cc(1);
        // Set count = 4, so blocks 0, 4, 8 share set 0.
        c.access(0, 0, AccessKind::Write);
        c.access(0, 4, AccessKind::Read);
        match c.access(0, 8, AccessKind::Read) {
            Outcome::Miss {
                writeback: Some(Writeback { block: 0, from: 0 }),
                ..
            } => {}
            o => panic!("{o:?}"),
        }
        // Directory no longer thinks node 0 holds block 0.
        assert!(c.directory().get(0).unwrap().is_uncached());
        assert_eq!(c.directory().get(0).unwrap().owner(), None);
    }

    #[test]
    fn eviction_of_clean_block_is_silent() {
        let mut c = cc(1);
        c.access(0, 0, AccessKind::Read);
        c.access(0, 4, AccessKind::Read);
        match c.access(0, 8, AccessKind::Read) {
            Outcome::Miss {
                writeback: None, ..
            } => {}
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn read_after_writeback_comes_from_memory() {
        let mut c = cc(2);
        c.access(0, 0, AccessKind::Write);
        c.access(0, 4, AccessKind::Read);
        c.access(0, 8, AccessKind::Read); // evicts block 0 with writeback
        match c.access(1, 0, AccessKind::Read) {
            Outcome::Miss {
                supplier: Supplier::Memory,
                ..
            } => {}
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn upgrade_with_no_other_sharers() {
        let mut c = cc(2);
        c.access(0, 10, AccessKind::Read);
        match c.access(0, 10, AccessKind::Write) {
            Outcome::UpgradeHit { invalidated } => assert!(invalidated.is_empty()),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn shared_dirty_owner_write_is_upgrade() {
        let mut c = cc(2);
        c.access(0, 10, AccessKind::Write); // Dirty@0
        c.access(1, 10, AccessKind::Read); // SharedDirty@0, Valid@1
        match c.access(0, 10, AccessKind::Write) {
            Outcome::UpgradeHit { invalidated } => assert_eq!(invalidated, vec![1]),
            o => panic!("{o:?}"),
        }
        assert_eq!(c.cache(0).peek(10), Some(BState::Dirty));
    }

    #[test]
    fn write_back_on_read_relinquishes_ownership() {
        let mut c = CoherenceController::with_protocol(
            3,
            CacheConfig {
                size_bytes: 256,
                assoc: 2,
                block_bytes: 32,
            },
            ProtocolKind::WriteBackOnRead,
        );
        c.access(0, 10, AccessKind::Write); // 0 Dirty owner
        match c.access(1, 10, AccessKind::Read) {
            Outcome::Miss {
                supplier: Supplier::Owner(0),
                downgrade_writeback: Some(Writeback { block: 10, from: 0 }),
                ..
            } => {}
            o => panic!("{o:?}"),
        }
        // Owner downgraded to an unowned clean copy; memory is fresh.
        assert_eq!(c.cache(0).peek(10), Some(BState::Valid));
        assert_eq!(c.directory().get(10).unwrap().owner(), None);
        // The next read is served by memory, not cache-to-cache.
        match c.access(2, 10, AccessKind::Read) {
            Outcome::Miss {
                supplier: Supplier::Memory,
                downgrade_writeback: None,
                ..
            } => {}
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn berkeley_never_produces_downgrade_writebacks() {
        let mut c = cc(2);
        c.access(0, 10, AccessKind::Write);
        match c.access(1, 10, AccessKind::Read) {
            Outcome::Miss {
                downgrade_writeback: None,
                ..
            } => {}
            o => panic!("{o:?}"),
        }
        assert_eq!(c.protocol(), ProtocolKind::Berkeley);
    }

    #[test]
    fn protocols_agree_on_residency() {
        // Same access stream, both protocols: the *set of cached blocks*
        // per node matches (states/ownership may differ).
        let config = CacheConfig {
            size_bytes: 256,
            assoc: 2,
            block_bytes: 32,
        };
        let mut a = CoherenceController::with_protocol(3, config, ProtocolKind::Berkeley);
        let mut b = CoherenceController::with_protocol(3, config, ProtocolKind::WriteBackOnRead);
        let stream = [
            (0, 10, AccessKind::Write),
            (1, 10, AccessKind::Read),
            (2, 10, AccessKind::Read),
            (1, 10, AccessKind::Write),
            (0, 12, AccessKind::Read),
            (2, 10, AccessKind::Read),
        ];
        for (node, block, kind) in stream {
            a.access(node, block, kind);
            b.access(node, block, kind);
        }
        for node in 0..3 {
            for block in [10u64, 12] {
                assert_eq!(
                    a.cache(node).peek(block).is_some(),
                    b.cache(node).peek(block).is_some(),
                    "residency differs at node {node}, block {block}"
                );
            }
        }
    }
}
