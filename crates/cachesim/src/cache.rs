//! Set-associative cache array with LRU replacement.

use crate::{fnv_word, BState, FNV_OFFSET};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
}

impl CacheConfig {
    /// The paper's §5 configuration: 64 KB, 2-way, 32-byte blocks.
    pub const fn paper() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            block_bytes: 32,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// set count, or capacity not divisible by `assoc × block`).
    pub fn sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.assoc > 0 && self.block_bytes > 0);
        let per_way = self.size_bytes / (self.assoc * self.block_bytes);
        assert!(
            per_way * self.assoc * self.block_bytes == self.size_bytes,
            "capacity must divide evenly into ways x blocks"
        );
        assert!(
            per_way.is_power_of_two(),
            "set count must be a power of two"
        );
        per_way
    }
}

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block number of the victim.
    pub block: u64,
    /// State the victim held; owners must be written back.
    pub state: BState,
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Valid lines displaced by insertions.
    pub evictions: u64,
    /// Lines removed by external invalidation.
    pub invalidations: u64,
}

/// A set-associative cache indexed by block number.
///
/// The cache stores *states only* — simulated data values live in the
/// machine's value store, so the cache answers "is this block resident and
/// with what rights", which is all the timing models need.
///
/// Lines are kept split by access pattern: a flat tag array (`blocks`)
/// indexed by `set * assoc + way` that the hit/miss scan walks, and a
/// parallel `meta` array holding the LRU stamp and coherence state that
/// are only touched once a way is chosen. The scan therefore stays within
/// one or two cache lines of host memory instead of striding over full
/// line records, and the hit bookkeeping costs a single indexed access.
///
/// Equality compares every field — tags, metadata, LRU stamps, hint,
/// clock, statistics — so `a == b` means the two caches are behaviorally
/// indistinguishable for all future access sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    /// Block number per way slot (`set * assoc + way`); valid for ways
    /// below the set's `lens` entry.
    blocks: Vec<u64>,
    /// LRU stamp and state per way slot, parallel to `blocks`.
    meta: Vec<Meta>,
    /// Occupied ways per set.
    lens: Vec<u32>,
    /// Most-recently-stamped way *slot* per set (`NO_MRU` when unknown).
    /// A pure hint: a repeat hit on this slot skips the clock bump and
    /// the stamp store, which preserves the *relative* order of every
    /// stamp — the only thing victim selection reads — so eviction
    /// behaviour is bit-identical to stamping every hit. Invariant: a
    /// non-sentinel hint always points at an occupied way (sets only
    /// shrink via `invalidate`, which drops the hint).
    mru: Vec<u32>,
    set_mask: u64,
    assoc: usize,
    clock: u64,
    stats: CacheStats,
}

/// Per-way bookkeeping touched only after the tag scan picks a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    stamp: u64,
    state: BState,
}

/// An opaque, complete snapshot of a [`Cache`]'s state, taken with
/// [`Cache::save`] and reapplied with [`Cache::restore`]. Used by the
/// optimistic engine's rollback machinery and its property tests.
#[derive(Debug, Clone)]
pub struct CacheSnapshot(Cache);

/// Sentinel for [`Cache::mru`]: no valid hint for this set.
const NO_MRU: u32 = u32::MAX;

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let slots = sets * config.assoc;
        Cache {
            blocks: vec![0; slots],
            meta: vec![
                Meta {
                    stamp: 0,
                    state: BState::Valid
                };
                slots
            ],
            lens: vec![0; sets],
            mru: vec![NO_MRU; sets],
            set_mask: (sets - 1) as u64,
            assoc: config.assoc,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block & self.set_mask) as usize
    }

    /// Index of `block`'s way slot within its set, if resident.
    #[inline]
    fn find(&self, block: u64) -> Option<usize> {
        let set = self.set_of(block);
        let base = set * self.assoc;
        let used = self.lens[set] as usize;
        self.blocks[base..base + used]
            .iter()
            .position(|&b| b == block)
            .map(|way| base + way)
    }

    /// Looks up `block`, refreshing its LRU position. Counts a hit or miss.
    #[inline]
    pub fn lookup(&mut self, block: u64) -> Option<BState> {
        let set = self.set_of(block);
        // Fast path: a repeat hit on the set's most-recently-stamped way.
        // The line already holds the set's newest stamp, so re-stamping it
        // (and spending a clock tick) cannot change any victim choice —
        // skip both.
        let hint = self.mru[set] as usize;
        if hint != NO_MRU as usize && self.blocks[hint] == block {
            self.stats.hits += 1;
            return Some(self.meta[hint].state);
        }
        self.clock += 1;
        if let Some(slot) = self.find(block) {
            let m = &mut self.meta[slot];
            m.stamp = self.clock;
            self.mru[set] = slot as u32;
            self.stats.hits += 1;
            return Some(m.state);
        }
        self.stats.misses += 1;
        None
    }

    /// Looks up `block` without touching LRU or statistics.
    pub fn peek(&self, block: u64) -> Option<BState> {
        self.find(block).map(|slot| self.meta[slot].state)
    }

    /// Changes the state of a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident — a protocol logic error.
    pub fn set_state(&mut self, block: u64, state: BState) {
        let slot = self
            .find(block)
            .unwrap_or_else(|| panic!("set_state on non-resident block {block}"));
        self.meta[slot].state = state;
    }

    /// Inserts `block` with `state`, evicting the LRU line if the set is
    /// full. Returns the victim, whose owners must be written back.
    ///
    /// # Panics
    ///
    /// Panics if the block is already resident (use [`Cache::set_state`]).
    pub fn insert(&mut self, block: u64, state: BState) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(block);
        let base = set * self.assoc;
        let used = self.lens[set] as usize;
        assert!(
            !self.blocks[base..base + used].contains(&block),
            "insert of already-resident block {block}"
        );
        let slot = if used < self.assoc {
            self.lens[set] += 1;
            base + used
        } else {
            // Evict the least recently used line (first minimum stamp).
            let victim = self.meta[base..base + used]
                .iter()
                .enumerate()
                .min_by_key(|&(_, m)| m.stamp)
                .map(|(way, _)| base + way)
                .expect("full set is non-empty");
            let evicted = Evicted {
                block: self.blocks[victim],
                state: self.meta[victim].state,
            };
            self.blocks[victim] = block;
            self.meta[victim] = Meta {
                stamp: clock,
                state,
            };
            self.mru[set] = victim as u32;
            self.stats.evictions += 1;
            return Some(evicted);
        };
        self.blocks[slot] = block;
        self.meta[slot] = Meta {
            stamp: clock,
            state,
        };
        self.mru[set] = slot as u32;
        None
    }

    /// Removes `block` (external invalidation). Returns the state it held.
    pub fn invalidate(&mut self, block: u64) -> Option<BState> {
        let slot = self.find(block)?;
        let state = self.meta[slot].state;
        // Swap-remove within the set: the last occupied way fills the gap.
        let set = self.set_of(block);
        let last = set * self.assoc + (self.lens[set] as usize - 1);
        self.blocks[slot] = self.blocks[last];
        self.meta[slot] = self.meta[last];
        self.lens[set] -= 1;
        // The swap-remove may have moved the most-recent line into `slot`;
        // rather than track that, drop the hint — the next hit re-stamps.
        self.mru[set] = NO_MRU;
        self.stats.invalidations += 1;
        Some(state)
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident lines (for tests and occupancy reporting).
    pub fn resident(&self) -> usize {
        self.lens.iter().map(|&n| n as usize).sum()
    }

    /// Captures the cache's complete state for a later [`Cache::restore`].
    pub fn save(&self) -> CacheSnapshot {
        CacheSnapshot(self.clone())
    }

    /// Reverts the cache to a previously saved snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a cache with different geometry —
    /// snapshots only travel between a cache and its own history.
    pub fn restore(&mut self, snap: &CacheSnapshot) {
        assert!(
            self.set_mask == snap.0.set_mask && self.assoc == snap.0.assoc,
            "restore from a snapshot of different cache geometry"
        );
        *self = snap.0.clone();
    }

    /// A 64-bit digest of the complete cache state (FNV-1a over every
    /// field, in declaration order). Two caches with equal hashes are
    /// equal for all practical purposes; the optimistic engine's strict
    /// mode uses this to audit that rollback replay reconstructs state
    /// exactly.
    pub fn state_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for set in 0..self.lens.len() {
            let base = set * self.assoc;
            let used = self.lens[set] as usize;
            fnv_word(&mut h, used as u64);
            fnv_word(&mut h, u64::from(self.mru[set]));
            for slot in base..base + used {
                fnv_word(&mut h, self.blocks[slot]);
                fnv_word(&mut h, self.meta[slot].stamp);
                fnv_word(&mut h, self.meta[slot].state as u64);
            }
        }
        fnv_word(&mut h, self.clock);
        fnv_word(&mut h, self.stats.hits);
        fnv_word(&mut h, self.stats.misses);
        fnv_word(&mut h, self.stats.evictions);
        fnv_word(&mut h, self.stats.invalidations);
        h
    }

    /// All resident blocks with their states, in no particular order
    /// (invariant checkers scan this; sort before comparing).
    pub fn resident_blocks(&self) -> impl Iterator<Item = (u64, BState)> + '_ {
        (0..self.lens.len()).flat_map(move |set| {
            let base = set * self.assoc;
            (0..self.lens[set] as usize)
                .map(move |way| (self.blocks[base + way], self.meta[base + way].state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 32B blocks = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            block_bytes: 32,
        })
    }

    #[test]
    fn paper_config_geometry() {
        assert_eq!(CacheConfig::paper().sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        CacheConfig {
            size_bytes: 96,
            assoc: 1,
            block_bytes: 32,
        }
        .sets();
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(4), None);
        c.insert(4, BState::Valid);
        assert_eq!(c.lookup(4), Some(BState::Valid));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (even blocks).
        c.insert(0, BState::Valid);
        c.insert(2, BState::Dirty);
        c.lookup(0); // 0 now more recent than 2
        let ev = c.insert(4, BState::Valid).expect("eviction");
        assert_eq!(ev.block, 2);
        assert_eq!(ev.state, BState::Dirty);
        assert_eq!(c.peek(0), Some(BState::Valid));
        assert_eq!(c.peek(2), None);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.insert(0, BState::Valid); // set 0
        c.insert(1, BState::Valid); // set 1
        c.insert(2, BState::Valid); // set 0
        c.insert(3, BState::Valid); // set 1
        assert!(c.insert(5, BState::Valid).is_some()); // set 1 full
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = tiny();
        c.insert(8, BState::Valid);
        c.set_state(8, BState::Dirty);
        assert_eq!(c.peek(8), Some(BState::Dirty));
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_missing_panics() {
        tiny().set_state(9, BState::Valid);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(8, BState::Valid);
        c.insert(8, BState::Valid);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = tiny();
        c.insert(8, BState::SharedDirty);
        assert_eq!(c.invalidate(8), Some(BState::SharedDirty));
        assert_eq!(c.invalidate(8), None);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn peek_does_not_affect_lru() {
        let mut c = tiny();
        c.insert(0, BState::Valid);
        c.insert(2, BState::Valid);
        c.peek(0); // must NOT refresh 0
        let ev = c.insert(4, BState::Valid).unwrap();
        assert_eq!(ev.block, 0); // 0 was still LRU
    }

    #[test]
    fn owned_states() {
        assert!(!BState::Valid.is_owned());
        assert!(BState::SharedDirty.is_owned());
        assert!(BState::Dirty.is_owned());
    }
}
