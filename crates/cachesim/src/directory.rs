//! Fully-mapped directory state.

use crate::{fnv_word, FNV_OFFSET};

/// One block's directory entry: a full-map presence set plus the Berkeley
/// owner (the cache responsible for supplying data and writing back).
///
/// The presence set is a bit set over node ids, which bounds the system at
/// 64 processors — comfortably above the paper's 32-processor sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    sharers: u64,
    owner: Option<usize>,
}

impl DirEntry {
    /// Nodes currently holding the block (including the owner), in
    /// ascending id order. Iterates by clearing the lowest set bit, so
    /// the cost is one step per sharer rather than one per possible node.
    pub fn sharers(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.sharers;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let node = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(node)
        })
    }

    /// Whether `node` holds a copy.
    pub fn is_sharer(&self, node: usize) -> bool {
        self.sharers & (1 << node) != 0
    }

    /// Number of nodes holding the block.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// The owning cache, if any cache owns the block.
    pub fn owner(&self) -> Option<usize> {
        self.owner
    }

    /// Marks `node` as holding a copy.
    pub fn add_sharer(&mut self, node: usize) {
        assert!(node < 64, "directory presence set supports up to 64 nodes");
        self.sharers |= 1 << node;
    }

    /// Clears `node`'s presence (and ownership if it was the owner).
    pub fn remove_sharer(&mut self, node: usize) {
        self.sharers &= !(1 << node);
        if self.owner == Some(node) {
            self.owner = None;
        }
    }

    /// Transfers ownership to `node` (which must be a sharer).
    pub fn set_owner(&mut self, node: Option<usize>) {
        if let Some(n) = node {
            assert!(self.is_sharer(n), "owner must hold the block");
        }
        self.owner = node;
    }

    /// True when no cache holds the block (memory is the only copy).
    pub fn is_uncached(&self) -> bool {
        self.sharers == 0
    }
}

/// The directory: block number → [`DirEntry`].
///
/// Physically the directory is distributed across homes; which node is the
/// home of a block is an addressing question the machine layer answers, so
/// this type is just the (sparse) state map.
///
/// The map is a purpose-built open-addressing table rather than a general
/// `HashMap`: directory entries are touched on every miss and upgrade, and
/// **never removed** (a block whose last copy is evicted keeps an empty
/// entry — `is_uncached` — exactly as the `HashMap` version did). That
/// insert-only discipline permits plain linear probing with no tombstones,
/// and block numbers hash with a single Fibonacci multiply instead of
/// SipHash.
///
/// Equality compares the physical table (slot layout included), so it
/// only holds between directories with identical insertion histories —
/// exactly what snapshot/restore round-trips produce. For a
/// layout-independent comparison use [`Directory::state_hash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    /// Power-of-two slot array; `None` is an empty slot.
    slots: Vec<Option<(u64, DirEntry)>>,
    /// Occupied slot count.
    items: usize,
    /// `64 - log2(slots.len())`: shift applied to the hashed key.
    shift: u32,
}

const DIR_INITIAL_SLOTS: usize = 64;

impl Default for Directory {
    fn default() -> Self {
        Directory {
            slots: vec![None; DIR_INITIAL_SLOTS],
            items: 0,
            shift: 64 - DIR_INITIAL_SLOTS.trailing_zeros(),
        }
    }
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Fibonacci-hash home slot for `block`.
    #[inline]
    fn slot_of(&self, block: u64) -> usize {
        (block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Index of the slot holding `block`, or of the empty slot where it
    /// would be inserted. With no deletions the probe chain from the home
    /// slot to the first empty slot is authoritative.
    #[inline]
    fn probe(&self, block: u64) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(block);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k != block => i = (i + 1) & mask,
                _ => return i,
            }
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_len]);
        self.shift = 64 - new_len.trailing_zeros();
        for slot in old.into_iter().flatten() {
            let i = self.probe(slot.0);
            self.slots[i] = Some(slot);
        }
    }

    /// The entry for `block`, creating an empty one on first touch.
    pub fn entry(&mut self, block: u64) -> &mut DirEntry {
        // Keep the load factor under ~70% so probe chains stay short.
        if self.items * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let i = self.probe(block);
        if self.slots[i].is_none() {
            self.slots[i] = Some((block, DirEntry::default()));
            self.items += 1;
        }
        &mut self.slots[i]
            .as_mut()
            .expect("probe returned occupied or inserted slot")
            .1
    }

    /// Read-only view of the entry for `block`, if it was ever touched.
    pub fn get(&self, block: u64) -> Option<&DirEntry> {
        self.slots[self.probe(block)].as_ref().map(|(_, e)| e)
    }

    /// Number of blocks with directory state.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when no block has directory state.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// All blocks with directory state, in no particular order
    /// (invariant checkers scan this; sort before comparing).
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().flatten().map(|&(k, _)| k)
    }

    /// Captures the directory's complete state for a later
    /// [`Directory::restore`].
    pub fn save(&self) -> DirectorySnapshot {
        DirectorySnapshot(self.clone())
    }

    /// Reverts the directory to a previously saved snapshot.
    pub fn restore(&mut self, snap: &DirectorySnapshot) {
        *self = snap.0.clone();
    }

    /// A 64-bit digest of the directory's *logical* state: per-entry
    /// hashes combined commutatively, so the digest is independent of
    /// slot layout and table capacity (entries land in different slots
    /// after a [`Directory::grow`], but the hash is unchanged).
    pub fn state_hash(&self) -> u64 {
        let mut acc = 0u64;
        for &(block, entry) in self.slots.iter().flatten() {
            let mut h = FNV_OFFSET;
            fnv_word(&mut h, block);
            fnv_word(&mut h, entry.sharers);
            fnv_word(&mut h, entry.owner.map_or(u64::MAX, |o| o as u64));
            // Commutative fold: wrapping add is order-insensitive.
            acc = acc.wrapping_add(h);
        }
        let mut out = FNV_OFFSET;
        fnv_word(&mut out, self.items as u64);
        fnv_word(&mut out, acc);
        out
    }
}

/// An opaque, complete snapshot of a [`Directory`], taken with
/// [`Directory::save`] and reapplied with [`Directory::restore`].
#[derive(Debug, Clone)]
pub struct DirectorySnapshot(Directory);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_entry_is_uncached() {
        let mut d = Directory::new();
        assert!(d.entry(7).is_uncached());
        assert_eq!(d.entry(7).owner(), None);
    }

    #[test]
    fn sharers_roundtrip() {
        let mut e = DirEntry::default();
        e.add_sharer(3);
        e.add_sharer(5);
        assert!(e.is_sharer(3));
        assert!(!e.is_sharer(4));
        assert_eq!(e.sharers().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(e.sharer_count(), 2);
        e.remove_sharer(3);
        assert!(!e.is_sharer(3));
    }

    #[test]
    fn owner_cleared_when_removed() {
        let mut e = DirEntry::default();
        e.add_sharer(2);
        e.set_owner(Some(2));
        assert_eq!(e.owner(), Some(2));
        e.remove_sharer(2);
        assert_eq!(e.owner(), None);
        assert!(e.is_uncached());
    }

    #[test]
    #[should_panic(expected = "owner must hold")]
    fn owner_must_be_sharer() {
        let mut e = DirEntry::default();
        e.set_owner(Some(1));
    }

    #[test]
    #[should_panic(expected = "up to 64 nodes")]
    fn presence_set_bound() {
        let mut e = DirEntry::default();
        e.add_sharer(64);
    }

    #[test]
    fn directory_len_tracks_touched_blocks() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.entry(1).add_sharer(0);
        d.entry(2).add_sharer(0);
        d.entry(1).add_sharer(1);
        assert_eq!(d.len(), 2);
        assert!(d.get(3).is_none());
        assert!(d.get(1).unwrap().is_sharer(1));
    }
}
