//! Fully-mapped directory state.

use std::collections::HashMap;

/// One block's directory entry: a full-map presence set plus the Berkeley
/// owner (the cache responsible for supplying data and writing back).
///
/// The presence set is a bit set over node ids, which bounds the system at
/// 64 processors — comfortably above the paper's 32-processor sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    sharers: u64,
    owner: Option<usize>,
}

impl DirEntry {
    /// Nodes currently holding the block (including the owner).
    pub fn sharers(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.sharers;
        (0..64).filter(move |i| bits & (1 << i) != 0)
    }

    /// Whether `node` holds a copy.
    pub fn is_sharer(&self, node: usize) -> bool {
        self.sharers & (1 << node) != 0
    }

    /// Number of nodes holding the block.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// The owning cache, if any cache owns the block.
    pub fn owner(&self) -> Option<usize> {
        self.owner
    }

    /// Marks `node` as holding a copy.
    pub fn add_sharer(&mut self, node: usize) {
        assert!(node < 64, "directory presence set supports up to 64 nodes");
        self.sharers |= 1 << node;
    }

    /// Clears `node`'s presence (and ownership if it was the owner).
    pub fn remove_sharer(&mut self, node: usize) {
        self.sharers &= !(1 << node);
        if self.owner == Some(node) {
            self.owner = None;
        }
    }

    /// Transfers ownership to `node` (which must be a sharer).
    pub fn set_owner(&mut self, node: Option<usize>) {
        if let Some(n) = node {
            assert!(self.is_sharer(n), "owner must hold the block");
        }
        self.owner = node;
    }

    /// True when no cache holds the block (memory is the only copy).
    pub fn is_uncached(&self) -> bool {
        self.sharers == 0
    }
}

/// The directory: block number → [`DirEntry`].
///
/// Physically the directory is distributed across homes; which node is the
/// home of a block is an addressing question the machine layer answers, so
/// this type is just the (sparse) state map.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// The entry for `block`, creating an empty one on first touch.
    pub fn entry(&mut self, block: u64) -> &mut DirEntry {
        self.entries.entry(block).or_default()
    }

    /// Read-only view of the entry for `block`, if it was ever touched.
    pub fn get(&self, block: u64) -> Option<&DirEntry> {
        self.entries.get(&block)
    }

    /// Number of blocks with directory state.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no block has directory state.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All blocks with directory state, in no particular order
    /// (invariant checkers scan this; sort before comparing).
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_entry_is_uncached() {
        let mut d = Directory::new();
        assert!(d.entry(7).is_uncached());
        assert_eq!(d.entry(7).owner(), None);
    }

    #[test]
    fn sharers_roundtrip() {
        let mut e = DirEntry::default();
        e.add_sharer(3);
        e.add_sharer(5);
        assert!(e.is_sharer(3));
        assert!(!e.is_sharer(4));
        assert_eq!(e.sharers().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(e.sharer_count(), 2);
        e.remove_sharer(3);
        assert!(!e.is_sharer(3));
    }

    #[test]
    fn owner_cleared_when_removed() {
        let mut e = DirEntry::default();
        e.add_sharer(2);
        e.set_owner(Some(2));
        assert_eq!(e.owner(), Some(2));
        e.remove_sharer(2);
        assert_eq!(e.owner(), None);
        assert!(e.is_uncached());
    }

    #[test]
    #[should_panic(expected = "owner must hold")]
    fn owner_must_be_sharer() {
        let mut e = DirEntry::default();
        e.set_owner(Some(1));
    }

    #[test]
    #[should_panic(expected = "up to 64 nodes")]
    fn presence_set_bound() {
        let mut e = DirEntry::default();
        e.add_sharer(64);
    }

    #[test]
    fn directory_len_tracks_touched_blocks() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.entry(1).add_sharer(0);
        d.entry(2).add_sharer(0);
        d.entry(1).add_sharer(1);
        assert_eq!(d.len(), 2);
        assert!(d.get(3).is_none());
        assert!(d.get(1).unwrap().is_sharer(1));
    }
}
