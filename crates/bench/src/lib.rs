//! # spasm-bench — benchmarks and the figure-regeneration harness
//!
//! * the `figures` binary (`cargo run -p spasm-bench --release --bin
//!   figures -- --all`) regenerates the data behind every figure of the
//!   paper's evaluation section as aligned tables and CSV;
//! * the benches (`cargo bench`), built on the in-tree [`harness`]
//!   module, measure the simulator itself: network message cost per
//!   topology, coherence transaction cost, and — reproducing the
//!   paper's §7 "Speed of Simulation" — the wall-clock cost of
//!   simulating each machine characterization. Each bench writes a
//!   `BENCH_<name>.json` summary for machine consumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use spasm_apps::SizeClass;

/// Parses a size-class name.
pub fn parse_size(s: &str) -> Option<SizeClass> {
    match s {
        "test" => Some(SizeClass::Test),
        "small" => Some(SizeClass::Small),
        "full" => Some(SizeClass::Full),
        _ => None,
    }
}

/// Parses a comma-separated processor list. Counts the networks cannot
/// host (non-powers-of-two, zero) are accepted here: the resilient
/// sweep layer reports them as typed `FAILED` points instead of the CLI
/// guessing at validity.
pub fn parse_procs(s: &str) -> Option<Vec<usize>> {
    s.split(',')
        .map(|t| t.trim().parse::<usize>().ok())
        .collect()
}

/// Parses a `--jobs` worker count: `auto` (or `0`) means one worker per
/// host hardware thread, anything else is an explicit worker count in
/// the executor's convention (`SweepConfig::jobs`).
pub fn parse_jobs(s: &str) -> Option<usize> {
    if s == "auto" {
        return Some(0);
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("test"), Some(SizeClass::Test));
        assert_eq!(parse_size("small"), Some(SizeClass::Small));
        assert_eq!(parse_size("full"), Some(SizeClass::Full));
        assert_eq!(parse_size("huge"), None);
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs("auto"), Some(0));
        assert_eq!(parse_jobs("0"), Some(0));
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("8"), Some(8));
        assert_eq!(parse_jobs("many"), None);
    }

    #[test]
    fn procs_parsing() {
        assert_eq!(parse_procs("2,4,8"), Some(vec![2, 4, 8]));
        assert_eq!(parse_procs("2, 16"), Some(vec![2, 16]));
        // Invalid counts parse; the sweep layer turns them into typed
        // FAILED points rather than a CLI rejection.
        assert_eq!(parse_procs("3"), Some(vec![3]));
        assert_eq!(parse_procs("2,x"), None);
    }
}
