//! A small in-tree wall-clock benchmark harness (criterion replacement).
//!
//! Each benchmark runs a warmup phase followed by N timed iterations and
//! reports min / mean / median / p95 nanoseconds per iteration. Results
//! print as an aligned table and are written as `BENCH_<harness>.json`
//! in the working directory, so successive runs can be diffed by
//! scripts without parsing human output.
//!
//! Environment knobs:
//!
//! * `SPASM_BENCH_ITERS` — timed iterations per benchmark (default 30);
//! * `SPASM_BENCH_WARMUP` — warmup iterations (default 5);
//! * full timing runs only under `cargo bench` (cargo passes `--bench`
//!   to the binary); any other invocation — notably `cargo test
//!   --benches`, which passes no flag — gets smoke mode: one
//!   iteration per benchmark, no JSON artifact.
//!
//! Iterations are timed individually with [`std::time::Instant`]; keep
//! each iteration's work at the microsecond scale or above (batch inner
//! loops) so timer overhead stays in the noise.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Per-benchmark summary statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark label (`group/case` by convention).
    pub name: String,
    /// Minimum observed iteration time.
    pub min_ns: u64,
    /// Mean iteration time.
    pub mean_ns: u64,
    /// Median (p50) iteration time.
    pub median_ns: u64,
    /// 95th-percentile iteration time.
    pub p95_ns: u64,
    /// Number of timed iterations.
    pub iters: u32,
}

/// The benchmark runner for one bench binary.
pub struct Harness {
    name: String,
    iters: u32,
    warmup: u32,
    smoke: bool,
    results: Vec<Stats>,
}

impl Harness {
    /// Creates the runner. `name` becomes the JSON file stem
    /// (`BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        let env_u32 = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        // Cargo passes `--bench` only under `cargo bench`; under
        // `cargo test --benches` the binary gets no flag at all. Treat
        // anything that isn't an explicit bench run as a smoke check:
        // run everything once, skip timing artifacts.
        let smoke = !std::env::args().any(|a| a == "--bench");
        Harness {
            name: name.to_string(),
            iters: if smoke {
                1
            } else {
                env_u32("SPASM_BENCH_ITERS", 30)
            },
            warmup: if smoke {
                0
            } else {
                env_u32("SPASM_BENCH_WARMUP", 5)
            },
            smoke,
            results: Vec::new(),
        }
    }

    /// Times `f` for the configured iteration count. The closure's
    /// return value is passed through [`black_box`] so the work is not
    /// optimized away.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        self.bench_with_setup(label, || (), move |()| f());
    }

    /// Times `routine` only; `setup` runs untimed before every
    /// iteration (the criterion `iter_batched` pattern, for routines
    /// that consume fresh state).
    pub fn bench_with_setup<S, R>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        for _ in 0..self.warmup {
            let s = setup();
            black_box(routine(s));
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let s = setup();
            let t0 = Instant::now();
            black_box(routine(s));
            samples.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        samples.sort_unstable();
        let stats = Stats {
            name: label.to_string(),
            min_ns: samples[0],
            mean_ns: (samples.iter().map(|&s| u128::from(s)).sum::<u128>() / samples.len() as u128)
                as u64,
            median_ns: percentile(&samples, 50),
            p95_ns: percentile(&samples, 95),
            iters: self.iters,
        };
        println!(
            "{:<44} median {:>12}  p95 {:>12}  min {:>12}  ({} iters)",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns),
            stats.iters
        );
        self.results.push(stats);
    }

    /// Records an externally measured value (in nanoseconds, or any
    /// scaled quantity the label explains) as a single-iteration result
    /// row. For one-shot wall-clock measurements and derived numbers —
    /// e.g. a parallel-over-serial speedup scaled by 1000 — that should
    /// land in `BENCH_<name>.json` next to the timed benches.
    pub fn gauge(&mut self, label: &str, value: u64) {
        let stats = Stats {
            name: label.to_string(),
            min_ns: value,
            mean_ns: value,
            median_ns: value,
            p95_ns: value,
            iters: 1,
        };
        println!("{:<44} gauge  {:>12}", stats.name, stats.median_ns);
        self.results.push(stats);
    }

    /// Writes `BENCH_<name>.json` (unless in smoke mode) and consumes
    /// the runner.
    pub fn finish(self) {
        if self.smoke {
            println!(
                "[{}] smoke mode (no --bench flag): skipping BENCH json",
                self.name
            );
            return;
        }
        let path = format!("BENCH_{}.json", self.name);
        let json = self.to_json();
        match std::fs::write(&path, json) {
            Ok(()) => println!("[{}] wrote {path}", self.name),
            Err(e) => eprintln!("[{}] could not write {path}: {e}", self.name),
        }
    }

    /// Renders the results as a JSON document (hand-rolled: the
    /// workspace is dependency-free, and labels are plain ASCII).
    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"harness\": \"{}\",", escape(&self.name));
        let _ = writeln!(s, "  \"warmup_iters\": {},", self.warmup);
        let _ = writeln!(s, "  \"benches\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \
                 \"mean_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}}}{comma}",
                escape(&r.name),
                r.iters,
                r.min_ns,
                r.mean_ns,
                r.median_ns,
                r.p95_ns
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

/// Nearest-rank percentile of an ascending-sorted sample vector.
fn percentile(sorted: &[u64], pct: u32) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (u64::from(pct) * sorted.len() as u64).div_ceil(100);
    sorted[(rank.max(1) as usize - 1).min(sorted.len() - 1)]
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => "\\u0020".chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[42], 95), 42);
        assert_eq!(percentile(&[1, 2], 50), 1);
    }

    #[test]
    fn json_shape_is_parsable_by_eye_and_machine() {
        let mut h = Harness {
            name: "unit".into(),
            iters: 3,
            warmup: 0,
            smoke: true,
            results: Vec::new(),
        };
        h.bench("group/case", || 1 + 1);
        let json = h.to_json();
        assert!(json.contains("\"harness\": \"unit\""));
        assert!(json.contains("\"name\": \"group/case\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"p95_ns\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn stats_are_recorded_per_bench() {
        let mut h = Harness {
            name: "unit".into(),
            iters: 5,
            warmup: 1,
            smoke: true,
            results: Vec::new(),
        };
        h.bench("a", || std::hint::black_box(17u64.wrapping_mul(31)));
        h.bench_with_setup("b", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert_eq!(h.results.len(), 2);
        for r in &h.results {
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
            assert_eq!(r.iters, 5);
        }
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn gauge_rows_land_in_results_and_json() {
        let mut h = Harness {
            name: "unit".into(),
            iters: 1,
            warmup: 0,
            smoke: true,
            results: Vec::new(),
        };
        h.gauge("exec/speedup_x1000", 2750);
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].iters, 1);
        assert_eq!(h.results[0].median_ns, 2750);
        assert!(h.to_json().contains("\"name\": \"exec/speedup_x1000\""));
    }
}
