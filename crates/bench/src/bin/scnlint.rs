//! `scnlint` — offline validator for `figures --telemetry` JSONL files.
//!
//! Reads one or more telemetry files and checks, per
//! (figure, machine, procs) point:
//!
//! * every line is a flat JSON object with `"v":1` and a known `kind`;
//! * interval indexes start at 0 and increase by 1;
//! * interval sim-time windows are monotone and non-overlapping
//!   (`t0 < t1`, next `t0 >= previous t1`);
//! * the summary's `intervals` count and `events` total match the
//!   interval lines that precede it.
//!
//! Exits 0 when every file is clean, 1 otherwise. The parser is
//! hand-rolled for the flat objects the harness emits; it is not a
//! general JSON parser and does not need to be.

use std::collections::HashMap;
use std::process::ExitCode;

/// A flat JSON value as emitted by the telemetry writer.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
    Null,
}

impl Val {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`, no nesting).
fn parse_flat(line: &str) -> Result<HashMap<String, Val>, String> {
    let mut out = HashMap::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err("expected '{'".into());
    }
    i += 1;
    loop {
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b'}' {
            i += 1;
            break;
        }
        let key = parse_string(bytes, &mut i)?;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let val = if i < bytes.len() && bytes[i] == b'"' {
            Val::Str(parse_string(bytes, &mut i)?)
        } else if line[i..].starts_with("null") {
            i += 4;
            Val::Null
        } else {
            let start = i;
            while i < bytes.len()
                && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                i += 1;
            }
            let n: f64 = line[start..i]
                .parse()
                .map_err(|_| format!("bad number for key {key:?}"))?;
            Val::Num(n)
        };
        if out.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        } else if i < bytes.len() && bytes[i] == b'}' {
            i += 1;
            break;
        } else {
            return Err("expected ',' or '}'".into());
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(out)
}

/// Parses a quoted JSON string (supports `\"` and `\\` escapes).
fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
    if *i >= bytes.len() || bytes[*i] != b'"' {
        return Err("expected '\"'".into());
    }
    *i += 1;
    let mut s = String::new();
    while *i < bytes.len() {
        match bytes[*i] {
            b'"' => {
                *i += 1;
                return Ok(s);
            }
            b'\\' => {
                *i += 1;
                if *i >= bytes.len() {
                    return Err("dangling escape".into());
                }
                match bytes[*i] {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                }
                *i += 1;
            }
            c => {
                s.push(c as char);
                *i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

/// Running state of one (figure, machine, procs) point.
#[derive(Default)]
struct PointState {
    intervals: u64,
    events: u64,
    last_t1: u64,
    summarized: bool,
}

fn require_u64(obj: &HashMap<String, Val>, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Val::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn lint_line(
    obj: &HashMap<String, Val>,
    points: &mut HashMap<String, PointState>,
) -> Result<(), String> {
    if require_u64(obj, "v")? != 1 {
        return Err("unknown schema version (want \"v\":1)".into());
    }
    let figure = obj
        .get("figure")
        .and_then(Val::as_str)
        .ok_or("missing figure")?;
    let machine = obj
        .get("machine")
        .and_then(Val::as_str)
        .ok_or("missing machine")?;
    let procs = require_u64(obj, "procs")?;
    let id = format!("{figure}/{machine}/p{procs}");
    let st = points.entry(id.clone()).or_default();
    match obj.get("kind").and_then(Val::as_str) {
        Some("interval") => {
            if st.summarized {
                return Err(format!("{id}: interval after summary"));
            }
            let index = require_u64(obj, "i")?;
            let t0 = require_u64(obj, "t0_ns")?;
            let t1 = require_u64(obj, "t1_ns")?;
            if index != st.intervals {
                return Err(format!(
                    "{id}: interval index {index}, expected {}",
                    st.intervals
                ));
            }
            if t0 >= t1 {
                return Err(format!("{id}: empty or inverted window {t0}..{t1}"));
            }
            if t0 < st.last_t1 {
                return Err(format!(
                    "{id}: window {t0}..{t1} overlaps previous end {}",
                    st.last_t1
                ));
            }
            st.intervals += 1;
            st.events += require_u64(obj, "events")?;
            st.last_t1 = t1;
            Ok(())
        }
        Some("summary") => {
            if st.summarized {
                return Err(format!("{id}: duplicate summary"));
            }
            let n = require_u64(obj, "intervals")?;
            let events = require_u64(obj, "events")?;
            if n != st.intervals {
                return Err(format!(
                    "{id}: summary claims {n} intervals, saw {}",
                    st.intervals
                ));
            }
            if events != st.events {
                return Err(format!(
                    "{id}: summary claims {events} events, intervals sum to {}",
                    st.events
                ));
            }
            match obj.get("outcome").and_then(Val::as_str) {
                Some("ok") | Some("failed") => {}
                _ => return Err(format!("{id}: bad outcome")),
            }
            st.summarized = true;
            Ok(())
        }
        _ => Err("missing or unknown kind".into()),
    }
}

fn lint_file(path: &str) -> Result<(u64, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut points: HashMap<String, PointState> = HashMap::new();
    let mut lines = 0u64;
    for (n, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        lint_line(&obj, &mut points).map_err(|e| format!("line {}: {e}", n + 1))?;
        lines += 1;
    }
    for (id, st) in &points {
        if !st.summarized {
            return Err(format!("{id}: interval lines without a summary"));
        }
    }
    Ok((lines, points.len() as u64))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: scnlint FILE.jsonl [FILE.jsonl ...]");
        return ExitCode::from(1);
    }
    let mut bad = false;
    for path in &args {
        match lint_file(path) {
            Ok((lines, points)) => {
                println!("{path}: ok ({lines} lines, {points} points)");
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                bad = true;
            }
        }
    }
    if bad {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_text(text: &str) -> Result<(), String> {
        let mut points = HashMap::new();
        for (n, line) in text.lines().enumerate() {
            let obj = parse_flat(line).map_err(|e| format!("line {}: {e}", n + 1))?;
            lint_line(&obj, &mut points).map_err(|e| format!("line {}: {e}", n + 1))?;
        }
        for (id, st) in &points {
            if !st.summarized {
                return Err(format!("{id}: interval lines without a summary"));
            }
        }
        Ok(())
    }

    const GOOD: &str = concat!(
        "{\"v\":1,\"kind\":\"interval\",\"figure\":\"f\",\"app\":\"a\",\"net\":\"full\",\"machine\":\"target\",\"procs\":2,\"i\":0,\"t0_ns\":0,\"t1_ns\":100,\"events\":5,\"queue\":1,\"busy_ns\":50,\"mem_ns\":10,\"comm_ns\":5,\"sync_ns\":0,\"cache_hits\":3,\"cache_misses\":1,\"faults\":0}\n",
        "{\"v\":1,\"kind\":\"interval\",\"figure\":\"f\",\"app\":\"a\",\"net\":\"full\",\"machine\":\"target\",\"procs\":2,\"i\":1,\"t0_ns\":100,\"t1_ns\":250,\"events\":7,\"queue\":2,\"busy_ns\":80,\"mem_ns\":12,\"comm_ns\":6,\"sync_ns\":1,\"cache_hits\":4,\"cache_misses\":2,\"faults\":0}\n",
        "{\"v\":1,\"kind\":\"summary\",\"figure\":\"f\",\"app\":\"a\",\"net\":\"full\",\"machine\":\"target\",\"procs\":2,\"intervals\":2,\"events\":12,\"exec_us\":3.5,\"peak_queue\":2,\"outcome\":\"ok\"}\n",
    );

    #[test]
    fn clean_stream_passes() {
        assert!(lint_text(GOOD).is_ok());
    }

    #[test]
    fn overlap_and_count_violations_are_caught() {
        let overlapping = GOOD.replace("\"t0_ns\":100", "\"t0_ns\":50");
        assert!(lint_text(&overlapping).unwrap_err().contains("overlaps"));
        let short = GOOD.replace("\"intervals\":2", "\"intervals\":3");
        assert!(lint_text(&short)
            .unwrap_err()
            .contains("claims 3 intervals"));
        let lost = GOOD.replace("\"events\":12", "\"events\":11");
        assert!(lint_text(&lost).unwrap_err().contains("claims 11 events"));
        let unversioned = GOOD.replace(
            "\"v\":1,\"kind\":\"summary\"",
            "\"v\":2,\"kind\":\"summary\"",
        );
        assert!(lint_text(&unversioned)
            .unwrap_err()
            .contains("schema version"));
        let garbled = GOOD.replace(
            "{\"v\":1,\"kind\":\"summary\"",
            "{\"v\":1,\"kind\":\"summary\"}",
        );
        assert!(lint_text(&garbled).is_err());
    }

    #[test]
    fn summary_must_follow_its_intervals() {
        let mut lines: Vec<&str> = GOOD.lines().collect();
        lines.swap(1, 2);
        let reordered = lines.join("\n");
        assert!(lint_text(&reordered)
            .unwrap_err()
            .contains("claims 2 intervals"));
    }
}
