//! Crash-consistency chaos driver: exhaustive crash-point exploration,
//! fuzzed fault campaigns, and failure shrinking over the in-memory
//! [`spasm_journal::FaultVfs`].
//!
//! ```text
//! chaos --explore FIGURE [--size test|small|full] [--procs 2,4]
//!       [--seed N] [--torn-window N]
//! chaos --campaign --seed N [--trials K]
//! chaos --shrink-demo [--seed N]
//! ```
//!
//! `--explore` records the I/O operation trace of a reference journaled
//! sweep of FIGURE, then re-runs the sweep once per operation index
//! with a power cut injected there, plus a dropped-fsync ×
//! delayed-crash grid (`--torn-window`, default 8) that manufactures
//! torn journals. Every point must either resume byte-identically or
//! refuse with a typed error naming the corruption.
//!
//! `--campaign` fuzzes random multi-fault scripts (torn/short writes,
//! ENOSPC, dropped fsyncs, failed renames, power cuts) across four
//! failure families — plain journal, two-shard fleet with merge,
//! deadline-cut resume, optimistic engine under anti-message loss — and
//! on the first oracle violation shrinks the script to a minimal
//! reproducer before exiting nonzero.
//!
//! `--shrink-demo` runs the shrinker on a known-failing multi-fault
//! script against the stricter replay-everything property, showing the
//! minimization machinery end to end.
//!
//! Exit codes: 0 oracle satisfied everywhere · 1 silent divergence or
//! harness failure (minimal reproducer on stderr) · 2 usage.

use std::process::ExitCode;
use std::time::Instant;

use spasm_bench::{parse_procs, parse_size};
use spasm_core::chaos::{
    explore_crash_points, run_campaign, shrink_demo, CampaignConfig, ChaosSweep,
};
use spasm_core::figures;

const EXIT_OK: u8 = 0;
const EXIT_FAIL: u8 = 1;
const EXIT_USAGE: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos --explore FIGURE [--size S] [--procs LIST] [--seed N] [--torn-window N]\n\
         \x20      chaos --campaign --seed N [--trials K]\n\
         \x20      chaos --shrink-demo [--seed N]"
    );
    ExitCode::from(EXIT_USAGE)
}

enum Mode {
    Explore(String),
    Campaign,
    ShrinkDemo,
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut size = spasm_apps::SizeClass::Test;
    let mut procs = vec![2usize];
    let mut seed = 42u64;
    let mut trials = 8usize;
    let mut torn_window = 8usize;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            match it.next() {
                Some(v) => Some(v.clone()),
                None => {
                    eprintln!("chaos: {name} needs a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--explore" => match take("--explore") {
                Some(fig) => mode = Some(Mode::Explore(fig)),
                None => return usage(),
            },
            "--campaign" => mode = Some(Mode::Campaign),
            "--shrink-demo" => mode = Some(Mode::ShrinkDemo),
            "--size" => match take("--size").and_then(|v| parse_size(&v)) {
                Some(s) => size = s,
                None => return usage(),
            },
            "--procs" => match take("--procs").and_then(|v| parse_procs(&v)) {
                Some(p) => procs = p,
                None => return usage(),
            },
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--trials" => match take("--trials").and_then(|v| v.parse().ok()) {
                Some(n) => trials = n,
                None => return usage(),
            },
            "--torn-window" => match take("--torn-window").and_then(|v| v.parse().ok()) {
                Some(n) => torn_window = n,
                None => return usage(),
            },
            other => {
                eprintln!("chaos: unknown argument {other}");
                return usage();
            }
        }
    }

    let started = Instant::now();
    match mode {
        Some(Mode::Explore(fig)) => {
            let Some(spec) = figures::by_id(&fig) else {
                eprintln!("chaos: unknown figure {fig} (try: figures --list)");
                return usage();
            };
            let cs = ChaosSweep {
                size,
                procs,
                seed,
                ..ChaosSweep::smoke(spec)
            };
            match explore_crash_points(&cs, torn_window) {
                Ok(report) => {
                    for (script, error) in &report.refusals {
                        eprintln!("refused under {script}: {error}");
                    }
                    println!("chaos explore {}: {report}", spec.id);
                    eprintln!("explored in {:.1?}", started.elapsed());
                    if report.refused_pure_crash > 0 {
                        eprintln!(
                            "chaos: {} pure power cuts were refused instead of resuming — \
                             the atomic-rename commit should make every clean crash recoverable",
                            report.refused_pure_crash
                        );
                        return ExitCode::from(EXIT_FAIL);
                    }
                    ExitCode::from(EXIT_OK)
                }
                Err(err) => {
                    eprintln!("chaos explore {}: {err}", spec.id);
                    ExitCode::from(EXIT_FAIL)
                }
            }
        }
        Some(Mode::Campaign) => {
            let config = CampaignConfig::new(seed, trials);
            match run_campaign(&config) {
                Ok(outcome) => {
                    println!(
                        "chaos campaign seed={:#x}: {} trials, {} identical, {} refused, 0 divergent",
                        config.seed, outcome.trials, outcome.identical, outcome.refused
                    );
                    eprintln!("campaign in {:.1?}", started.elapsed());
                    ExitCode::from(EXIT_OK)
                }
                Err(failure) => {
                    eprintln!("chaos campaign seed={:#x}: {failure}", config.seed);
                    ExitCode::from(EXIT_FAIL)
                }
            }
        }
        Some(Mode::ShrinkDemo) => match shrink_demo(seed) {
            Ok(demo) => {
                println!(
                    "chaos shrink-demo: {} -> {} ({} shrink attempts, {} points)",
                    demo.script, demo.minimized, demo.shrink_steps, demo.total_points
                );
                println!("  original failure: {}", demo.detail);
                println!("  minimal failure: {}", demo.minimized_detail);
                eprintln!("shrunk in {:.1?}", started.elapsed());
                if demo.minimized.faults.len() < demo.script.faults.len() {
                    ExitCode::from(EXIT_OK)
                } else {
                    eprintln!("chaos: shrinker failed to reduce the demo script");
                    ExitCode::from(EXIT_FAIL)
                }
            }
            Err(err) => {
                eprintln!("chaos shrink-demo: {err}");
                ExitCode::from(EXIT_FAIL)
            }
        },
        None => usage(),
    }
}
