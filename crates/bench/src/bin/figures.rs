//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! figures --all [--size test|small|full] [--procs 2,4,8,16,32]
//!         [--seed N] [--csv PATH]
//! figures --figure F13 [...]
//! figures --list
//! ```

use std::io::Write;
use std::process::ExitCode;

use spasm_apps::SizeClass;
use spasm_bench::{parse_procs, parse_size};
use spasm_core::figures::{self, FigureSpec};
use spasm_core::sweep::run_figure;

struct Args {
    figures: Vec<&'static FigureSpec>,
    size: SizeClass,
    procs: Vec<usize>,
    seed: u64,
    csv: Option<String>,
    chart: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: figures (--all | --figure ID | --list | --ablation g|protocol|cache) \
         [--size test|small|full] \
         [--procs 2,4,...] [--seed N] [--csv PATH] [--chart]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        figures: Vec::new(),
        size: SizeClass::Small,
        procs: figures::PROC_SWEEP.to_vec(),
        seed: 1995,
        csv: None,
        chart: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--all" => args.figures = figures::FIGURES.iter().collect(),
            "--figure" => {
                let id = it.next().unwrap_or_else(|| usage());
                match figures::by_id(&id) {
                    Some(spec) => args.figures.push(spec),
                    None => {
                        eprintln!("unknown figure {id}; try --list");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for f in figures::FIGURES {
                    println!(
                        "{:>3}  {:8} {:4} {:24} {}",
                        f.id,
                        f.app.to_string(),
                        f.net.to_string(),
                        f.metric.to_string(),
                        f.expect
                    );
                }
                std::process::exit(0);
            }
            "--size" => {
                args.size =
                    parse_size(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--procs" => {
                args.procs =
                    parse_procs(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--chart" => args.chart = true,
            "--ablation" => {
                let which = it.next().unwrap_or_else(|| usage());
                run_ablation(&which);
                std::process::exit(0);
            }
            _ => usage(),
        }
    }
    if args.figures.is_empty() {
        usage();
    }
    args
}

/// Runs one of the extension studies (EXPERIMENTS.md A2–A4) and prints
/// its table.
fn run_ablation(which: &str) {
    use spasm_apps::AppId;
    use spasm_core::ablation;
    use spasm_core::Net;

    match which {
        "g" => {
            println!("A2: traffic-aware g on the 8-processor mesh (test size)\n");
            println!(
                "{:>9} {:>9} {:>12} {:>12} {:>12}",
                "app", "crossing", "target (us)", "naive (us)", "aware (us)"
            );
            for app in AppId::ALL {
                let s = ablation::traffic_aware_g(app, SizeClass::Test, Net::Mesh, 8, 1995)
                    .expect("verified runs");
                println!(
                    "{:>9} {:>8.0}% {:>12.1} {:>12.1} {:>12.1}",
                    app.to_string(),
                    100.0 * s.crossing_fraction,
                    s.target.contention_us,
                    s.naive.contention_us,
                    s.aware.contention_us,
                );
            }
        }
        "protocol" => {
            println!("A3: coherence-protocol sensitivity on the target (full, p=8)\n");
            println!(
                "{:>9} {:>14} {:>18} {:>8}",
                "app", "berkeley (us)", "wb-on-read (us)", "gap"
            );
            for app in AppId::ALL {
                let s = ablation::protocol_sensitivity(app, SizeClass::Test, Net::Full, 8, 1995)
                    .expect("verified runs");
                println!(
                    "{:>9} {:>14.1} {:>18.1} {:>7.1}%",
                    app.to_string(),
                    s.berkeley.exec_us,
                    s.write_back_on_read.exec_us,
                    100.0 * s.exec_gap(),
                );
            }
        }
        "cache" => {
            println!("A4: cache working-set sweep on the target (full, p=8)\n");
            print!("{:>9}", "app");
            for &cap in ablation::CACHE_SWEEP {
                print!(" {:>9}KiB", cap / 1024);
            }
            println!();
            for app in AppId::ALL {
                let points = ablation::cache_working_set(
                    app,
                    SizeClass::Test,
                    Net::Full,
                    8,
                    1995,
                    ablation::CACHE_SWEEP,
                )
                .expect("verified runs");
                print!("{:>9}", app.to_string());
                for p in points {
                    print!(" {:>12.1}", p.metrics.exec_us);
                }
                println!();
            }
            println!("\n(cells: execution time in us)");
        }
        _ => {
            eprintln!("unknown ablation {which}; expected g | protocol | cache");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut csv = String::from("figure,app,net,metric,procs,machine,value\n");
    let mut failed_points = 0;
    for spec in &args.figures {
        let started = std::time::Instant::now();
        let data = run_figure(spec, args.size, &args.procs, args.seed);
        println!("{}", data.render_table());
        if args.chart {
            println!("{}", data.render_chart(12));
        }
        println!("  [swept in {:.1?}]\n", started.elapsed());
        // Every failed point is named on stderr but does not abort the
        // remaining figures.
        for s in &data.series {
            for (i, outcome) in s.outcomes.iter().enumerate() {
                if let spasm_core::sweep::Outcome::Failed { error, attempts } = outcome {
                    failed_points += 1;
                    eprintln!(
                        "{}: p={} {}: FAILED after {attempts} attempt(s): {error}",
                        spec.id, data.procs[i], s.machine
                    );
                }
            }
        }
        // Append all but the shared header line.
        for line in data.to_csv().lines().skip(1) {
            csv.push_str(line);
            csv.push('\n');
        }
    }
    if let Some(path) = args.csv {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if failed_points > 0 {
        eprintln!("{failed_points} point(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
