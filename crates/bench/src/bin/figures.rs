//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! figures --all [--size test|small|full] [--procs 2,4,8,16,32]
//!         [--seed N] [--csv PATH] [--jobs N|auto] [--serial]
//!         [--budget-events N]
//! figures --figure F13 [...]
//! figures --list
//! ```
//!
//! Sweep points run on the `spasm-exec` worker pool — one worker per
//! host hardware thread by default (`--jobs auto`); `--serial` forces
//! the inline single-thread path. Output is byte-identical either way;
//! per-series and total elapsed times go to stderr so the speedup is
//! visible without polluting the table/CSV streams.

use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use spasm_apps::SizeClass;
use spasm_bench::{parse_jobs, parse_procs, parse_size};
use spasm_core::figures::{self, FigureSpec};
use spasm_core::sweep::{run_figure_observed, SweepConfig};
use spasm_exec::ExecEvent;
use spasm_machine::{CheckMode, FaultPlan, RunBudget};

struct Args {
    figures: Vec<&'static FigureSpec>,
    size: SizeClass,
    procs: Vec<usize>,
    seed: u64,
    csv: Option<String>,
    chart: bool,
    /// Worker count in the executor's convention: 0 = auto, 1 = serial.
    jobs: usize,
    /// Per-run simulator-event budget (the engine's RunBudget), so a
    /// livelocked run fails typed instead of hanging the sweep.
    budget_events: Option<u64>,
    /// Online invariant checking per run (`--check` / `--strict-check`).
    check: CheckMode,
    /// Adversarial fault plan seeded from `--faults SEED`, for proving
    /// the checker fires on an unhealthy machine.
    faults: Option<u64>,
    ablation: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: figures (--all | --figure ID | --list | --ablation g|protocol|cache) \
         [--size test|small|full] \
         [--procs 2,4,...] [--seed N] [--csv PATH] [--chart] \
         [--jobs N|auto] [--serial] [--budget-events N] \
         [--check] [--strict-check] [--faults SEED]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        figures: Vec::new(),
        size: SizeClass::Small,
        procs: figures::PROC_SWEEP.to_vec(),
        seed: 1995,
        csv: None,
        chart: false,
        jobs: 0,
        budget_events: None,
        check: CheckMode::Off,
        faults: None,
        ablation: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--all" => args.figures = figures::FIGURES.iter().collect(),
            "--figure" => {
                let id = it.next().unwrap_or_else(|| usage());
                match figures::by_id(&id) {
                    Some(spec) => args.figures.push(spec),
                    None => {
                        eprintln!("unknown figure {id}; try --list");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for f in figures::FIGURES {
                    println!(
                        "{:>3}  {:8} {:4} {:24} {}",
                        f.id,
                        f.app.to_string(),
                        f.net.to_string(),
                        f.metric.to_string(),
                        f.expect
                    );
                }
                std::process::exit(0);
            }
            "--size" => {
                args.size =
                    parse_size(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--procs" => {
                args.procs =
                    parse_procs(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--chart" => args.chart = true,
            "--jobs" => {
                args.jobs =
                    parse_jobs(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--serial" => args.jobs = 1,
            "--budget-events" => {
                args.budget_events = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--check" => args.check = CheckMode::On,
            "--strict-check" => args.check = CheckMode::Strict,
            "--faults" => {
                args.faults = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--ablation" => args.ablation = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if args.figures.is_empty() && args.ablation.is_none() {
        usage();
    }
    args
}

/// Runs one of the extension studies (EXPERIMENTS.md A2–A4) and prints
/// its table. `jobs` sizes the worker pool for each study's independent
/// runs (executor convention: 0 = auto, 1 = serial).
fn run_ablation(which: &str, jobs: usize) {
    use spasm_apps::AppId;
    use spasm_core::ablation;
    use spasm_core::Net;

    let started = Instant::now();
    match which {
        "g" => {
            println!("A2: traffic-aware g on the 8-processor mesh (test size)\n");
            println!(
                "{:>9} {:>9} {:>12} {:>12} {:>12}",
                "app", "crossing", "target (us)", "naive (us)", "aware (us)"
            );
            for app in AppId::ALL {
                let s =
                    ablation::traffic_aware_g_jobs(app, SizeClass::Test, Net::Mesh, 8, 1995, jobs)
                        .expect("verified runs");
                println!(
                    "{:>9} {:>8.0}% {:>12.1} {:>12.1} {:>12.1}",
                    app.to_string(),
                    100.0 * s.crossing_fraction,
                    s.target.contention_us,
                    s.naive.contention_us,
                    s.aware.contention_us,
                );
            }
        }
        "protocol" => {
            println!("A3: coherence-protocol sensitivity on the target (full, p=8)\n");
            println!(
                "{:>9} {:>14} {:>18} {:>8}",
                "app", "berkeley (us)", "wb-on-read (us)", "gap"
            );
            for app in AppId::ALL {
                let s = ablation::protocol_sensitivity_jobs(
                    app,
                    SizeClass::Test,
                    Net::Full,
                    8,
                    1995,
                    jobs,
                )
                .expect("verified runs");
                println!(
                    "{:>9} {:>14.1} {:>18.1} {:>7.1}%",
                    app.to_string(),
                    s.berkeley.exec_us,
                    s.write_back_on_read.exec_us,
                    100.0 * s.exec_gap(),
                );
            }
        }
        "cache" => {
            println!("A4: cache working-set sweep on the target (full, p=8)\n");
            print!("{:>9}", "app");
            for &cap in ablation::CACHE_SWEEP {
                print!(" {:>9}KiB", cap / 1024);
            }
            println!();
            for app in AppId::ALL {
                let points = ablation::cache_working_set_jobs(
                    app,
                    SizeClass::Test,
                    Net::Full,
                    8,
                    1995,
                    ablation::CACHE_SWEEP,
                    jobs,
                )
                .expect("verified runs");
                print!("{:>9}", app.to_string());
                for p in points {
                    print!(" {:>12.1}", p.metrics.exec_us);
                }
                println!();
            }
            println!("\n(cells: execution time in us)");
        }
        _ => {
            eprintln!("unknown ablation {which}; expected g | protocol | cache");
            std::process::exit(2);
        }
    }
    eprintln!(
        "ablation {which}: elapsed {:.1?} ({})",
        started.elapsed(),
        jobs_label(jobs)
    );
}

/// Human label for a `--jobs` setting.
fn jobs_label(jobs: usize) -> String {
    if jobs == 0 {
        format!("jobs=auto({})", spasm_exec::available_parallelism())
    } else {
        format!("jobs={jobs}")
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(which) = &args.ablation {
        run_ablation(which, args.jobs);
        return ExitCode::SUCCESS;
    }
    let sweep = SweepConfig {
        jobs: args.jobs,
        budget: args
            .budget_events
            .map_or(RunBudget::UNLIMITED, RunBudget::events),
        check: args.check,
        faults: args.faults.map(FaultPlan::adversarial),
        ..SweepConfig::default()
    };
    let total_started = Instant::now();
    let mut total_busy = Duration::ZERO;
    let mut total_points = 0usize;
    let mut csv = String::from("figure,app,net,metric,procs,machine,value\n");
    let mut failed_points = 0;
    for spec in &args.figures {
        let started = Instant::now();
        // Per-point wall times, folded per series by the observer as the
        // pool reports completions (job indices are series-major).
        let points_per_series = args.procs.len().max(1);
        let mut series_busy = vec![Duration::ZERO; spec.machines.len()];
        let data = run_figure_observed(spec, args.size, &args.procs, args.seed, sweep, |ev| {
            if let ExecEvent::Finished { job, wall, .. } | ExecEvent::Panicked { job, wall, .. } =
                ev
            {
                series_busy[job / points_per_series] += *wall;
            }
        });
        let figure_wall = started.elapsed();
        println!("{}", data.render_table());
        if args.chart {
            println!("{}", data.render_chart(12));
        }
        // Timing goes to stderr: the stdout stream stays parseable
        // (tables/CSV only) and byte-identical across --jobs settings.
        for (s, busy) in data.series.iter().zip(&series_busy) {
            eprintln!(
                "{}: series {}: {:.1?} simulated across {} point(s)",
                spec.id,
                s.machine,
                busy,
                data.procs.len()
            );
            total_busy += *busy;
        }
        eprintln!(
            "{}: swept in {:.1?} ({})",
            spec.id,
            figure_wall,
            jobs_label(args.jobs)
        );
        total_points += data.series.len() * data.procs.len();
        // Every failed point is named on stderr but does not abort the
        // remaining figures.
        for s in &data.series {
            for (i, outcome) in s.outcomes.iter().enumerate() {
                if let spasm_core::sweep::Outcome::Failed { error, attempts } = outcome {
                    failed_points += 1;
                    eprintln!(
                        "{}: p={} {}: FAILED after {attempts} attempt(s): {error}",
                        spec.id, data.procs[i], s.machine
                    );
                }
            }
        }
        // Append all but the shared header line.
        for line in data.to_csv().lines().skip(1) {
            csv.push_str(line);
            csv.push('\n');
        }
    }
    let total_wall = total_started.elapsed();
    eprintln!(
        "total: {} figure(s), {} point(s), {:.1?} simulated in {:.1?} wall ({:.1}x, {})",
        args.figures.len(),
        total_points,
        total_busy,
        total_wall,
        total_busy.as_secs_f64() / total_wall.as_secs_f64().max(1e-9),
        jobs_label(args.jobs)
    );
    if let Some(path) = args.csv {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if failed_points > 0 {
        eprintln!("{failed_points} point(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
