//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! figures --all [--size test|small|full] [--procs 2,4,8,16,32]
//!         [--seed N] [--csv PATH] [--jobs N|auto] [--serial]
//!         [--budget-events N] [--journal PATH [--resume]]
//!         [--deadline-secs N]
//! figures --figure F13 [...]
//! figures --list
//! ```
//!
//! Sweep points run on the `spasm-exec` worker pool — one worker per
//! host hardware thread by default (`--jobs auto`); `--serial` forces
//! the inline single-thread path. Output is byte-identical either way;
//! per-series and total elapsed times go to stderr so the speedup is
//! visible without polluting the table/CSV streams.
//!
//! `--journal PATH` records every completed point in a durable
//! per-figure journal (`PATH.<figure-id>`); after a crash or SIGKILL,
//! the same command with `--resume` replays completed points and runs
//! only the rest, producing byte-identical stdout. `--deadline-secs N`
//! bounds each point's wall time via the executor watchdog.
//!
//! ```text
//! figures --shard K/N --journal DIR [--resume] (--all | --figure ID) [...]
//! figures --merge DIR (--all | --figure ID) [...]
//! ```
//!
//! `--scenario FILE` (repeatable) compiles a declarative `.scn`
//! workload (see `spasm-scenario`) into a figure and sweeps it like
//! any built-in id. `--telemetry FILE` turns on engine interval
//! telemetry and streams one JSONL record per sim-time bucket (plus a
//! per-point summary) into FILE; `--telemetry-interval-us N` sets the
//! bucket width (default 100). Telemetry output is byte-identical
//! across `--jobs` settings and across journaled resume.
//!
//! `--shard K/N` runs only shard K's points (of N, round-robin over the
//! series-major point grid) and journals them under
//! `DIR/<figure>.shard-K-of-N.journal` — a worker's only output is its
//! journal, so N workers can fan out across processes or hosts.
//! `--merge DIR` reassembles any set of per-shard journals into stdout
//! byte-identical to a single-process serial run: torn shard tails are
//! tolerated, corrupt or mismatched shards are quarantined, overlapping
//! shards are deduplicated (identical results) or refused (conflicting
//! results), and points no surviving shard covers degrade to FAILED
//! rows naming the absent shard.
//!
//! Exit codes: 0 clean · 2 usage · 3 point failures (partial figures
//! salvaged) · 4 journal/configuration mismatch · 5 journal or CSV I/O
//! failure or corruption · 6 shard overlap conflict (two shards claim
//! the same point with different results — a determinism failure).

use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use spasm_apps::SizeClass;
use spasm_bench::{parse_jobs, parse_procs, parse_size};
use spasm_core::figures::{self, FigureSpec};
use spasm_core::journal::SweepJournal;
use spasm_core::shard::{merge_shards, ShardError, ShardSpec};
use spasm_core::sweep::{run_figure_journaled, run_figure_observed, run_figure_shard, SweepConfig};
use spasm_exec::ExecEvent;
use spasm_machine::{CheckMode, EngineMode, FaultPlan, RunBudget, TelemetryConfig};

struct Args {
    figures: Vec<&'static FigureSpec>,
    size: SizeClass,
    procs: Vec<usize>,
    seed: u64,
    csv: Option<String>,
    chart: bool,
    /// Worker count in the executor's convention: 0 = auto, 1 = serial.
    jobs: usize,
    /// Per-run simulator-event budget (the engine's RunBudget), so a
    /// livelocked run fails typed instead of hanging the sweep.
    budget_events: Option<u64>,
    /// Online invariant checking per run (`--check` / `--strict-check`).
    check: CheckMode,
    /// Adversarial fault plan seeded from `--faults SEED`, for proving
    /// the checker fires on an unhealthy machine.
    faults: Option<u64>,
    ablation: Option<String>,
    /// Base path for per-figure sweep journals (`<base>.<figure-id>`).
    journal: Option<String>,
    /// Replay an existing journal instead of refusing to clobber it.
    resume: bool,
    /// Per-point wall-clock deadline for the executor watchdog.
    deadline: Option<Duration>,
    /// Worker mode: run only this shard's points into a journal
    /// directory (`--shard K/N`, requires `--journal DIR`).
    shard: Option<ShardSpec>,
    /// Merge mode: reassemble per-shard journals from this directory
    /// into serial-identical stdout (`--merge DIR`).
    merge: Option<String>,
    /// Stream per-interval telemetry JSONL into this file.
    telemetry: Option<String>,
    /// Telemetry bucket width in simulated microseconds.
    telemetry_interval_us: u64,
    /// Which engine drives each run (`--engine sequential|optimistic:N`).
    /// Output is bit-identical either way — the optimistic engine trades
    /// host threads for wall time, never results.
    engine: EngineMode,
}

/// Exit code when points failed but partial figures were salvaged.
const EXIT_SALVAGED: u8 = 3;
/// Exit code when a journal's fingerprint rejects this configuration.
const EXIT_MISMATCH: u8 = 4;
/// Exit code for journal or CSV I/O failures.
const EXIT_IO: u8 = 5;
/// Exit code when two shards claim the same point with different
/// results — a determinism failure nothing should paper over.
const EXIT_OVERLAP: u8 = 6;

fn usage() -> ! {
    eprintln!(
        "usage: figures (--all | --figure ID | --list | --ablation g|protocol|cache) \
         [--size test|small|full] \
         [--procs 2,4,...] [--seed N] [--csv PATH] [--chart] \
         [--jobs N|auto] [--serial] [--budget-events N] \
         [--check] [--strict-check] [--faults SEED] \
         [--journal PATH [--resume]] [--deadline-secs N] \
         [--shard K/N --journal DIR] [--merge DIR] \
         [--scenario FILE] [--telemetry FILE [--telemetry-interval-us N]] \
         [--engine sequential|optimistic[:N]]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        figures: Vec::new(),
        size: SizeClass::Small,
        procs: figures::PROC_SWEEP.to_vec(),
        seed: 1995,
        csv: None,
        chart: false,
        jobs: 0,
        budget_events: None,
        check: CheckMode::Off,
        faults: None,
        ablation: None,
        journal: None,
        resume: false,
        deadline: None,
        shard: None,
        merge: None,
        telemetry: None,
        telemetry_interval_us: 100,
        engine: EngineMode::Sequential,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--all" => args.figures = figures::FIGURES.iter().collect(),
            "--figure" => {
                let id = it.next().unwrap_or_else(|| usage());
                match figures::by_id(&id) {
                    Some(spec) => args.figures.push(spec),
                    None => {
                        eprintln!("unknown figure {id}; try --list");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for f in figures::FIGURES {
                    println!(
                        "{:>3}  {:8} {:4} {:24} {}",
                        f.id,
                        f.app.to_string(),
                        f.net.to_string(),
                        f.metric.to_string(),
                        f.expect
                    );
                }
                std::process::exit(0);
            }
            "--size" => {
                args.size =
                    parse_size(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--procs" => {
                args.procs =
                    parse_procs(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--chart" => args.chart = true,
            "--jobs" => {
                args.jobs =
                    parse_jobs(&it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--serial" => args.jobs = 1,
            "--budget-events" => {
                args.budget_events = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--check" => args.check = CheckMode::On,
            "--strict-check" => args.check = CheckMode::Strict,
            "--faults" => {
                args.faults = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--ablation" => args.ablation = Some(it.next().unwrap_or_else(|| usage())),
            "--journal" => args.journal = Some(it.next().unwrap_or_else(|| usage())),
            "--resume" => args.resume = true,
            "--shard" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match ShardSpec::parse(&spec) {
                    Ok(s) => args.shard = Some(s),
                    Err(e) => {
                        eprintln!("--shard {spec}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--merge" => args.merge = Some(it.next().unwrap_or_else(|| usage())),
            "--scenario" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read scenario {path}: {e}");
                    std::process::exit(2);
                });
                let sc = spasm_scenario::parse(&text).unwrap_or_else(|e| {
                    eprintln!("scenario {path}: {e}");
                    std::process::exit(2);
                });
                match spasm_scenario::compile(&sc) {
                    Ok(spec) => args.figures.push(spec),
                    Err(e) => {
                        eprintln!("scenario {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => args.telemetry = Some(it.next().unwrap_or_else(|| usage())),
            "--telemetry-interval-us" => {
                args.telemetry_interval_us = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&us| us > 0)
                    .unwrap_or_else(|| usage());
            }
            "--engine" => {
                let name = it.next().unwrap_or_else(|| usage());
                match EngineMode::from_name(&name) {
                    Some(mode) => args.engine = mode,
                    None => {
                        eprintln!("--engine {name}: expected sequential or optimistic[:workers]");
                        std::process::exit(2);
                    }
                }
            }
            "--deadline-secs" => {
                args.deadline = Some(Duration::from_secs(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                ));
            }
            _ => usage(),
        }
    }
    if args.figures.is_empty() && args.ablation.is_none() {
        usage();
    }
    if args.resume && args.journal.is_none() {
        eprintln!("--resume requires --journal PATH");
        usage();
    }
    if args.shard.is_some() && args.journal.is_none() {
        eprintln!("--shard K/N requires --journal DIR (a shard's only output is its journal)");
        usage();
    }
    if args.shard.is_some() && (args.csv.is_some() || args.chart) {
        eprintln!("--shard produces no stdout; --csv/--chart belong on the --merge invocation");
        usage();
    }
    if args.telemetry.is_some() && args.ablation.is_some() {
        eprintln!("--telemetry applies to figure sweeps, not ablations");
        usage();
    }
    if args.merge.is_some() && (args.shard.is_some() || args.journal.is_some()) {
        eprintln!("--merge reads finished shard journals; it conflicts with --shard/--journal");
        usage();
    }
    if (args.shard.is_some() || args.merge.is_some()) && args.ablation.is_some() {
        eprintln!("--shard/--merge apply to figure sweeps, not ablations");
        usage();
    }
    args
}

/// Unwraps one ablation study's runs into its table row, or exits with
/// the typed simulation error instead of panicking at the CLI surface.
fn ablation_run<T>(which: &str, result: Result<T, spasm_core::ExperimentError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("ablation {which} failed: {e}");
        std::process::exit(1);
    })
}

/// Runs one of the extension studies (EXPERIMENTS.md A2–A4) and prints
/// its table. `jobs` sizes the worker pool for each study's independent
/// runs (executor convention: 0 = auto, 1 = serial).
fn run_ablation(which: &str, jobs: usize) {
    use spasm_apps::AppId;
    use spasm_core::ablation;
    use spasm_core::Net;

    let started = Instant::now();
    match which {
        "g" => {
            println!("A2: traffic-aware g on the 8-processor mesh (test size)\n");
            println!(
                "{:>9} {:>9} {:>12} {:>12} {:>12}",
                "app", "crossing", "target (us)", "naive (us)", "aware (us)"
            );
            for app in AppId::ALL {
                let s = ablation_run(
                    which,
                    ablation::traffic_aware_g_jobs(app, SizeClass::Test, Net::Mesh, 8, 1995, jobs),
                );
                println!(
                    "{:>9} {:>8.0}% {:>12.1} {:>12.1} {:>12.1}",
                    app.to_string(),
                    100.0 * s.crossing_fraction,
                    s.target.contention_us,
                    s.naive.contention_us,
                    s.aware.contention_us,
                );
            }
        }
        "protocol" => {
            println!("A3: coherence-protocol sensitivity on the target (full, p=8)\n");
            println!(
                "{:>9} {:>14} {:>18} {:>8}",
                "app", "berkeley (us)", "wb-on-read (us)", "gap"
            );
            for app in AppId::ALL {
                let s = ablation_run(
                    which,
                    ablation::protocol_sensitivity_jobs(
                        app,
                        SizeClass::Test,
                        Net::Full,
                        8,
                        1995,
                        jobs,
                    ),
                );
                println!(
                    "{:>9} {:>14.1} {:>18.1} {:>7.1}%",
                    app.to_string(),
                    s.berkeley.exec_us,
                    s.write_back_on_read.exec_us,
                    100.0 * s.exec_gap(),
                );
            }
        }
        "cache" => {
            println!("A4: cache working-set sweep on the target (full, p=8)\n");
            print!("{:>9}", "app");
            for &cap in ablation::CACHE_SWEEP {
                print!(" {:>9}KiB", cap / 1024);
            }
            println!();
            for app in AppId::ALL {
                let points = ablation_run(
                    which,
                    ablation::cache_working_set_jobs(
                        app,
                        SizeClass::Test,
                        Net::Full,
                        8,
                        1995,
                        ablation::CACHE_SWEEP,
                        jobs,
                    ),
                );
                print!("{:>9}", app.to_string());
                for p in points {
                    print!(" {:>12.1}", p.metrics.exec_us);
                }
                println!();
            }
            println!("\n(cells: execution time in us)");
        }
        _ => {
            eprintln!("unknown ablation {which}; expected g | protocol | cache");
            std::process::exit(2);
        }
    }
    eprintln!(
        "ablation {which}: elapsed {:.1?} ({})",
        started.elapsed(),
        jobs_label(jobs)
    );
}

/// Human label for a `--jobs` setting.
fn jobs_label(jobs: usize) -> String {
    if jobs == 0 {
        format!("jobs=auto({})", spasm_exec::available_parallelism())
    } else {
        format!("jobs={jobs}")
    }
}

/// Creates or resumes the per-figure journal, mapping each failure
/// class onto its exit code (4 = fingerprint mismatch, 5 = I/O or
/// corruption).
fn open_journal(
    path: &str,
    spec: &FigureSpec,
    args: &Args,
    sweep: &SweepConfig,
) -> Result<SweepJournal, ExitCode> {
    let opened = if args.resume {
        SweepJournal::resume(path, spec, args.size, &args.procs, args.seed, sweep)
    } else {
        SweepJournal::create(path, spec, args.size, &args.procs, args.seed, sweep)
    };
    opened.map_err(|e| {
        eprintln!("journal {path}: {e}");
        if matches!(
            e,
            spasm_core::journal::ResumeError::Journal(
                spasm_journal::JournalError::AlreadyExists { .. }
            )
        ) {
            eprintln!("(pass --resume to continue the interrupted sweep)");
        }
        if e.is_fingerprint_mismatch() {
            ExitCode::from(EXIT_MISMATCH)
        } else {
            ExitCode::from(EXIT_IO)
        }
    })
}

/// Worker mode: run only `shard`'s points of each requested figure into
/// `DIR/<figure>.shard-K-of-N.journal`. Prints nothing to stdout — the
/// journal is the shard's entire output, so a merge over the directory
/// is the only way results become visible, and killing this process at
/// any instant costs at most one in-flight point.
fn run_shard(args: &Args, sweep: &SweepConfig, shard: ShardSpec) -> ExitCode {
    let dir = args.journal.as_deref().expect("checked in parse_args");
    if let Some(path) = &args.telemetry {
        eprintln!(
            "shard {shard}: interval records ride in the shard journals; \
             {path} will be written by the --merge invocation"
        );
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create journal directory {dir}: {e}");
        return ExitCode::from(EXIT_IO);
    }
    let started = Instant::now();
    let mut worst = 0u8;
    for spec in &args.figures {
        let jpath = std::path::Path::new(dir)
            .join(shard.file_name(spec.id))
            .display()
            .to_string();
        let journal = match open_journal(&jpath, spec, args, sweep) {
            Ok(j) => j,
            Err(code) => return code,
        };
        if journal.repaired_bytes() > 0 {
            eprintln!(
                "{}: journal {jpath}: dropped a {}-byte torn tail",
                spec.id,
                journal.repaired_bytes()
            );
        }
        let report = run_figure_shard(
            spec,
            args.size,
            &args.procs,
            args.seed,
            *sweep,
            shard,
            &journal,
            |_| {},
        );
        eprintln!(
            "{} shard {shard}: {} owned, {} replayed, {} fresh, {} failed",
            spec.id, report.owned, report.replayed, report.fresh, report.failed
        );
        if let Some(e) = journal.io_error() {
            // Unlike the single-process journaled path, a shard has no
            // stdout to fall back on: a journal that stopped persisting
            // means the work is simply not done.
            eprintln!("{}: journal {jpath} stopped persisting: {e}", spec.id);
            worst = worst.max(EXIT_IO);
        }
        if let Some(w) = journal.dir_sync_warning() {
            eprintln!("{}: warning: {w}", spec.id);
        }
        if report.failed > 0 {
            worst = worst.max(EXIT_SALVAGED);
        }
    }
    eprintln!(
        "shard {shard}: {} figure(s) in {:.1?} ({})",
        args.figures.len(),
        started.elapsed(),
        jobs_label(args.jobs)
    );
    ExitCode::from(worst)
}

/// Merge mode: reassemble per-shard journals under `dir` into stdout
/// byte-identical to a serial run, quarantining what cannot be trusted
/// and salvaging partial figures from what can.
fn run_merge(args: &Args, sweep: &SweepConfig, dir: &str) -> ExitCode {
    let mut csv = String::from("figure,app,net,metric,procs,machine,value,reason\n");
    let mut jsonl = String::new();
    let mut worst = 0u8;
    let mut failed_points = 0usize;
    for spec in &args.figures {
        let report = match merge_shards(
            std::path::Path::new(dir),
            spec,
            args.size,
            &args.procs,
            args.seed,
            sweep,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: merge {dir}: {e}", spec.id);
                let code = match e {
                    ShardError::Overlap { .. } => EXIT_OVERLAP,
                    _ => EXIT_IO,
                };
                return ExitCode::from(code);
            }
        };
        eprintln!(
            "{}: merged {} shard journal(s): {} point(s), {} duplicate(s) deduped",
            spec.id, report.shards_merged, report.points_merged, report.duplicates
        );
        for (path, bytes) in &report.torn {
            eprintln!(
                "{}: {}: tolerated a {bytes}-byte torn tail",
                spec.id,
                path.display()
            );
        }
        for q in &report.quarantined {
            eprintln!("{}: quarantined shard: {q}", spec.id);
            worst = worst.max(match q {
                ShardError::FingerprintMismatch { .. } => EXIT_MISMATCH,
                _ => EXIT_IO,
            });
        }
        if report.missing_points > 0 {
            eprintln!(
                "{}: {} point(s) not covered by any surviving shard",
                spec.id, report.missing_points
            );
        }
        let data = report.data;
        println!("{}", data.render_table());
        if args.chart {
            println!("{}", data.render_chart(12));
        }
        for s in &data.series {
            for (i, outcome) in s.outcomes.iter().enumerate() {
                if let spasm_core::sweep::Outcome::Failed { error, attempts } = outcome {
                    failed_points += 1;
                    eprintln!(
                        "{}: p={} {}: FAILED after {attempts} attempt(s): {error}",
                        spec.id, data.procs[i], s.machine
                    );
                }
            }
        }
        for line in data.to_csv().lines().skip(1) {
            csv.push_str(line);
            csv.push('\n');
        }
        jsonl.push_str(&data.to_telemetry_jsonl());
    }
    if let Some(path) = &args.csv {
        match std::fs::File::create(path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                worst = worst.max(EXIT_IO);
            }
        }
    }
    if let Some(path) = &args.telemetry {
        match std::fs::File::create(path).and_then(|mut f| f.write_all(jsonl.as_bytes())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                worst = worst.max(EXIT_IO);
            }
        }
    }
    if failed_points > 0 {
        eprintln!("{failed_points} point(s) failed (partial figures salvaged)");
        worst = worst.max(EXIT_SALVAGED);
    }
    ExitCode::from(worst)
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(which) = &args.ablation {
        run_ablation(which, args.jobs);
        return ExitCode::SUCCESS;
    }
    let sweep = SweepConfig {
        jobs: args.jobs,
        budget: args
            .budget_events
            .map_or(RunBudget::UNLIMITED, RunBudget::events),
        check: args.check,
        faults: args.faults.map(FaultPlan::adversarial),
        deadline: args.deadline,
        telemetry: args
            .telemetry
            .as_ref()
            .map(|_| TelemetryConfig::every_us(args.telemetry_interval_us)),
        engine: args.engine,
        ..SweepConfig::default()
    };
    if let Some(dir) = &args.merge {
        return run_merge(&args, &sweep, dir);
    }
    if let Some(shard) = args.shard {
        return run_shard(&args, &sweep, shard);
    }
    let total_started = Instant::now();
    let mut total_busy = Duration::ZERO;
    let mut total_points = 0usize;
    let mut csv = String::from("figure,app,net,metric,procs,machine,value,reason\n");
    let mut jsonl = String::new();
    let mut failed_points = 0;
    for spec in &args.figures {
        let started = Instant::now();
        // Per-point wall times, folded per series by the observer as the
        // pool reports completions (job indices are series-major). Under
        // a resumed journal the fresh points are a sparse subset, so the
        // index->series mapping no longer holds and timing is folded
        // into one figure-level total instead.
        let points_per_series = args.procs.len().max(1);
        let mut series_busy = vec![Duration::ZERO; spec.machines.len()];
        let mut fresh_busy = Duration::ZERO;
        let mut fresh_points = 0usize;
        let data = if let Some(base) = &args.journal {
            let jpath = format!("{base}.{}", spec.id);
            let journal = match open_journal(&jpath, spec, &args, &sweep) {
                Ok(j) => j,
                Err(code) => return code,
            };
            if journal.repaired_bytes() > 0 {
                eprintln!(
                    "{}: journal {jpath}: dropped a {}-byte torn tail",
                    spec.id,
                    journal.repaired_bytes()
                );
            }
            let data = run_figure_journaled(
                spec,
                args.size,
                &args.procs,
                args.seed,
                sweep,
                &journal,
                |ev| {
                    if let ExecEvent::Finished { wall, .. }
                    | ExecEvent::Panicked { wall, .. }
                    | ExecEvent::Deadlined { wall, .. } = ev
                    {
                        fresh_busy += *wall;
                        fresh_points += 1;
                    }
                },
            );
            eprintln!(
                "{}: journal {jpath}: {} point(s) replayed, {} run fresh",
                spec.id,
                journal.replayed(),
                fresh_points
            );
            if let Some(e) = journal.io_error() {
                eprintln!(
                    "{}: warning: journal {jpath} stopped persisting ({e}); \
                     results are complete in memory but will re-run on resume",
                    spec.id
                );
            }
            if let Some(w) = journal.dir_sync_warning() {
                eprintln!("{}: warning: {w}", spec.id);
            }
            total_busy += fresh_busy;
            data
        } else {
            let data = run_figure_observed(spec, args.size, &args.procs, args.seed, sweep, |ev| {
                if let ExecEvent::Finished { job, wall, .. }
                | ExecEvent::Panicked { job, wall, .. }
                | ExecEvent::Deadlined { job, wall, .. } = ev
                {
                    series_busy[job / points_per_series] += *wall;
                }
            });
            // Timing goes to stderr: the stdout stream stays parseable
            // (tables/CSV only) and byte-identical across --jobs settings.
            for (s, busy) in data.series.iter().zip(&series_busy) {
                eprintln!(
                    "{}: series {}: {:.1?} simulated across {} point(s)",
                    spec.id,
                    s.machine,
                    busy,
                    data.procs.len()
                );
                total_busy += *busy;
            }
            data
        };
        let figure_wall = started.elapsed();
        println!("{}", data.render_table());
        if args.chart {
            println!("{}", data.render_chart(12));
        }
        eprintln!(
            "{}: swept in {:.1?} ({})",
            spec.id,
            figure_wall,
            jobs_label(args.jobs)
        );
        total_points += data.series.len() * data.procs.len();
        // Every failed point is named on stderr but does not abort the
        // remaining figures.
        for s in &data.series {
            for (i, outcome) in s.outcomes.iter().enumerate() {
                if let spasm_core::sweep::Outcome::Failed { error, attempts } = outcome {
                    failed_points += 1;
                    eprintln!(
                        "{}: p={} {}: FAILED after {attempts} attempt(s): {error}",
                        spec.id, data.procs[i], s.machine
                    );
                }
            }
        }
        // Append all but the shared header line.
        for line in data.to_csv().lines().skip(1) {
            csv.push_str(line);
            csv.push('\n');
        }
        jsonl.push_str(&data.to_telemetry_jsonl());
    }
    let total_wall = total_started.elapsed();
    eprintln!(
        "total: {} figure(s), {} point(s), {:.1?} simulated in {:.1?} wall ({:.1}x, {})",
        args.figures.len(),
        total_points,
        total_busy,
        total_wall,
        total_busy.as_secs_f64() / total_wall.as_secs_f64().max(1e-9),
        jobs_label(args.jobs)
    );
    if let Some(path) = args.csv {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    if let Some(path) = args.telemetry {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(jsonl.as_bytes())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    if failed_points > 0 {
        eprintln!("{failed_points} point(s) failed (partial figures salvaged)");
        return ExitCode::from(EXIT_SALVAGED);
    }
    ExitCode::SUCCESS
}
