//! Microbenchmarks of the Berkeley coherence state machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spasm_cache::{AccessKind, CacheConfig, CoherenceController};

fn bench_access_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");
    group.sample_size(40);

    // Hot loop of hits: the common case on cached machines.
    group.bench_function("read_hits", |b| {
        let mut cc = CoherenceController::new(4, CacheConfig::paper());
        cc.access(0, 100, AccessKind::Read);
        b.iter(|| cc.access(0, 100, AccessKind::Read));
    });

    // Ping-pong: two writers alternating on one block (upgrade + miss
    // traffic every access).
    group.bench_function("write_ping_pong", |b| {
        let mut cc = CoherenceController::new(2, CacheConfig::paper());
        let mut turn = 0usize;
        b.iter(|| {
            turn ^= 1;
            cc.access(turn, 100, AccessKind::Write)
        });
    });

    // Invalidation fan-out width.
    for sharers in [2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("upgrade_fanout", sharers),
            &sharers,
            |b, &sharers| {
                b.iter_batched(
                    || {
                        let mut cc = CoherenceController::new(64, CacheConfig::paper());
                        for s in 1..=sharers {
                            cc.access(s, 100, AccessKind::Read);
                        }
                        cc.access(0, 100, AccessKind::Read);
                        cc
                    },
                    |mut cc| cc.access(0, 100, AccessKind::Write),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }

    // Capacity-miss streaming through a small cache.
    group.bench_function("streaming_evictions", |b| {
        let mut cc = CoherenceController::new(
            1,
            CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                block_bytes: 32,
            },
        );
        let mut block = 0u64;
        b.iter(|| {
            block += 1;
            cc.access(0, block % 4096, AccessKind::Write)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_access_patterns);
criterion_main!(benches);
