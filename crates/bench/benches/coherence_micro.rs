//! Microbenchmarks of the Berkeley coherence state machine.

use spasm_bench::harness::Harness;
use spasm_cache::{AccessKind, CacheConfig, CoherenceController};

fn main() {
    let mut h = Harness::new("coherence_micro");

    // Hot loop of hits: the common case on cached machines. One
    // iteration = 4096 repeated read hits.
    {
        let mut cc = CoherenceController::new(4, CacheConfig::paper());
        cc.access(0, 100, AccessKind::Read);
        h.bench("coherence/read_hits", move || {
            let mut last = spasm_cache::Outcome::Hit;
            for _ in 0..4096 {
                last = cc.access(0, 100, AccessKind::Read);
            }
            last
        });
    }

    // Ping-pong: two writers alternating on one block (upgrade + miss
    // traffic every access). One iteration = 1024 alternations.
    {
        let mut cc = CoherenceController::new(2, CacheConfig::paper());
        let mut turn = 0usize;
        h.bench("coherence/write_ping_pong", move || {
            let mut last = spasm_cache::Outcome::Hit;
            for _ in 0..1024 {
                turn ^= 1;
                last = cc.access(turn, 100, AccessKind::Write);
            }
            last
        });
    }

    // Invalidation fan-out width: a fresh sharer set per iteration, one
    // timed upgrade write that invalidates all of it.
    for sharers in [2usize, 8, 32] {
        h.bench_with_setup(
            &format!("coherence/upgrade_fanout/{sharers}"),
            move || {
                let mut cc = CoherenceController::new(64, CacheConfig::paper());
                for s in 1..=sharers {
                    cc.access(s, 100, AccessKind::Read);
                }
                cc.access(0, 100, AccessKind::Read);
                cc
            },
            |mut cc| cc.access(0, 100, AccessKind::Write),
        );
    }

    // Capacity-miss streaming through a small cache. One iteration =
    // 1024 streaming writes.
    {
        let mut cc = CoherenceController::new(
            1,
            CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                block_bytes: 32,
            },
        );
        let mut block = 0u64;
        h.bench("coherence/streaming_evictions", move || {
            let mut last = spasm_cache::Outcome::Hit;
            for _ in 0..1024 {
                block += 1;
                last = cc.access(0, block % 4096, AccessKind::Write);
            }
            last
        });
    }

    h.finish();
}
