//! Time Warp payoff: wall-clock of a single large run under the
//! sequential engine vs. the optimistic engine at 4 workers.
//!
//! The optimistic engine's *output* is bit-identical to sequential
//! (see `crates/core/tests/optimistic_equivalence.rs`); this bench
//! records what the speculation buys in wall-clock, and at what
//! rollback cost. EP on CLogP is the headline config: its iterations
//! are compute-heavy with ack-class memory traffic, so nearly every
//! rendezvous speculates and batches. At this size EP's one racing
//! counter collides only past the replay horizon, where inexact
//! speculation has already shut off — so the expected rollback rate is
//! zero, and the gauges exist to catch it coming back (e.g. a horizon
//! raise re-exposing replay storms).
//!
//! Gauges (iters == 1 rows in the JSON):
//!
//! * `ep_clogp_p4/speedup_x1000` — sequential min-wall over optimistic
//!   min-wall across the timed paired runs, scaled by 1000 (so 1500 =
//!   1.5× faster). The ISSUE acceptance bar is >= 1500.
//! * `ep_clogp_p4/rollbacks_per_100k_events`, `replayed_events`,
//!   `spec_resumes`, `spec_hits` — speculation economics of one run,
//!   so a regression in prediction quality is visible even when the
//!   wall-clock noise hides it.

use std::time::{Duration, Instant};

use spasm_apps::{AppId, SizeClass};
use spasm_bench::harness::Harness;
use spasm_core::Machine;
use spasm_machine::{Engine, EngineMode, RunReport, SetupCtx};
use spasm_topology::{Topology, TopologyKind};

const APP: AppId = AppId::Ep;
const MACHINE: Machine = Machine::CLogP;
const PROCS: usize = 4;
const SIZE: SizeClass = SizeClass::Full;
const SEED: u64 = 1995;
const WORKERS: usize = 4;

fn engine(mode: EngineMode) -> Engine {
    let topo = Topology::try_of_kind(TopologyKind::Hypercube, PROCS).expect("p=4 hypercube");
    let mut config = MACHINE.config();
    config.engine = mode;
    let mut setup = SetupCtx::new(PROCS);
    let built = APP.instantiate(SIZE).build(&mut setup, SEED);
    let mut eng = Engine::with_config(MACHINE.kind(), &topo, config, setup, built.bodies);
    if mode != EngineMode::Sequential {
        eng.set_body_factory(Box::new(|proc| {
            let mut setup = SetupCtx::new(PROCS);
            let built = APP.instantiate(SIZE).build(&mut setup, SEED);
            built.bodies.into_iter().nth(proc).expect("proc body")
        }));
    }
    eng
}

fn run(mode: EngineMode) -> (RunReport, Duration) {
    let mut eng = engine(mode);
    let t0 = Instant::now();
    let report = eng.run().expect("run completes");
    (report, t0.elapsed())
}

fn main() {
    let mut h = Harness::new("timewarp_speed");
    let optimistic = EngineMode::Optimistic { workers: WORKERS };

    h.bench_with_setup(
        "ep_clogp_p4/sequential",
        || engine(EngineMode::Sequential),
        |mut eng| eng.run().expect("sequential run completes"),
    );
    h.bench_with_setup(
        "ep_clogp_p4/optimistic_w4",
        || engine(optimistic),
        |mut eng| eng.run().expect("optimistic run completes"),
    );

    // Headline speedup gauge: min-wall over explicit paired runs, so
    // the JSON carries the acceptance-bar number directly (the bench
    // rows above time the same workload but keep their own stats).
    let pairs = 5;
    let seq_min = (0..pairs).map(|_| run(EngineMode::Sequential).1).min();
    let opt_min = (0..pairs).map(|_| run(optimistic).1).min();
    let (seq_min, opt_min) = (seq_min.expect("pairs > 0"), opt_min.expect("pairs > 0"));
    h.gauge(
        "ep_clogp_p4/sequential_minwall_ns",
        seq_min.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    h.gauge(
        "ep_clogp_p4/optimistic_w4_minwall_ns",
        opt_min.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    h.gauge(
        "ep_clogp_p4/speedup_x1000",
        (seq_min.as_nanos() * 1000 / opt_min.as_nanos().max(1)) as u64,
    );

    // Speculation economics of one optimistic run. The report is
    // deterministic (same seed, same schedule), so these are exact
    // counters, not samples.
    let (report, _) = run(optimistic);
    let spec = &report.spec;
    assert!(spec.spec_resumes > 0, "EP must actually speculate");
    h.gauge("ep_clogp_p4/spec_resumes", spec.spec_resumes);
    h.gauge("ep_clogp_p4/spec_hits", spec.spec_hits);
    h.gauge("ep_clogp_p4/rollbacks", spec.rollbacks);
    h.gauge("ep_clogp_p4/replayed_events", spec.replayed_events);
    h.gauge(
        "ep_clogp_p4/rollbacks_per_100k_events",
        spec.rollbacks * 100_000 / report.events.max(1),
    );

    h.finish();
}
