//! Executor scaling: wall-clock of a Figure-2-class sweep (CG latency,
//! three machine characterizations, processor sweep) under 1, 2, and 4
//! workers, plus a one-shot serial-vs-4-worker speedup gauge.
//!
//! The sweep's *output* is byte-identical across worker counts (see
//! `tests/determinism.rs`); this bench records what the parallelism
//! buys in wall-clock. `sweep_f2/speedup_x1000` is serial wall over
//! 4-worker wall, scaled by 1000 (so 2500 = 2.5× faster).

//! `sweep_f2/journaled_jobs1` runs the same sweep through the full
//! journal path — every point CRC64-framed and committed through the
//! `Vfs` indirection — so the regression gate proves the crash-safety
//! plumbing stays out of the hot loop's way.

use std::time::Instant;

use spasm_apps::SizeClass;
use spasm_bench::harness::Harness;
use spasm_core::figures;
use spasm_core::journal::SweepJournal;
use spasm_core::sweep::{run_figure_journaled, run_figure_with, SweepConfig};

fn main() {
    let mut h = Harness::new("exec_speed");
    let spec = figures::by_id("F2").expect("F2 exists");
    let procs: &[usize] = &[2, 4, 8];

    for jobs in [1usize, 2, 4] {
        h.bench(&format!("sweep_f2/jobs{jobs}"), || {
            let data = run_figure_with(
                spec,
                SizeClass::Test,
                procs,
                1995,
                SweepConfig::parallel(jobs),
            );
            assert_eq!(data.failed_points(), 0, "F2 must sweep clean");
            data
        });
    }

    // The same sweep through the journal path: a fresh journal per
    // iteration (worst case — every point is committed, nothing
    // replays), exercising the whole Vfs-backed write/fsync/rename
    // pipeline on a real filesystem.
    let journal_dir = std::env::temp_dir().join(format!("spasm-exec-speed-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("temp dir is writable");
    let journal_path = journal_dir.join("F2.journal");
    h.bench("sweep_f2/journaled_jobs1", || {
        let _ = std::fs::remove_file(&journal_path);
        let sweep = SweepConfig::default();
        let journal =
            SweepJournal::create(&journal_path, spec, SizeClass::Test, procs, 1995, &sweep)
                .expect("journal creates");
        let data =
            run_figure_journaled(spec, SizeClass::Test, procs, 1995, sweep, &journal, |_| {});
        assert_eq!(data.failed_points(), 0, "F2 must sweep clean");
        assert!(journal.io_error().is_none(), "journal must persist");
        data
    });
    let _ = std::fs::remove_dir_all(&journal_dir);

    // One-shot speedup gauge, measured back-to-back so the JSON carries
    // the headline number directly.
    let wall = |jobs: usize| {
        let t0 = Instant::now();
        std::hint::black_box(run_figure_with(
            spec,
            SizeClass::Test,
            procs,
            1995,
            SweepConfig::parallel(jobs),
        ));
        t0.elapsed()
    };
    let serial = wall(1);
    let parallel = wall(4);
    h.gauge(
        "sweep_f2/serial_wall_ns",
        serial.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    h.gauge(
        "sweep_f2/jobs4_wall_ns",
        parallel.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    h.gauge(
        "sweep_f2/speedup_x1000",
        (serial.as_nanos() * 1000 / parallel.as_nanos().max(1)) as u64,
    );

    h.finish();
}
