//! Executor scaling: wall-clock of a Figure-2-class sweep (CG latency,
//! three machine characterizations, processor sweep) under 1, 2, and 4
//! workers, plus a one-shot serial-vs-4-worker speedup gauge.
//!
//! The sweep's *output* is byte-identical across worker counts (see
//! `tests/determinism.rs`); this bench records what the parallelism
//! buys in wall-clock. `sweep_f2/speedup_x1000` is serial wall over
//! 4-worker wall, scaled by 1000 (so 2500 = 2.5× faster).

use std::time::Instant;

use spasm_apps::SizeClass;
use spasm_bench::harness::Harness;
use spasm_core::figures;
use spasm_core::sweep::{run_figure_with, SweepConfig};

fn main() {
    let mut h = Harness::new("exec_speed");
    let spec = figures::by_id("F2").expect("F2 exists");
    let procs: &[usize] = &[2, 4, 8];

    for jobs in [1usize, 2, 4] {
        h.bench(&format!("sweep_f2/jobs{jobs}"), || {
            let data = run_figure_with(
                spec,
                SizeClass::Test,
                procs,
                1995,
                SweepConfig::parallel(jobs),
            );
            assert_eq!(data.failed_points(), 0, "F2 must sweep clean");
            data
        });
    }

    // One-shot speedup gauge, measured back-to-back so the JSON carries
    // the headline number directly.
    let wall = |jobs: usize| {
        let t0 = Instant::now();
        std::hint::black_box(run_figure_with(
            spec,
            SizeClass::Test,
            procs,
            1995,
            SweepConfig::parallel(jobs),
        ));
        t0.elapsed()
    };
    let serial = wall(1);
    let parallel = wall(4);
    h.gauge(
        "sweep_f2/serial_wall_ns",
        serial.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    h.gauge(
        "sweep_f2/jobs4_wall_ns",
        parallel.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    h.gauge(
        "sweep_f2/speedup_x1000",
        (serial.as_nanos() * 1000 / parallel.as_nanos().max(1)) as u64,
    );

    h.finish();
}
