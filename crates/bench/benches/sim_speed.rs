//! §7 "Speed of Simulation": wall-clock cost of simulating each machine
//! characterization, per application.
//!
//! The paper's claims, which these benches reproduce in shape:
//!
//! * the CLogP simulation is ~25–30 % *faster* than the target simulation
//!   (fewer events: no coherence messages, no per-link bookkeeping);
//! * the LogP simulation is *slower* than the target, despite being the
//!   most abstract model, because ignoring locality turns cache hits into
//!   simulated network events.

use spasm_apps::{AppId, SizeClass};
use spasm_bench::harness::Harness;
use spasm_core::{Experiment, Machine, Net};

fn main() {
    let mut h = Harness::new("sim_speed");

    for app in AppId::ALL {
        for machine in [Machine::Target, Machine::LogP, Machine::CLogP] {
            let exp = Experiment {
                app,
                size: SizeClass::Test,
                net: Net::Full,
                machine,
                procs: 4,
                seed: 1995,
            };
            h.bench(&format!("sim_speed/{app}/{machine}"), move || {
                exp.run().expect("experiment must verify")
            });
        }
    }

    // A1: the per-event-type gap changes contention, not simulator cost —
    // this bench documents that the ablation is free to adopt.
    for machine in [Machine::CLogP, Machine::CLogPPerEventGap] {
        let exp = Experiment {
            app: AppId::Fft,
            size: SizeClass::Test,
            net: Net::Cube,
            machine,
            procs: 4,
            seed: 1995,
        };
        h.bench(&format!("gap_policy/{machine}"), move || {
            exp.run().expect("experiment must verify")
        });
    }

    h.finish();
}
