//! §7 "Speed of Simulation": wall-clock cost of simulating each machine
//! characterization, per application.
//!
//! The paper's claims, which these benches reproduce in shape:
//!
//! * the CLogP simulation is ~25–30 % *faster* than the target simulation
//!   (fewer events: no coherence messages, no per-link bookkeeping);
//! * the LogP simulation is *slower* than the target, despite being the
//!   most abstract model, because ignoring locality turns cache hits into
//!   simulated network events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spasm_apps::{AppId, SizeClass};
use spasm_core::{Experiment, Machine, Net};

fn bench_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_speed");
    group.sample_size(10);
    for app in AppId::ALL {
        for machine in [Machine::Target, Machine::LogP, Machine::CLogP] {
            group.bench_with_input(
                BenchmarkId::new(app.to_string(), machine.to_string()),
                &(app, machine),
                |b, &(app, machine)| {
                    let exp = Experiment {
                        app,
                        size: SizeClass::Test,
                        net: Net::Full,
                        machine,
                        procs: 4,
                        seed: 1995,
                    };
                    b.iter(|| exp.run().expect("experiment must verify"));
                },
            );
        }
    }
    group.finish();
}

fn bench_gap_policy_ablation(c: &mut Criterion) {
    // A1: the per-event-type gap changes contention, not simulator cost —
    // this bench documents that the ablation is free to adopt.
    let mut group = c.benchmark_group("gap_policy");
    group.sample_size(10);
    for machine in [Machine::CLogP, Machine::CLogPPerEventGap] {
        group.bench_with_input(
            BenchmarkId::from_parameter(machine.to_string()),
            &machine,
            |b, &machine| {
                let exp = Experiment {
                    app: AppId::Fft,
                    size: SizeClass::Test,
                    net: Net::Cube,
                    machine,
                    procs: 4,
                    seed: 1995,
                };
                b.iter(|| exp.run().expect("experiment must verify"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_machines, bench_gap_policy_ablation);
criterion_main!(benches);
