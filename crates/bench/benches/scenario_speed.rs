//! Scenario engine wall-clock: sweep one representative `.scn` workload
//! with telemetry off and on, so the interval hook's cost is visible as
//! the ratio between the two rows. The workload is inlined rather than
//! read from `examples/` so the bench is hermetic in any working
//! directory.
//!
//! `scenario/events` gauges the swept event total: a row whose timing
//! moves should be read against whether the work itself moved.

use spasm_apps::SizeClass;
use spasm_bench::harness::Harness;
use spasm_core::sweep::{run_figure_with, SweepConfig};
use spasm_machine::TelemetryConfig;

const SCN: &str = "\
[scenario]
name = bench-bsp
clients = 2
rounds = 3
working-set = 64
sharing = 0.2
writes = 0.5
locality = uniform
msg-bytes = 16..32
net = cube
metric = exec

[phase]
kind = compute
cycles = 400

[phase]
kind = mem
ops = 4

[phase]
kind = comm
messages = 2

[phase]
kind = barrier
";

fn main() {
    let mut h = Harness::new("scenario_speed");
    let sc = spasm_scenario::parse(SCN).expect("inline scenario parses");
    let spec = spasm_scenario::compile(&sc).expect("inline scenario compiles");
    let procs: &[usize] = &[2, 4, 8];

    h.bench("scenario_bsp/telemetry_off", || {
        let data = run_figure_with(spec, SizeClass::Test, procs, 1995, SweepConfig::default());
        assert_eq!(data.failed_points(), 0, "scenario must sweep clean");
        data
    });

    h.bench("scenario_bsp/telemetry_on", || {
        let sweep = SweepConfig {
            telemetry: Some(TelemetryConfig::every_us(100)),
            ..SweepConfig::default()
        };
        let data = run_figure_with(spec, SizeClass::Test, procs, 1995, sweep);
        assert_eq!(data.failed_points(), 0, "scenario must sweep clean");
        data
    });

    let data = run_figure_with(spec, SizeClass::Test, procs, 1995, SweepConfig::default());
    let events: u64 = data
        .series
        .iter()
        .flat_map(|s| s.metrics.iter().flatten())
        .map(|m| m.events)
        .sum();
    h.gauge("scenario/events", events);

    h.finish();
}
