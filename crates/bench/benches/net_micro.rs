//! Microbenchmarks of the link-level network simulator: cost of routing +
//! circuit reservation per message, per topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spasm_desim::SimTime;
use spasm_net::Network;
use spasm_topology::{NodeId, Topology, TopologyKind};

fn bench_send(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_send");
    group.sample_size(30);
    for kind in [
        TopologyKind::Full,
        TopologyKind::Hypercube,
        TopologyKind::Mesh2D,
    ] {
        for p in [8usize, 32] {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), p),
                &p,
                |b, &p| {
                    let topo = Topology::of_kind(kind, p);
                    b.iter_batched(
                        || Network::new(topo.clone()),
                        |mut net| {
                            let mut t = SimTime::ZERO;
                            for i in 0..256u64 {
                                let src = NodeId((i as usize * 7) % p);
                                let dst = NodeId((i as usize * 13 + 1) % p);
                                if src != dst {
                                    let d = net.send(t, src, dst, 32);
                                    t = t.max(d.arrive) - SimTime::from_ns(800);
                                }
                            }
                            net.stats().messages
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_routing_vs_abstraction(c: &mut Criterion) {
    // Quantifies why the abstracted machines simulate faster: one LogP
    // message costs two gap-tracker updates; one target message costs a
    // route computation plus per-link reservations.
    let mut group = c.benchmark_group("message_cost");
    group.sample_size(30);
    let p = 32;

    group.bench_function("target_mesh_message", |b| {
        let topo = Topology::mesh(p);
        let mut net = Network::new(topo);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            net.send(
                SimTime::from_ns(i * 1000),
                NodeId((i as usize * 7) % p),
                NodeId((i as usize * 13 + 1) % p),
                32,
            )
        });
    });

    group.bench_function("logp_abstract_message", |b| {
        use spasm_logp::{GapPolicy, GapTracker, NetEvent};
        let mut gaps = GapTracker::new(p, SimTime::from_ns(1600), GapPolicy::Unified);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let s = gaps.acquire((i as usize * 7) % p, NetEvent::Send, SimTime::from_ns(i * 1000));
            gaps.acquire(
                (i as usize * 13 + 1) % p,
                NetEvent::Recv,
                s.start + SimTime::from_ns(1600),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_send, bench_routing_vs_abstraction);
criterion_main!(benches);
