//! Microbenchmarks of the link-level network simulator: cost of routing +
//! circuit reservation per message, per topology.

use spasm_bench::harness::Harness;
use spasm_desim::SimTime;
use spasm_net::Network;
use spasm_topology::{NodeId, Topology, TopologyKind};

/// One iteration = 256 messages streamed through a fresh network.
fn send_batch(topo: &Topology, p: usize) -> u64 {
    let mut net = Network::new(topo.clone());
    let mut t = SimTime::ZERO;
    for i in 0..256u64 {
        let src = NodeId((i as usize * 7) % p);
        let dst = NodeId((i as usize * 13 + 1) % p);
        if src != dst {
            let d = net.send(t, src, dst, 32);
            t = t.max(d.arrive) - SimTime::from_ns(800);
        }
    }
    net.stats().messages
}

fn main() {
    let mut h = Harness::new("net_micro");

    for kind in [
        TopologyKind::Full,
        TopologyKind::Hypercube,
        TopologyKind::Mesh2D,
    ] {
        for p in [8usize, 32] {
            let topo = Topology::of_kind(kind, p);
            h.bench(&format!("net_send/{kind}/{p}"), || send_batch(&topo, p));
        }
    }

    // Quantifies why the abstracted machines simulate faster: one LogP
    // message costs two gap-tracker updates; one target message costs a
    // route computation plus per-link reservations. One iteration = 1024
    // messages against persistent state.
    let p = 32;
    let mut net = Network::new(Topology::mesh(p));
    let mut i = 0u64;
    h.bench("message_cost/target_mesh_message", move || {
        let mut last = SimTime::ZERO;
        for _ in 0..1024 {
            i += 1;
            let d = net.send(
                SimTime::from_ns(i * 1000),
                NodeId((i as usize * 7) % p),
                NodeId((i as usize * 13 + 1) % p),
                32,
            );
            last = d.arrive;
        }
        last
    });

    {
        use spasm_logp::{GapPolicy, GapTracker, NetEvent};
        let mut gaps = GapTracker::new(p, SimTime::from_ns(1600), GapPolicy::Unified);
        let mut i = 0u64;
        h.bench("message_cost/logp_abstract_message", move || {
            let mut last = SimTime::ZERO;
            for _ in 0..1024 {
                i += 1;
                let s = gaps.acquire(
                    (i as usize * 7) % p,
                    NetEvent::Send,
                    SimTime::from_ns(i * 1000),
                );
                let r = gaps.acquire(
                    (i as usize * 13 + 1) % p,
                    NetEvent::Recv,
                    s.start + SimTime::from_ns(1600),
                );
                last = r.start;
            }
            last
        });
    }

    h.finish();
}
