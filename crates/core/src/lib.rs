//! # spasm-core — the SPASM experiment framework
//!
//! The paper's contribution, packaged as a library: run any of the five
//! applications on any of the four machine characterizations over any of
//! the three networks, separate the overheads SPASM-style, and regenerate
//! every figure of the evaluation section.
//!
//! * [`Experiment`] — one (application, machine, network, processor-count)
//!   simulation with verification, producing [`RunMetrics`];
//! * [`figures`] — the declarative specs for Figures 1–20 plus the §7
//!   simulation-speed study (S1) and the gap-policy ablation (A1);
//! * [`sweep`] — drives a figure's processor sweep across its series and
//!   renders aligned tables / CSV.
//!
//! # Example
//!
//! ```
//! use spasm_core::{Experiment, Machine, Net};
//! use spasm_apps::{AppId, SizeClass};
//!
//! let metrics = Experiment {
//!     app: AppId::Fft,
//!     size: SizeClass::Test,
//!     net: Net::Full,
//!     machine: Machine::CLogP,
//!     procs: 4,
//!     seed: 7,
//! }
//! .run()
//! .unwrap();
//! assert!(metrics.exec_us > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chaos;
mod experiment;
pub mod figures;
pub mod journal;
pub mod shard;
pub mod sweep;

pub use experiment::{run_bodies, Experiment, ExperimentError, Machine, Net, RunMetrics};
pub use spasm_machine::{IntervalRecord, TelemetryConfig};
