//! One simulation experiment: configuration, execution, metrics.

use std::fmt;
use std::time::Duration;

use spasm_apps::{AppId, SizeClass};
use spasm_logp::GapPolicy;
use spasm_machine::{Engine, MachineConfig, MachineKind, RunError, SetupCtx};
use spasm_topology::{Topology, TopologyKind};

/// Network selection for an experiment (mirrors `TopologyKind`, with the
/// paper's names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Net {
    /// Fully connected.
    Full,
    /// Binary hypercube.
    Cube,
    /// 2-D mesh.
    Mesh,
}

impl Net {
    /// All three networks.
    pub const ALL: [Net; 3] = [Net::Full, Net::Cube, Net::Mesh];

    /// The corresponding topology kind.
    pub fn kind(self) -> TopologyKind {
        match self {
            Net::Full => TopologyKind::Full,
            Net::Cube => TopologyKind::Hypercube,
            Net::Mesh => TopologyKind::Mesh2D,
        }
    }

    /// Parses "full" / "cube" / "mesh".
    pub fn from_name(name: &str) -> Option<Net> {
        match name {
            "full" => Some(Net::Full),
            "cube" => Some(Net::Cube),
            "mesh" => Some(Net::Mesh),
            _ => None,
        }
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Net::Full => "full",
            Net::Cube => "cube",
            Net::Mesh => "mesh",
        };
        f.write_str(s)
    }
}

/// Machine characterization for an experiment, including the A1 ablation
/// variant (CLogP with the per-event-type gap of the paper's §7
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// Ideal PRAM (SPASM's ideal time).
    Pram,
    /// The CC-NUMA target.
    Target,
    /// LogP without caches.
    LogP,
    /// LogP with the ideal coherent cache.
    CLogP,
    /// CLogP, gap enforced only between identical event kinds (§7).
    CLogPPerEventGap,
}

impl Machine {
    /// The underlying machine kind.
    pub fn kind(self) -> MachineKind {
        match self {
            Machine::Pram => MachineKind::Pram,
            Machine::Target => MachineKind::Target,
            Machine::LogP => MachineKind::LogP,
            Machine::CLogP | Machine::CLogPPerEventGap => MachineKind::CLogP,
        }
    }

    /// The machine configuration (gap policy etc.).
    pub fn config(self) -> MachineConfig {
        let mut c = MachineConfig::default();
        if self == Machine::CLogPPerEventGap {
            c.gap_policy = GapPolicy::PerEventType;
        }
        c
    }

    /// Parses the display name.
    pub fn from_name(name: &str) -> Option<Machine> {
        match name {
            "pram" => Some(Machine::Pram),
            "target" => Some(Machine::Target),
            "logp" => Some(Machine::LogP),
            "clogp" => Some(Machine::CLogP),
            "clogp-pet" => Some(Machine::CLogPPerEventGap),
            _ => None,
        }
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Machine::Pram => "pram",
            Machine::Target => "target",
            Machine::LogP => "logp",
            Machine::CLogP => "clogp",
            Machine::CLogPPerEventGap => "clogp-pet",
        };
        f.write_str(s)
    }
}

/// A fully specified simulation run.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Which application.
    pub app: AppId,
    /// Problem-size preset.
    pub size: SizeClass,
    /// Interconnect.
    pub net: Net,
    /// Machine characterization.
    pub machine: Machine,
    /// Processor count (power of two).
    pub procs: usize,
    /// Workload seed.
    pub seed: u64,
}

/// Why an experiment failed.
#[derive(Debug)]
pub enum ExperimentError {
    /// The simulation itself failed (panic or deadlock).
    Run(RunError),
    /// The simulation completed but produced a wrong answer.
    Verify(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Run(e) => write!(f, "simulation failed: {e}"),
            ExperimentError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// The measurements of one run, in the units the paper's figures use.
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics {
    /// Execution time (max over processors), µs.
    pub exec_us: f64,
    /// Mean per-processor latency overhead, µs.
    pub latency_us: f64,
    /// Mean per-processor contention overhead, µs.
    pub contention_us: f64,
    /// Mean per-processor synchronization spin time, µs.
    pub sync_us: f64,
    /// Mean per-processor home-directory wait, µs (target only).
    pub dir_wait_us: f64,
    /// Network messages.
    pub messages: u64,
    /// Network bytes.
    pub bytes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Fraction of network messages that crossed the bisection (target
    /// machine only; 0 on the abstracted machines).
    pub crossing_fraction: f64,
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
}

impl Experiment {
    /// Runs the experiment: build, simulate, verify, extract metrics.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Run`] if the simulation panics or deadlocks;
    /// [`ExperimentError::Verify`] if the application's verifier rejects
    /// the result.
    pub fn run(&self) -> Result<RunMetrics, ExperimentError> {
        self.run_with_config(self.machine.config())
    }

    /// Runs the experiment with an explicit machine configuration — used
    /// by the ablations (gap policy, scaled g).
    ///
    /// # Errors
    ///
    /// As [`Experiment::run`].
    pub fn run_with_config(&self, config: MachineConfig) -> Result<RunMetrics, ExperimentError> {
        let topo = Topology::of_kind(self.net.kind(), self.procs);
        let mut setup = SetupCtx::new(self.procs);
        let app = self.app.instantiate(self.size);
        let built = app.build(&mut setup, self.seed);
        let mut engine =
            Engine::with_config(self.machine.kind(), &topo, config, setup, built.bodies);
        let report = engine.run().map_err(ExperimentError::Run)?;
        (built.verify)(&report.final_store).map_err(ExperimentError::Verify)?;
        let p = report.procs() as f64;
        Ok(RunMetrics {
            exec_us: report.exec_time_us(),
            latency_us: report.latency_overhead_us(),
            contention_us: report.contention_overhead_us(),
            sync_us: report.totals.sync.as_us_f64() / p,
            dir_wait_us: report.totals.dir_wait.as_us_f64() / p,
            messages: report.summary.net_messages,
            bytes: report.summary.net_bytes,
            events: report.events,
            crossing_fraction: report.summary.crossing_fraction(),
            wall: report.wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrips() {
        for net in Net::ALL {
            assert_eq!(Net::from_name(&net.to_string()), Some(net));
        }
        for m in [
            Machine::Pram,
            Machine::Target,
            Machine::LogP,
            Machine::CLogP,
            Machine::CLogPPerEventGap,
        ] {
            assert_eq!(Machine::from_name(&m.to_string()), Some(m));
        }
        assert_eq!(Net::from_name("ring"), None);
        assert_eq!(Machine::from_name("bsp"), None);
    }

    #[test]
    fn experiment_runs_and_verifies() {
        let m = Experiment {
            app: AppId::Is,
            size: SizeClass::Test,
            net: Net::Cube,
            machine: Machine::Target,
            procs: 4,
            seed: 3,
        }
        .run()
        .unwrap();
        assert!(m.exec_us > 0.0);
        assert!(m.messages > 0);
        assert!(m.events > 0);
    }

    #[test]
    fn pram_has_no_traffic() {
        let m = Experiment {
            app: AppId::Ep,
            size: SizeClass::Test,
            net: Net::Full,
            machine: Machine::Pram,
            procs: 2,
            seed: 3,
        }
        .run()
        .unwrap();
        assert_eq!(m.messages, 0);
        assert_eq!(m.latency_us, 0.0);
    }

    #[test]
    fn per_event_gap_reduces_contention() {
        let base = Experiment {
            app: AppId::Fft,
            size: SizeClass::Test,
            net: Net::Cube,
            machine: Machine::CLogP,
            procs: 4,
            seed: 3,
        };
        let unified = base.run().unwrap();
        let pet = Experiment {
            machine: Machine::CLogPPerEventGap,
            ..base
        }
        .run()
        .unwrap();
        assert!(
            pet.contention_us < unified.contention_us,
            "per-event-type gap must lower contention: {} vs {}",
            pet.contention_us,
            unified.contention_us
        );
    }
}
