//! One simulation experiment: configuration, execution, metrics.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use spasm_apps::{AppId, SizeClass};
use spasm_logp::GapPolicy;
use spasm_machine::{
    CancelProbe, Engine, EngineMode, IntervalRecord, MachineConfig, MachineKind, ProcBody,
    RunError, SetupCtx, SpecStats,
};
use spasm_topology::{Topology, TopologyKind};

/// Network selection for an experiment (mirrors `TopologyKind`, with the
/// paper's names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Net {
    /// Fully connected.
    Full,
    /// Binary hypercube.
    Cube,
    /// 2-D mesh.
    Mesh,
}

impl Net {
    /// All three networks.
    pub const ALL: [Net; 3] = [Net::Full, Net::Cube, Net::Mesh];

    /// The corresponding topology kind.
    pub fn kind(self) -> TopologyKind {
        match self {
            Net::Full => TopologyKind::Full,
            Net::Cube => TopologyKind::Hypercube,
            Net::Mesh => TopologyKind::Mesh2D,
        }
    }

    /// Parses "full" / "cube" / "mesh".
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Config`] naming the unknown network and the
    /// valid names.
    pub fn from_name(name: &str) -> Result<Net, ExperimentError> {
        match name {
            "full" => Ok(Net::Full),
            "cube" => Ok(Net::Cube),
            "mesh" => Ok(Net::Mesh),
            _ => {
                let valid: Vec<String> = Net::ALL.iter().map(Net::to_string).collect();
                Err(ExperimentError::Config(format!(
                    "unknown network \"{name}\" (valid: {})",
                    valid.join(", ")
                )))
            }
        }
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Net::Full => "full",
            Net::Cube => "cube",
            Net::Mesh => "mesh",
        };
        f.write_str(s)
    }
}

/// Machine characterization for an experiment, including the A1 ablation
/// variant (CLogP with the per-event-type gap of the paper's §7
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// Ideal PRAM (SPASM's ideal time).
    Pram,
    /// The CC-NUMA target.
    Target,
    /// LogP without caches.
    LogP,
    /// LogP with the ideal coherent cache.
    CLogP,
    /// CLogP, gap enforced only between identical event kinds (§7).
    CLogPPerEventGap,
}

impl Machine {
    /// All five characterizations (the four machines plus the A1 variant).
    pub const ALL: [Machine; 5] = [
        Machine::Pram,
        Machine::Target,
        Machine::LogP,
        Machine::CLogP,
        Machine::CLogPPerEventGap,
    ];

    /// The underlying machine kind.
    pub fn kind(self) -> MachineKind {
        match self {
            Machine::Pram => MachineKind::Pram,
            Machine::Target => MachineKind::Target,
            Machine::LogP => MachineKind::LogP,
            Machine::CLogP | Machine::CLogPPerEventGap => MachineKind::CLogP,
        }
    }

    /// The machine configuration (gap policy etc.).
    pub fn config(self) -> MachineConfig {
        let mut c = MachineConfig::default();
        if self == Machine::CLogPPerEventGap {
            c.gap_policy = GapPolicy::PerEventType;
        }
        c
    }

    /// Parses the display name.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Config`] naming the unknown machine and the
    /// valid names.
    pub fn from_name(name: &str) -> Result<Machine, ExperimentError> {
        match name {
            "pram" => Ok(Machine::Pram),
            "target" => Ok(Machine::Target),
            "logp" => Ok(Machine::LogP),
            "clogp" => Ok(Machine::CLogP),
            "clogp-pet" => Ok(Machine::CLogPPerEventGap),
            _ => {
                let valid: Vec<String> = Machine::ALL.iter().map(Machine::to_string).collect();
                Err(ExperimentError::Config(format!(
                    "unknown machine \"{name}\" (valid: {})",
                    valid.join(", ")
                )))
            }
        }
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Machine::Pram => "pram",
            Machine::Target => "target",
            Machine::LogP => "logp",
            Machine::CLogP => "clogp",
            Machine::CLogPPerEventGap => "clogp-pet",
        };
        f.write_str(s)
    }
}

/// A fully specified simulation run.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Which application.
    pub app: AppId,
    /// Problem-size preset.
    pub size: SizeClass,
    /// Interconnect.
    pub net: Net,
    /// Machine characterization.
    pub machine: Machine,
    /// Processor count (power of two).
    pub procs: usize,
    /// Workload seed.
    pub seed: u64,
}

/// Why an experiment failed.
#[derive(Debug)]
pub enum ExperimentError {
    /// The experiment was rejected before anything ran: bad processor
    /// count, oversized topology, and friends.
    Config(String),
    /// The simulation itself failed (panic, deadlock, exhausted budget,
    /// bad request).
    Run(RunError),
    /// The simulation completed but produced a wrong answer.
    Verify(String),
    /// A panic escaped the simulation infrastructure itself (builder,
    /// model, or verifier) and was caught at the experiment boundary.
    Aborted(String),
    /// The point's job overran the sweep's per-job wall-clock deadline
    /// and was cancelled by the executor's watchdog.
    Deadline {
        /// The deadline the job overran.
        limit: Duration,
    },
    /// The failure was reconstructed from a sweep journal on resume: the
    /// string is the original error's rendering, preserved verbatim so
    /// resumed figures are byte-identical to uninterrupted ones.
    Replayed(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Config(e) => write!(f, "invalid configuration: {e}"),
            ExperimentError::Run(e) => write!(f, "simulation failed: {e}"),
            ExperimentError::Verify(e) => write!(f, "verification failed: {e}"),
            ExperimentError::Aborted(e) => write!(f, "experiment aborted: {e}"),
            ExperimentError::Deadline { limit } => {
                write!(f, "job overran its {limit:?} wall-clock deadline")
            }
            // Verbatim: the journal stored the original error's rendering.
            ExperimentError::Replayed(e) => f.write_str(e),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl ExperimentError {
    /// True for failures that a bounded retry with a reseeded fault
    /// stream may clear: only resource-budget exhaustion qualifies —
    /// deadlocks, panics, config and verify errors are deterministic
    /// for a fixed seed and will simply recur.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ExperimentError::Run(RunError::BudgetExceeded { .. }))
    }
}

/// A job-level failure from the parallel executor: a panic outside the
/// experiment's own `catch_unwind` fence or a pre-run cancellation maps
/// onto the abort class; a deadline overrun keeps its own typed variant
/// so renderers and retry policy can distinguish "slow" from "broken".
impl From<spasm_exec::JobError> for ExperimentError {
    fn from(e: spasm_exec::JobError) -> Self {
        match e {
            spasm_exec::JobError::Panicked(msg) => ExperimentError::Aborted(msg),
            spasm_exec::JobError::Cancelled(reason) => {
                ExperimentError::Aborted(format!("job not run: {reason}"))
            }
            spasm_exec::JobError::Deadline { limit } => ExperimentError::Deadline { limit },
        }
    }
}

/// Renders a caught panic payload (best effort: `&str` and `String`
/// payloads are quoted, anything else is described).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The measurements of one run, in the units the paper's figures use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Execution time (max over processors), µs.
    pub exec_us: f64,
    /// Mean per-processor latency overhead, µs.
    pub latency_us: f64,
    /// Mean per-processor contention overhead, µs.
    pub contention_us: f64,
    /// Mean per-processor synchronization spin time, µs.
    pub sync_us: f64,
    /// Mean per-processor home-directory wait, µs (target only).
    pub dir_wait_us: f64,
    /// Network messages.
    pub messages: u64,
    /// Network bytes.
    pub bytes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Fraction of network messages that crossed the bisection (target
    /// machine only; 0 on the abstracted machines).
    pub crossing_fraction: f64,
    /// Cache hits summed over nodes (0 on the cache-less machines).
    pub cache_hits: u64,
    /// Cache misses summed over nodes (0 on the cache-less machines).
    pub cache_misses: u64,
    /// Faults injected during the run, all classes summed (0 without an
    /// active fault plan).
    pub faults_injected: u64,
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
}

impl Experiment {
    /// Runs the experiment: build, simulate, verify, extract metrics.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Run`] if the simulation panics or deadlocks;
    /// [`ExperimentError::Verify`] if the application's verifier rejects
    /// the result.
    pub fn run(&self) -> Result<RunMetrics, ExperimentError> {
        self.run_with_config(self.machine.config())
    }

    /// Checks the experiment's static configuration without running it:
    /// the processor count must be a nonzero power of two that the chosen
    /// network can host.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Config`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        Topology::try_of_kind(self.net.kind(), self.procs)
            .map(|_| ())
            .map_err(|e| ExperimentError::Config(e.to_string()))
    }

    /// Runs the experiment with an explicit machine configuration — used
    /// by the ablations (gap policy, scaled g) and by faulted sweeps
    /// (fault plan, run budget).
    ///
    /// # Errors
    ///
    /// As [`Experiment::run`], plus [`ExperimentError::Config`] for an
    /// invalid topology request. Panics from the application builder,
    /// the machine models, or the verifier are caught at this boundary
    /// and surface as [`ExperimentError::Aborted`] — they never escape
    /// to poison a sweep.
    pub fn run_with_config(&self, config: MachineConfig) -> Result<RunMetrics, ExperimentError> {
        self.run_with_config_full(config).map(|(m, _)| m)
    }

    /// As [`Experiment::run_with_config`], additionally returning the
    /// run's interval telemetry (empty unless `config.telemetry` is set).
    ///
    /// # Errors
    ///
    /// As [`Experiment::run_with_config`].
    pub fn run_with_config_full(
        &self,
        config: MachineConfig,
    ) -> Result<(RunMetrics, Vec<IntervalRecord>), ExperimentError> {
        self.run_observed(config, None).map(|(m, t, _)| (m, t))
    }

    /// The full-control entry point behind every other `run_*`: an
    /// optional cancellation probe (polled by the engine between events,
    /// so an expired sweep deadline aborts the run mid-flight instead of
    /// letting a forfeit simulation finish), and the run's speculation
    /// statistics alongside the metrics — all zeros on the sequential
    /// engine, counters the equivalence suite asserts on under the
    /// optimistic one.
    ///
    /// Under [`EngineMode::Optimistic`] this also installs the process
    /// body factory (re-deriving any processor's body from the app's
    /// deterministic builder), which the engine's rollback path needs to
    /// respawn a mis-speculated process.
    ///
    /// # Errors
    ///
    /// As [`Experiment::run_with_config`], plus
    /// [`RunError::Cancelled`] (wrapped in [`ExperimentError::Run`])
    /// when the probe fires mid-run.
    pub fn run_observed(
        &self,
        config: MachineConfig,
        cancel: Option<CancelProbe>,
    ) -> Result<(RunMetrics, Vec<IntervalRecord>, SpecStats), ExperimentError> {
        let topo = Topology::try_of_kind(self.net.kind(), self.procs)
            .map_err(|e| ExperimentError::Config(e.to_string()))?;
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let mut setup = SetupCtx::new(self.procs);
            let app = self.app.instantiate(self.size);
            let built = app.build(&mut setup, self.seed);
            let mut engine =
                Engine::with_config(self.machine.kind(), &topo, config, setup, built.bodies);
            if config.engine != EngineMode::Sequential {
                let (app_id, size, procs, seed) = (self.app, self.size, self.procs, self.seed);
                engine.set_body_factory(Box::new(move |proc| {
                    // The builder is deterministic in (app, size, seed),
                    // so rebuilding and picking the proc-th body yields
                    // exactly the code the engine first spawned.
                    let mut s = SetupCtx::new(procs);
                    let built = app_id.instantiate(size).build(&mut s, seed);
                    built
                        .bodies
                        .into_iter()
                        .nth(proc)
                        .expect("factory proc within the build's processor count")
                }));
            }
            if let Some(probe) = cancel {
                engine.set_cancel_probe(probe);
            }
            let report = engine.run().map_err(ExperimentError::Run)?;
            (built.verify)(&report.final_store).map_err(ExperimentError::Verify)?;
            Ok((metrics_of(&report), report.telemetry, report.spec))
        }));
        outcome.unwrap_or_else(|payload| Err(ExperimentError::Aborted(panic_message(&*payload))))
    }
}

/// Extracts figure-ready metrics from an engine report.
fn metrics_of(report: &spasm_machine::RunReport) -> RunMetrics {
    let p = report.procs() as f64;
    RunMetrics {
        exec_us: report.exec_time_us(),
        latency_us: report.latency_overhead_us(),
        contention_us: report.contention_overhead_us(),
        sync_us: report.totals.sync.as_us_f64() / p,
        dir_wait_us: report.totals.dir_wait.as_us_f64() / p,
        messages: report.summary.net_messages,
        bytes: report.summary.net_bytes,
        events: report.events,
        crossing_fraction: report.summary.crossing_fraction(),
        cache_hits: report.summary.cache_hits,
        cache_misses: report.summary.cache_misses,
        faults_injected: report.faults.total(),
        wall: report.wall,
    }
}

/// Runs caller-supplied processor bodies through the full experiment
/// pipeline — topology validation, engine execution, panic isolation —
/// on one machine characterization. This is the harness the resilience
/// suite uses to throw hostile workloads (deadlocks, panics, livelocks)
/// at every machine and demand a typed error back.
///
/// # Errors
///
/// [`ExperimentError::Config`] for an invalid topology request,
/// [`ExperimentError::Run`] for simulation failures, and
/// [`ExperimentError::Aborted`] if a panic escapes the engine itself.
pub fn run_bodies(
    machine: Machine,
    net: Net,
    procs: usize,
    config: MachineConfig,
    setup: SetupCtx,
    bodies: Vec<ProcBody>,
) -> Result<RunMetrics, ExperimentError> {
    let topo = Topology::try_of_kind(net.kind(), procs)
        .map_err(|e| ExperimentError::Config(e.to_string()))?;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut engine = Engine::with_config(machine.kind(), &topo, config, setup, bodies);
        let report = engine.run().map_err(ExperimentError::Run)?;
        Ok(metrics_of(&report))
    }));
    outcome.unwrap_or_else(|payload| Err(ExperimentError::Aborted(panic_message(&*payload))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrips() {
        for net in Net::ALL {
            assert_eq!(Net::from_name(&net.to_string()).unwrap(), net);
        }
        for m in [
            Machine::Pram,
            Machine::Target,
            Machine::LogP,
            Machine::CLogP,
            Machine::CLogPPerEventGap,
        ] {
            assert_eq!(Machine::from_name(&m.to_string()).unwrap(), m);
        }
    }

    #[test]
    fn unknown_names_are_typed_config_errors_listing_valid_names() {
        match Net::from_name("ring") {
            Err(ExperimentError::Config(msg)) => {
                assert!(msg.contains("\"ring\""), "{msg}");
                for net in Net::ALL {
                    assert!(msg.contains(&net.to_string()), "{msg} missing {net}");
                }
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        match Machine::from_name("bsp") {
            Err(ExperimentError::Config(msg)) => {
                assert!(msg.contains("\"bsp\""), "{msg}");
                for m in Machine::ALL {
                    assert!(msg.contains(&m.to_string()), "{msg} missing {m}");
                }
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn experiment_runs_and_verifies() {
        let m = Experiment {
            app: AppId::Is,
            size: SizeClass::Test,
            net: Net::Cube,
            machine: Machine::Target,
            procs: 4,
            seed: 3,
        }
        .run()
        .unwrap();
        assert!(m.exec_us > 0.0);
        assert!(m.messages > 0);
        assert!(m.events > 0);
    }

    #[test]
    fn pram_has_no_traffic() {
        let m = Experiment {
            app: AppId::Ep,
            size: SizeClass::Test,
            net: Net::Full,
            machine: Machine::Pram,
            procs: 2,
            seed: 3,
        }
        .run()
        .unwrap();
        assert_eq!(m.messages, 0);
        assert_eq!(m.latency_us, 0.0);
    }

    #[test]
    fn invalid_processor_counts_are_config_errors() {
        let base = Experiment {
            app: AppId::Ep,
            size: SizeClass::Test,
            net: Net::Cube,
            machine: Machine::Pram,
            procs: 3,
            seed: 1,
        };
        for (procs, needle) in [(3, "power of two"), (0, "positive"), (1 << 20, "maximum")] {
            let exp = Experiment { procs, ..base };
            match exp.validate() {
                Err(ExperimentError::Config(msg)) => {
                    assert!(msg.contains(needle), "procs={procs}: {msg}")
                }
                other => panic!("procs={procs}: expected Config error, got {other:?}"),
            }
            // `run` must agree with `validate`, not panic.
            assert!(matches!(exp.run(), Err(ExperimentError::Config(_))));
        }
        assert!(Experiment { procs: 4, ..base }.validate().is_ok());
    }

    #[test]
    fn panicking_bodies_yield_typed_errors_not_aborts() {
        use spasm_machine::ProcBody;
        for machine in Machine::ALL {
            let setup = SetupCtx::new(2);
            let bodies: Vec<ProcBody> = vec![
                Box::new(|_, _| panic!("app body exploded")),
                Box::new(|_, _| {}),
            ];
            let err =
                run_bodies(machine, Net::Full, 2, machine.config(), setup, bodies).unwrap_err();
            match err {
                ExperimentError::Run(RunError::Panicked { proc, message }) => {
                    assert_eq!(proc, 0, "{machine}");
                    assert!(message.contains("exploded"), "{machine}: {message}");
                }
                other => panic!("{machine}: expected Panicked, got {other}"),
            }
        }
    }

    #[test]
    fn per_event_gap_reduces_contention() {
        let base = Experiment {
            app: AppId::Fft,
            size: SizeClass::Test,
            net: Net::Cube,
            machine: Machine::CLogP,
            procs: 4,
            seed: 3,
        };
        let unified = base.run().unwrap();
        let pet = Experiment {
            machine: Machine::CLogPPerEventGap,
            ..base
        }
        .run()
        .unwrap();
        assert!(
            pet.contention_us < unified.contention_us,
            "per-event-type gap must lower contention: {} vs {}",
            pet.contention_us,
            unified.contention_us
        );
    }
}
