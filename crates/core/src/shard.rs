//! Sharded sweep fan-out: split one figure sweep across `N` cooperating
//! worker processes and crash-safely merge their journals.
//!
//! The *shard contract* is a pure function from a sweep's point space to
//! `N` disjoint shards: points are enumerated series-major (every
//! processor count of the first machine, then the second, …— exactly
//! the serial iteration order) and shard `K` (1-based) owns every point
//! whose zero-based index `i` satisfies `i % N == K - 1`. The contract
//! version ([`CONTRACT`]) is absorbed into the sweep fingerprint, so a
//! journal cut under a different point→shard mapping — or under any
//! other configuration difference — is refused, never merged.
//!
//! Each worker runs only its own points through the journaled sweep
//! path ([`crate::sweep::run_figure_shard`]) into a per-shard journal
//! named by [`ShardSpec::file_name`]. [`merge_shards`] then reassembles
//! any set of shard journals into a [`FigureData`] whose renderings are
//! byte-identical to a single-process serial run:
//!
//! * torn-tail shard journals are read to their longest valid prefix
//!   (reported, never repaired on disk — a live worker may still own
//!   the file);
//! * interior-corrupt, undecodable, or fingerprint-mismatched shards
//!   are *quarantined* — excluded from the merge with a typed
//!   [`ShardError`], while the merge continues on the healthy shards;
//! * overlapping shards (the same point in several journals) are
//!   deduplicated by point key, with a conflict check over everything
//!   the simulation determines (host wall-clock excluded): the same
//!   point with *different* results is a determinism failure and
//!   aborts the merge with [`ShardError::Overlap`];
//! * points no surviving shard covers degrade to the partial-figure
//!   salvage path: a `FAILED` cell whose reason names the absent shard.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use spasm_apps::SizeClass;
use spasm_journal::{Journal, JournalError, RealVfs, Vfs};

use crate::figures::FigureSpec;
use crate::journal::{decode_point, sweep_fingerprint, ReplayPoint};
use crate::sweep::{extract, FigureData, Outcome, Series, SweepConfig};
use crate::{ExperimentError, Machine, RunMetrics};

/// Whether two records of the same point agree on everything the
/// simulation determines. `RunMetrics::wall` is host wall-clock — two
/// honest runs of the same point measure different nanos — so it is
/// excluded; every other field, interval telemetry included, is
/// seeded-deterministic.
fn same_result(a: &ReplayPoint, b: &ReplayPoint) -> bool {
    let strip = |m: &RunMetrics| RunMetrics {
        wall: std::time::Duration::ZERO,
        ..*m
    };
    match (a, b) {
        (ReplayPoint::Ok(x, tx), ReplayPoint::Ok(y, ty)) => strip(x) == strip(y) && tx == ty,
        (
            ReplayPoint::Failed {
                reason: ra,
                attempts: aa,
            },
            ReplayPoint::Failed {
                reason: rb,
                attempts: ab,
            },
        ) => ra == rb && aa == ab,
        _ => false,
    }
}

/// Version tag of the shard contract (the point→shard mapping and the
/// shard-journal naming scheme), absorbed into the sweep fingerprint so
/// shards cut under a different contract are refused, not merged.
pub const CONTRACT: &str = "spasm-shard-rr-v1";

/// One shard of an `N`-way sweep partition: this worker owns every
/// series-major point index `i` with `i % count == index - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index, in `1..=count`.
    pub index: usize,
    /// Total number of shards, `>= 1`.
    pub count: usize,
}

impl ShardSpec {
    /// A validated shard, or a message naming the constraint violated.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index == 0 || index > count {
            return Err(format!("shard index {index} outside 1..={count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI form `K/N` (e.g. `2/3`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("expected K/N, got {s:?}"))?;
        let index = k
            .parse()
            .map_err(|_| format!("shard index {k:?} is not a number"))?;
        let count = n
            .parse()
            .map_err(|_| format!("shard count {n:?} is not a number"))?;
        ShardSpec::new(index, count)
    }

    /// Whether this shard owns the series-major point index `i`.
    ///
    /// Round-robin rather than contiguous blocks: every shard touches
    /// every series, so a lost shard costs a stripe of each curve
    /// instead of one machine's entire series.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index - 1
    }

    /// The shard journal's file name for one figure,
    /// `<figure>.shard-K-of-N.journal`.
    pub fn file_name(&self, figure_id: &str) -> String {
        format!("{figure_id}.shard-{}-of-{}.journal", self.index, self.count)
    }

    /// Inverts [`ShardSpec::file_name`]: the figure id and shard this
    /// file name denotes, or `None` for anything else.
    pub fn parse_file_name(name: &str) -> Option<(&str, ShardSpec)> {
        let stem = name.strip_suffix(".journal")?;
        let (figure, shard) = stem.rsplit_once(".shard-")?;
        let (k, n) = shard.split_once("-of-")?;
        let spec = ShardSpec::new(k.parse().ok()?, n.parse().ok()?).ok()?;
        Some((figure, spec))
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Why a shard journal could not contribute to a merge.
#[derive(Debug)]
pub enum ShardError {
    /// The shard journal is unusable: unreadable, not a journal,
    /// interior-corrupt, or holding records that do not decode as sweep
    /// points. Quarantined: the merge proceeds without it.
    Corrupt {
        /// The shard journal path.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// Two shards hold the *same point with different results* — a
    /// determinism failure (the simulator is seeded and deterministic,
    /// so honest shards of one configuration can only agree). Aborts
    /// the merge: neither answer can be trusted.
    Overlap {
        /// The conflicting point's machine.
        machine: Machine,
        /// The conflicting point's processor count.
        procs: usize,
        /// The shard journal merged first.
        first: PathBuf,
        /// The shard journal that contradicted it.
        second: PathBuf,
    },
    /// No shard journal for this figure exists in the merge directory
    /// at all — there is nothing to salvage a partial figure from.
    Missing {
        /// The directory searched.
        dir: PathBuf,
        /// The figure whose shards were expected.
        figure: String,
    },
    /// The shard was written under a different sweep configuration (or
    /// shard contract). Quarantined: the merge proceeds without it.
    FingerprintMismatch {
        /// The shard journal path.
        path: PathBuf,
        /// The fingerprint this merge's configuration expects.
        expected: u64,
        /// The fingerprint in the shard's header.
        found: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Corrupt { path, detail } => {
                write!(f, "shard {} is corrupt: {detail}", path.display())
            }
            ShardError::Overlap {
                machine,
                procs,
                first,
                second,
            } => write!(
                f,
                "shards disagree on point ({machine}, p={procs}): {} vs {} \
                 (same configuration, different results — determinism failure)",
                first.display(),
                second.display()
            ),
            ShardError::Missing { dir, figure } => write!(
                f,
                "no shard journals for figure {figure} in {}",
                dir.display()
            ),
            ShardError::FingerprintMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard {} was written under a different configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// What [`merge_shards`] assembled and what it had to route around.
#[derive(Debug)]
pub struct MergeReport {
    /// The reassembled figure. When every point was covered, its
    /// renderings are byte-identical to a serial run's.
    pub data: FigureData,
    /// Shard journals that contributed at least their header.
    pub shards_merged: usize,
    /// Distinct points recovered from the shard journals.
    pub points_merged: usize,
    /// Identical records deduplicated across overlapping shards.
    pub duplicates: usize,
    /// Shards excluded from the merge, each with its typed reason
    /// ([`ShardError::Corrupt`] or [`ShardError::FingerprintMismatch`]).
    pub quarantined: Vec<ShardError>,
    /// Torn-tail bytes tolerated per shard (never repaired on disk).
    pub torn: Vec<(PathBuf, usize)>,
    /// Grid points no surviving shard covered; each is a `FAILED` cell
    /// in [`MergeReport::data`] naming the absent shard.
    pub missing_points: usize,
}

/// Reassembles the per-shard journals for `spec` found in `dir` into a
/// full figure, byte-identical to a serial run when every point is
/// covered. See the module docs for the robustness ladder (torn tails
/// tolerated, corrupt/mismatched shards quarantined, overlaps
/// deduplicated-then-conflict-checked, missing points salvaged).
///
/// Purely a reader: no simulation runs, and no shard file is modified.
///
/// # Errors
///
/// [`ShardError::Missing`] when `dir` holds no shard journal for this
/// figure, and [`ShardError::Overlap`] when two shards disagree on one
/// point's result. Corrupt and mismatched shards are *not* errors here;
/// they are quarantined into [`MergeReport::quarantined`].
pub fn merge_shards(
    dir: &Path,
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: &SweepConfig,
) -> Result<MergeReport, ShardError> {
    merge_shards_with(&RealVfs, dir, spec, size, procs, seed, sweep)
}

/// [`merge_shards`] on an explicit [`Vfs`] — the entry point the chaos
/// harness drives against crashed, fault-scripted shard directories.
#[allow(clippy::too_many_arguments)] // mirrors merge_shards + the vfs
pub fn merge_shards_with(
    vfs: &dyn Vfs,
    dir: &Path,
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: &SweepConfig,
) -> Result<MergeReport, ShardError> {
    let fp = sweep_fingerprint(spec, size, procs, seed, sweep);

    // Discover this figure's shard files, ignoring stray non-shard
    // entries (CSVs, notes, other figures' journals). Sorted by
    // (count, index) so merge order — and thus quarantine reports and
    // overlap attribution — is deterministic regardless of directory
    // iteration order.
    let mut files: Vec<(PathBuf, ShardSpec)> = vfs
        .list_dir(dir)
        .map_err(|e| ShardError::Missing {
            dir: dir.to_path_buf(),
            figure: format!("{} ({e})", spec.id),
        })?
        .into_iter()
        .filter_map(|path| {
            let name = path.file_name()?.to_str()?;
            let (figure, shard) = ShardSpec::parse_file_name(name)?;
            (figure == spec.id).then_some((path, shard))
        })
        .collect();
    files.sort_by_key(|&(_, s)| (s.count, s.index));
    if files.is_empty() {
        return Err(ShardError::Missing {
            dir: dir.to_path_buf(),
            figure: spec.id.to_string(),
        });
    }
    // The partition width the merge expects: the widest family present.
    // With one shard family (the normal case) this is its `N`; mixed
    // families still yield a deterministic owner for missing points.
    let width = files.iter().map(|&(_, s)| s.count).max().unwrap_or(1);

    let mut merged: HashMap<(Machine, usize), (ReplayPoint, PathBuf)> = HashMap::new();
    let mut quarantined = Vec::new();
    let mut torn = Vec::new();
    let mut shards_merged = 0usize;
    let mut duplicates = 0usize;
    for (path, _) in &files {
        let recovery = match Journal::read_with(vfs, path, fp) {
            Ok(r) => r,
            Err(JournalError::FingerprintMismatch {
                expected, found, ..
            }) => {
                quarantined.push(ShardError::FingerprintMismatch {
                    path: path.clone(),
                    expected,
                    found,
                });
                continue;
            }
            Err(e) => {
                quarantined.push(ShardError::Corrupt {
                    path: path.clone(),
                    detail: e.to_string(),
                });
                continue;
            }
        };
        if recovery.truncated_bytes > 0 {
            torn.push((path.clone(), recovery.truncated_bytes));
        }
        let mut bad = None;
        for (index, record) in recovery.records.iter().enumerate() {
            let (machine, p, point) = match decode_point(record) {
                Ok(decoded) => decoded,
                Err(detail) => {
                    bad = Some(format!("record {index} does not decode: {detail}"));
                    break;
                }
            };
            match merged.get(&(machine, p)) {
                None => {
                    merged.insert((machine, p), (point, path.clone()));
                }
                Some((first_point, first_path)) => {
                    // Overlap: fine if the results agree (the point
                    // simply ran twice; the first record wins, so the
                    // merge stays deterministic under the sorted file
                    // order), fatal if they differ.
                    if same_result(first_point, &point) {
                        duplicates += 1;
                    } else {
                        return Err(ShardError::Overlap {
                            machine,
                            procs: p,
                            first: first_path.clone(),
                            second: path.clone(),
                        });
                    }
                }
            }
        }
        match bad {
            Some(detail) => {
                // Quarantine the whole shard: a journal whose records
                // pass their checksums but do not decode was written by
                // something else — none of it can be trusted. Points
                // already taken from it are withdrawn.
                merged.retain(|_, (_, p)| p != path);
                quarantined.push(ShardError::Corrupt {
                    path: path.clone(),
                    detail,
                });
            }
            None => shards_merged += 1,
        }
    }
    let points_merged = merged.len();

    // Assemble the figure exactly like a journal-replayed serial sweep:
    // recovered points verbatim, uncovered points as salvaged FAILED
    // cells naming the shard that should have produced them.
    let mut missing_points = 0usize;
    let mut series = Vec::with_capacity(spec.machines.len());
    for (mi, &machine) in spec.machines.iter().enumerate() {
        let mut values = Vec::with_capacity(procs.len());
        let mut metrics = Vec::with_capacity(procs.len());
        let mut outcomes = Vec::with_capacity(procs.len());
        let mut telemetry = Vec::with_capacity(procs.len());
        for (pi, &p) in procs.iter().enumerate() {
            let (outcome, m, intervals) = match merged.get(&(machine, p)) {
                Some((ReplayPoint::Ok(m, t), _)) => (Outcome::Ok, Some(*m), t.clone()),
                Some((ReplayPoint::Failed { reason, attempts }, _)) => (
                    Outcome::Failed {
                        error: ExperimentError::Replayed(reason.clone()),
                        attempts: *attempts,
                    },
                    None,
                    Vec::new(),
                ),
                None => {
                    missing_points += 1;
                    let owner = (mi * procs.len() + pi) % width + 1;
                    (
                        Outcome::Failed {
                            error: ExperimentError::Replayed(format!(
                                "point not merged: shard {owner}/{width} \
                                 ({}) is absent, incomplete, or quarantined",
                                ShardSpec {
                                    index: owner,
                                    count: width
                                }
                                .file_name(spec.id)
                            )),
                            attempts: 0,
                        },
                        None,
                        Vec::new(),
                    )
                }
            };
            values.push(m.as_ref().map_or(f64::NAN, |m| extract(spec.metric, m)));
            metrics.push(m);
            outcomes.push(outcome);
            telemetry.push(intervals);
        }
        series.push(Series {
            machine,
            values,
            metrics,
            outcomes,
            telemetry,
        });
    }
    Ok(MergeReport {
        data: FigureData {
            spec: *spec,
            procs: procs.to_vec(),
            series,
        },
        shards_merged,
        points_merged,
        duplicates,
        quarantined,
        torn,
        missing_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_partitions_every_point_exactly_once() {
        for n in [1usize, 2, 3, 8] {
            for i in 0..64 {
                let owners: Vec<usize> = (1..=n)
                    .filter(|&k| ShardSpec { index: k, count: n }.owns(i))
                    .collect();
                assert_eq!(owners.len(), 1, "point {i} under N={n}: {owners:?}");
                assert_eq!(owners[0], i % n + 1);
            }
        }
    }

    #[test]
    fn spec_validates_and_parses() {
        assert_eq!(
            ShardSpec::parse("2/3").unwrap(),
            ShardSpec { index: 2, count: 3 }
        );
        assert_eq!(ShardSpec::parse("1/1").unwrap().to_string(), "1/1");
        assert!(ShardSpec::parse("0/3").is_err());
        assert!(ShardSpec::parse("4/3").is_err());
        assert!(ShardSpec::parse("1/0").is_err());
        assert!(ShardSpec::parse("13").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
    }

    #[test]
    fn file_names_round_trip() {
        let shard = ShardSpec { index: 2, count: 8 };
        let name = shard.file_name("F13");
        assert_eq!(name, "F13.shard-2-of-8.journal");
        assert_eq!(ShardSpec::parse_file_name(&name), Some(("F13", shard)));
        // Figure ids containing dots survive the round trip.
        let dotted = shard.file_name("F1.3");
        assert_eq!(ShardSpec::parse_file_name(&dotted), Some(("F1.3", shard)));
        assert_eq!(ShardSpec::parse_file_name("F2.journal"), None);
        assert_eq!(ShardSpec::parse_file_name("F2.shard-0-of-3.journal"), None);
        assert_eq!(ShardSpec::parse_file_name("notes.txt"), None);
    }
}
