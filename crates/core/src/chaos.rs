//! Deterministic crash-consistency harness: exhaustive I/O crash-point
//! exploration, scripted fault campaigns, and failure shrinking.
//!
//! The harness runs entire journaled sweeps against the in-memory
//! [`FaultVfs`] and holds every outcome to one oracle, the **recovery
//! oracle**: after any scripted sequence of torn writes, short writes,
//! `ENOSPC`, dropped fsyncs, failed renames, and power cuts, a resumed
//! sweep must either
//!
//! 1. render the figure **byte-identically** to the uninterrupted
//!    reference run ([`CrashVerdict::Identical`]), or
//! 2. refuse with a **typed error naming the corruption**
//!    ([`CrashVerdict::Refused`]).
//!
//! Anything else — a run that completes but renders different bytes —
//! is silent divergence ([`ChaosError::Divergence`]) and fails the
//! harness.
//!
//! Three drivers sit on top of the oracle:
//!
//! - [`explore_crash_points`] is exhaustive: it records the I/O
//!   operation trace of a reference sweep, then re-runs the sweep once
//!   per operation index with a crash injected there (plus a
//!   dropped-fsync × delayed-crash grid that manufactures torn files).
//! - [`run_campaign`] fuzzes random multi-fault scripts across four
//!   failure families: the plain journal, a sharded fleet with merge,
//!   deadline-cut sweeps resumed without the deadline, and the
//!   optimistic engine under an anti-message-loss [`FaultPlan`].
//! - [`shrink_demo`] shows the [`spasm_testkit`] shrinker reducing a
//!   many-entry failing script to a minimal reproducer.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use spasm_apps::SizeClass;
use spasm_journal::{Fault, FaultScript, FaultVfs, TraceEntry, Vfs, VfsOpKind};
use spasm_machine::{CheckMode, EngineMode, FaultPlan};
use spasm_testkit::{gens, minimize, Gen, TestRng};

use crate::figures::{self, FigureSpec};
use crate::journal::SweepJournal;
use crate::shard::{merge_shards_with, ShardSpec};
use crate::sweep::{run_figure_journaled, run_figure_shard, FigureData, SweepConfig};

/// One figure sweep pinned down tightly enough for byte-identity
/// comparisons: the figure, its size class, processor counts, seed, and
/// the [`SweepConfig`] used for *recovery* runs (victim runs may use a
/// different, fingerprint-compatible config — see
/// [`verify_script_with`]).
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// The figure under test.
    pub spec: &'static FigureSpec,
    /// Problem size class for every point.
    pub size: SizeClass,
    /// Processor counts swept.
    pub procs: Vec<usize>,
    /// Base seed for the sweep (also the default tear seed).
    pub seed: u64,
    /// Configuration for the reference and recovery runs.
    pub sweep: SweepConfig,
}

impl ChaosSweep {
    /// The smallest interesting sweep of `spec`: test size, one
    /// processor count, default configuration. Fast enough to re-run
    /// hundreds of times inside the crash-point explorer.
    pub fn smoke(spec: &'static FigureSpec) -> ChaosSweep {
        ChaosSweep {
            spec,
            size: SizeClass::Test,
            procs: vec![2],
            seed: 42,
            sweep: SweepConfig::default(),
        }
    }

    /// Total points the sweep simulates (every machine × every
    /// processor count).
    pub fn total_points(&self) -> usize {
        self.spec.machines.len() * self.procs.len()
    }

    fn journal_path(&self) -> PathBuf {
        PathBuf::from(format!("/chaos/{}.journal", self.spec.id))
    }
}

/// The byte-identity surface the recovery oracle compares: CSV, the
/// rendered table, and the telemetry JSONL, concatenated. Two
/// [`FigureData`] with equal renderings are indistinguishable to every
/// downstream consumer of the tool.
pub fn rendering(data: &FigureData) -> String {
    format!(
        "{}\n{}\n{}",
        data.to_csv(),
        data.render_table(),
        data.to_telemetry_jsonl()
    )
}

/// How one scripted-fault run satisfied the recovery oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashVerdict {
    /// Recovery converged on the reference rendering, byte for byte.
    Identical {
        /// Points replayed from the surviving journal (the rest were
        /// re-simulated).
        replayed: usize,
    },
    /// The tool refused to resume, with a typed error naming the
    /// corruption — loud failure, never silent divergence.
    Refused {
        /// The typed error's rendering.
        error: String,
    },
}

/// A violated oracle or a broken harness.
#[derive(Debug, Clone)]
pub enum ChaosError {
    /// The cardinal sin: a faulted run recovered *and* rendered
    /// different bytes than the reference.
    Divergence {
        /// The fault script that produced the divergence.
        script: FaultScript,
        /// What diverged, and where.
        detail: String,
    },
    /// The harness itself could not complete (reference run failed,
    /// recovery never stopped crashing, unknown figure, ...).
    Harness(String),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Divergence { script, detail } => {
                write!(f, "silent divergence under {script}: {detail}")
            }
            ChaosError::Harness(msg) => write!(f, "chaos harness error: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {}

fn divergence(script: &FaultScript, context: &str, expected: &str, got: &str) -> ChaosError {
    let at = match expected.lines().zip(got.lines()).position(|(a, b)| a != b) {
        Some(n) => format!("first differing line {}", n + 1),
        None => format!("{} vs {} bytes", expected.len(), got.len()),
    };
    ChaosError::Divergence {
        script: script.clone(),
        detail: format!("{context} diverged from the reference ({at})"),
    }
}

/// Runs the uninterrupted reference sweep on a pristine [`FaultVfs`]
/// and returns its rendering plus the recorded I/O operation trace —
/// the crash-point universe [`explore_crash_points`] walks.
pub fn run_reference(cs: &ChaosSweep) -> Result<(String, Vec<TraceEntry>), ChaosError> {
    let fault = Arc::new(FaultVfs::pristine());
    let vfs: Arc<dyn Vfs> = fault.clone();
    let journal = SweepJournal::create_with(
        vfs,
        cs.journal_path(),
        cs.spec,
        cs.size,
        &cs.procs,
        cs.seed,
        &cs.sweep,
    )
    .map_err(|e| ChaosError::Harness(format!("reference journal create failed: {e}")))?;
    let data = run_figure_journaled(
        cs.spec,
        cs.size,
        &cs.procs,
        cs.seed,
        cs.sweep,
        &journal,
        |_| {},
    );
    if let Some(err) = journal.io_error() {
        return Err(ChaosError::Harness(format!(
            "reference run hit a journal I/O error on a pristine vfs: {err}"
        )));
    }
    Ok((rendering(&data), fault.trace()))
}

/// Applies the recovery oracle to one fault script: run the victim
/// sweep under the script, then keep power-cycling and resuming until
/// an attempt finishes without crashing, and compare its rendering to
/// `expected`. Victim and recovery both use [`ChaosSweep::sweep`].
pub fn verify_script(
    cs: &ChaosSweep,
    expected: &str,
    script: &FaultScript,
) -> Result<CrashVerdict, ChaosError> {
    verify_script_with(cs, &cs.sweep, expected, script)
}

/// [`verify_script`] with a distinct victim configuration. The victim
/// config must be fingerprint-compatible with [`ChaosSweep::sweep`]
/// (scheduling knobs like [`SweepConfig::deadline`] are excluded from
/// the journal fingerprint precisely so this works); when the two
/// configs differ the uncrashed-victim identity check is skipped, since
/// e.g. a deadline legitimately cuts points until recovery re-runs
/// them.
pub fn verify_script_with(
    cs: &ChaosSweep,
    victim: &SweepConfig,
    expected: &str,
    script: &FaultScript,
) -> Result<CrashVerdict, ChaosError> {
    let fault = Arc::new(FaultVfs::new(script.clone()));
    let vfs: Arc<dyn Vfs> = fault.clone();
    let path = cs.journal_path();

    // Victim pass. Creation can fail under an immediate scripted fault
    // (the tool refuses to start); that leaves nothing durable, which
    // recovery below treats as a clean fresh start.
    if let Ok(journal) = SweepJournal::create_with(
        vfs.clone(),
        &path,
        cs.spec,
        cs.size,
        &cs.procs,
        cs.seed,
        victim,
    ) {
        let data = run_figure_journaled(
            cs.spec,
            cs.size,
            &cs.procs,
            cs.seed,
            *victim,
            &journal,
            |_| {},
        );
        if !fault.crashed() && victim.deadline == cs.sweep.deadline {
            // Non-crash faults may wreck durability, but they must
            // never corrupt the in-memory figure of a run that was
            // allowed to finish.
            let got = rendering(&data);
            if got != expected {
                return Err(divergence(
                    script,
                    "the uncrashed faulted run",
                    expected,
                    &got,
                ));
            }
        }
    }

    // Recovery loop. The op counter and the script continue across
    // reboots, so scripted faults can hit recovery itself; each entry
    // fires at most once, so `faults.len() + 2` restarts always reach a
    // fault-free attempt.
    for _ in 0..script.faults.len() + 2 {
        fault.reboot();
        match SweepJournal::resume_with(
            vfs.clone(),
            &path,
            cs.spec,
            cs.size,
            &cs.procs,
            cs.seed,
            &cs.sweep,
        ) {
            Ok(journal) => {
                let replayed = journal.replayed();
                let data = run_figure_journaled(
                    cs.spec,
                    cs.size,
                    &cs.procs,
                    cs.seed,
                    cs.sweep,
                    &journal,
                    |_| {},
                );
                if fault.crashed() {
                    continue;
                }
                let got = rendering(&data);
                if got == expected {
                    return Ok(CrashVerdict::Identical { replayed });
                }
                return Err(divergence(script, "the recovered run", expected, &got));
            }
            Err(err) => {
                if fault.crashed() {
                    continue;
                }
                return Ok(CrashVerdict::Refused {
                    error: err.to_string(),
                });
            }
        }
    }
    Err(ChaosError::Harness(format!(
        "recovery kept crashing past every scripted fault ({script})"
    )))
}

/// [`verify_script`] for a sharded fleet: `shards` workers each run
/// their slice into their own journal, the scripted faults hit whoever
/// is doing I/O when their operation index comes up, and after recovery
/// the shards are merged and the merged figure compared to `expected`.
/// A worker whose journal latches a non-crash I/O error exits dirty and
/// the whole fleet is re-run (the operator's retry loop), so the merge
/// only happens after a fully clean pass.
pub fn verify_shard_script(
    cs: &ChaosSweep,
    shards: usize,
    expected: &str,
    script: &FaultScript,
) -> Result<CrashVerdict, ChaosError> {
    let fault = Arc::new(FaultVfs::new(script.clone()));
    let vfs: Arc<dyn Vfs> = fault.clone();
    let dir = PathBuf::from("/chaos-shards");
    let specs: Vec<ShardSpec> = (1..=shards)
        .map(|i| ShardSpec::new(i, shards).expect("valid shard spec"))
        .collect();

    // Victim pass: the fleet runs worker by worker until the scripted
    // crash (if any) takes the machine down.
    for &shard in &specs {
        let path = dir.join(shard.file_name(cs.spec.id));
        if let Ok(journal) = SweepJournal::create_with(
            vfs.clone(),
            &path,
            cs.spec,
            cs.size,
            &cs.procs,
            cs.seed,
            &cs.sweep,
        ) {
            run_figure_shard(
                cs.spec,
                cs.size,
                &cs.procs,
                cs.seed,
                cs.sweep,
                shard,
                &journal,
                |_| {},
            );
        }
        if fault.crashed() {
            break;
        }
    }

    'attempt: for _ in 0..script.faults.len() + 3 {
        fault.reboot();
        let mut replayed = 0usize;
        for &shard in &specs {
            let path = dir.join(shard.file_name(cs.spec.id));
            match SweepJournal::resume_with(
                vfs.clone(),
                &path,
                cs.spec,
                cs.size,
                &cs.procs,
                cs.seed,
                &cs.sweep,
            ) {
                Ok(journal) => {
                    let report = run_figure_shard(
                        cs.spec,
                        cs.size,
                        &cs.procs,
                        cs.seed,
                        cs.sweep,
                        shard,
                        &journal,
                        |_| {},
                    );
                    if fault.crashed() || journal.io_error().is_some() {
                        continue 'attempt;
                    }
                    replayed += report.replayed;
                }
                Err(err) => {
                    if fault.crashed() {
                        continue 'attempt;
                    }
                    return Ok(CrashVerdict::Refused {
                        error: err.to_string(),
                    });
                }
            }
        }
        let report = merge_shards_with(
            &*fault, &dir, cs.spec, cs.size, &cs.procs, cs.seed, &cs.sweep,
        )
        .map_err(|err| ChaosError::Divergence {
            script: script.clone(),
            detail: format!("shard merge failed after a clean recovery: {err}"),
        })?;
        if !report.quarantined.is_empty() || report.missing_points > 0 {
            return Err(ChaosError::Divergence {
                script: script.clone(),
                detail: format!(
                    "shard merge incomplete after a clean recovery: {} quarantined, {} missing",
                    report.quarantined.len(),
                    report.missing_points
                ),
            });
        }
        let got = rendering(&report.data);
        if got == expected {
            return Ok(CrashVerdict::Identical { replayed });
        }
        return Err(divergence(
            script,
            "the merged shard figure",
            expected,
            &got,
        ));
    }
    Err(ChaosError::Harness(format!(
        "shard recovery kept crashing past every scripted fault ({script})"
    )))
}

/// What the exhaustive crash-point sweep covered and concluded.
#[derive(Debug, Clone)]
pub struct CrashExploration {
    /// Mutating I/O operations in the reference trace.
    pub ops: usize,
    /// Pure power cuts verified (one per operation index).
    pub crash_points: usize,
    /// Dropped-fsync × delayed-crash pairs verified (the torn-file
    /// grid).
    pub torn_points: usize,
    /// Verdicts that resumed byte-identically.
    pub identical: usize,
    /// Verdicts that refused with a typed error.
    pub refused: usize,
    /// Refusals from the *pure-crash* pass specifically. The journal's
    /// whole-file atomic-rename commit means a clean power cut always
    /// leaves the previous fully-committed image, so this should be
    /// zero; torn-file refusals (header destroyed by a dropped fsync)
    /// are legitimate and excluded.
    pub refused_pure_crash: usize,
    /// Fewest points any identical verdict replayed.
    pub min_replayed: usize,
    /// Most points any identical verdict replayed.
    pub max_replayed: usize,
    /// Every refusal, with the script that caused it.
    pub refusals: Vec<(FaultScript, String)>,
}

impl fmt::Display for CrashExploration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops, {} crash points + {} torn points: {} identical, {} refused \
             ({} on pure crashes), replayed {}..={}, 0 divergent",
            self.ops,
            self.crash_points,
            self.torn_points,
            self.identical,
            self.refused,
            self.refused_pure_crash,
            self.min_replayed,
            self.max_replayed
        )
    }
}

/// Exhaustively explores every crash point of the reference sweep:
/// records the I/O trace, then for each operation index `k` re-runs the
/// sweep with a power cut at `k` and applies the recovery oracle. A
/// second pass manufactures torn files by pairing a dropped fsync at
/// each `SyncFile` operation with a crash up to `torn_window`
/// operations later. Returns the coverage report, or the first
/// divergence found — the report itself proves "zero silent
/// divergence" over every explored point.
pub fn explore_crash_points(
    cs: &ChaosSweep,
    torn_window: usize,
) -> Result<CrashExploration, ChaosError> {
    let (expected, trace) = run_reference(cs)?;
    let ops = trace.len();
    let mut report = CrashExploration {
        ops,
        crash_points: 0,
        torn_points: 0,
        identical: 0,
        refused: 0,
        refused_pure_crash: 0,
        min_replayed: usize::MAX,
        max_replayed: 0,
        refusals: Vec::new(),
    };
    let tally = |report: &mut CrashExploration,
                 script: FaultScript,
                 verdict: CrashVerdict,
                 pure_crash: bool| {
        match verdict {
            CrashVerdict::Identical { replayed } => {
                report.identical += 1;
                report.min_replayed = report.min_replayed.min(replayed);
                report.max_replayed = report.max_replayed.max(replayed);
            }
            CrashVerdict::Refused { error } => {
                report.refused += 1;
                if pure_crash {
                    report.refused_pure_crash += 1;
                }
                report.refusals.push((script, error));
            }
        }
    };

    for k in 0..ops {
        let script = FaultScript::crash_at(k);
        report.crash_points += 1;
        let verdict = verify_script(cs, &expected, &script)?;
        tally(&mut report, script, verdict, true);
    }

    for sync in trace.iter().filter(|t| t.kind == VfsOpKind::SyncFile) {
        // A crash index equal to `ops` never fires — that pair tests
        // the dropped fsync followed by a reboot at the very end.
        for k in sync.index + 1..=(sync.index + torn_window).min(ops) {
            let script = FaultScript {
                seed: cs.seed,
                faults: vec![(sync.index, Fault::DropSync), (k, Fault::Crash)],
            };
            report.torn_points += 1;
            let verdict = verify_script(cs, &expected, &script)?;
            tally(&mut report, script, verdict, false);
        }
    }
    if report.identical == 0 {
        report.min_replayed = 0;
    }
    Ok(report)
}

/// The four failure families [`run_campaign`] rotates through, in trial
/// order.
pub const FAMILIES: [&str; 4] = ["journal", "shard-merge", "deadline", "anti-loss"];

/// Campaign dimensions: how many trials, seeded where, shrinking how
/// hard.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master seed; every trial's script seed derives from it.
    pub seed: u64,
    /// Trials to run, rotating through [`FAMILIES`].
    pub trials: usize,
    /// Shrink-attempt budget if a trial fails.
    pub shrink_budget: u32,
}

impl CampaignConfig {
    /// A campaign of `trials` trials under `seed` with the default
    /// shrink budget.
    pub fn new(seed: u64, trials: usize) -> CampaignConfig {
        CampaignConfig {
            seed,
            trials,
            shrink_budget: 256,
        }
    }
}

/// A passed campaign: every trial satisfied the recovery oracle.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOutcome {
    /// Trials run.
    pub trials: usize,
    /// Trials that resumed byte-identically.
    pub identical: usize,
    /// Trials that refused with a typed error.
    pub refused: usize,
}

/// A failed campaign trial, with its shrunk minimal reproducer.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Which failure family the trial belonged to.
    pub family: &'static str,
    /// Zero-based trial index.
    pub trial: usize,
    /// The original randomly generated fault script.
    pub script: FaultScript,
    /// Why the original script failed the oracle.
    pub detail: String,
    /// The minimal fault script that still fails, per the shrinker.
    pub minimized: FaultScript,
    /// Why the minimized script fails.
    pub minimized_detail: String,
    /// Shrink attempts spent reaching the minimum.
    pub shrink_steps: u32,
}

impl fmt::Display for CampaignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} ({}) failed: {}\n  original script: {}\n  minimized to {} \
             after {} shrink attempts: {}",
            self.trial,
            self.family,
            self.detail,
            self.script,
            self.minimized,
            self.shrink_steps,
            self.minimized_detail
        )
    }
}

/// Every fault species, mildest first — the order the shrinker prefers.
const FAULT_MENU: [Fault; 7] = [
    Fault::FailDirSync,
    Fault::FailRename,
    Fault::Enospc,
    Fault::ShortWrite,
    Fault::DropSync,
    Fault::TornWrite,
    Fault::Crash,
];

fn script_gen(max_op: usize) -> Gen<Vec<(usize, Fault)>> {
    gens::vecs(
        gens::tuple2(
            gens::usizes(0..max_op.max(1)),
            gens::choice(FAULT_MENU.to_vec()),
        ),
        1..6,
    )
}

/// Runs a fuzzing campaign: each trial draws a random multi-fault
/// script and applies the recovery oracle in one of the [`FAMILIES`] —
/// the plain journal, a two-shard fleet with merge, a deadline-cut
/// victim resumed without its deadline, and the optimistic engine under
/// an anti-message-loss [`FaultPlan::chaos`] plan. On the first oracle
/// violation the failing script is shrunk to a minimal reproducer and
/// returned as a [`CampaignFailure`].
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignOutcome, Box<CampaignFailure>> {
    let harness_failure = |family, trial, script: &FaultScript, detail: String| {
        Box::new(CampaignFailure {
            family,
            trial,
            script: script.clone(),
            detail: detail.clone(),
            minimized: script.clone(),
            minimized_detail: detail,
            shrink_steps: 0,
        })
    };
    let spec = match figures::by_id("F1") {
        Some(spec) => spec,
        None => {
            let empty = FaultScript::default();
            return Err(harness_failure(
                "journal",
                0,
                &empty,
                "figure F1 is not registered".into(),
            ));
        }
    };
    let base = ChaosSweep::smoke(spec);
    let deadline_victim = SweepConfig {
        deadline: Some(Duration::from_millis(1)),
        ..base.sweep
    };
    let anti = ChaosSweep {
        sweep: SweepConfig {
            engine: EngineMode::Optimistic { workers: 2 },
            faults: Some(FaultPlan::chaos(config.seed)),
            check: CheckMode::On,
            ..base.sweep
        },
        ..base.clone()
    };
    let empty = FaultScript::default();
    let (expected_base, trace_base) =
        run_reference(&base).map_err(|e| harness_failure("journal", 0, &empty, e.to_string()))?;
    let (expected_anti, trace_anti) =
        run_reference(&anti).map_err(|e| harness_failure("anti-loss", 0, &empty, e.to_string()))?;

    // A two-shard fleet roughly doubles the op universe; the +8 keeps
    // some scripts poking past the end (inert entries must stay inert).
    let max_op = trace_base.len().max(trace_anti.len()) * 2 + 8;
    let entries_gen = script_gen(max_op);

    let mut identical = 0usize;
    let mut refused = 0usize;
    let mut stream = config.seed ^ 0x5b_a5_0c_4a_05_c4_a0_5eu64;
    for trial in 0..config.trials {
        let family = FAMILIES[trial % FAMILIES.len()];
        let case_seed = spasm_prng::splitmix64(&mut stream);
        let entries = entries_gen.generate(&mut TestRng::seed_from_u64(case_seed));
        let script = FaultScript {
            seed: case_seed,
            faults: entries,
        };
        let verify = |s: &FaultScript| match family {
            "journal" => verify_script(&base, &expected_base, s),
            "shard-merge" => verify_shard_script(&base, 2, &expected_base, s),
            "deadline" => verify_script_with(&base, &deadline_victim, &expected_base, s),
            _ => verify_script(&anti, &expected_anti, s),
        };
        match verify(&script) {
            Ok(CrashVerdict::Identical { .. }) => identical += 1,
            Ok(CrashVerdict::Refused { .. }) => refused += 1,
            Err(err) => {
                let detail = err.to_string();
                let prop = |entries: &Vec<(usize, Fault)>| {
                    let s = FaultScript {
                        seed: case_seed,
                        faults: entries.clone(),
                    };
                    match verify(&s) {
                        Err(e) => Err(e.to_string()),
                        Ok(_) => Ok(()),
                    }
                };
                let (min_entries, min_detail, steps) = minimize(
                    &entries_gen,
                    prop,
                    script.faults.clone(),
                    detail.clone(),
                    config.shrink_budget,
                );
                return Err(Box::new(CampaignFailure {
                    family,
                    trial,
                    script,
                    detail,
                    minimized: FaultScript {
                        seed: case_seed,
                        faults: min_entries,
                    },
                    minimized_detail: min_detail,
                    shrink_steps: steps,
                }));
            }
        }
    }
    Ok(CampaignOutcome {
        trials: config.trials,
        identical,
        refused,
    })
}

/// A demonstration (and regression anchor) of failure shrinking: the
/// property "a resumed sweep replays *every* point from the journal"
/// is deliberately falsifiable — any effective fault breaks it — so a
/// three-fault script shrinks down to a single-entry minimal
/// reproducer.
#[derive(Debug, Clone)]
pub struct ShrinkDemo {
    /// Points the sweep simulates (the replay target).
    pub total_points: usize,
    /// The seeded multi-fault script the demo starts from.
    pub script: FaultScript,
    /// Why the original script fails the replay-everything property.
    pub detail: String,
    /// The shrunk minimal script (expected: one entry).
    pub minimized: FaultScript,
    /// Why the minimized script still fails.
    pub minimized_detail: String,
    /// Shrink attempts spent.
    pub shrink_steps: u32,
}

/// Builds a multi-fault script that provably breaks full replay —
/// `ENOSPC` on the journal's very first write, a dropped fsync on its
/// last sync, and a power cut at the final operation — then shrinks it
/// against the replay-everything property. `seed` feeds the script's
/// tear draws only, so the demo is fully deterministic.
pub fn shrink_demo(seed: u64) -> Result<ShrinkDemo, ChaosError> {
    let spec = figures::by_id("F1")
        .ok_or_else(|| ChaosError::Harness("figure F1 is not registered".into()))?;
    let cs = ChaosSweep::smoke(spec);
    let (expected, trace) = run_reference(&cs)?;
    let total = cs.total_points();
    let last_sync = trace
        .iter()
        .rev()
        .find(|t| t.kind == VfsOpKind::SyncFile)
        .map(|t| t.index)
        .ok_or_else(|| ChaosError::Harness("reference trace has no sync".into()))?;
    let last_op = trace.len() - 1;
    let script = FaultScript {
        seed,
        faults: vec![
            (0, Fault::Enospc),
            (last_sync, Fault::DropSync),
            (last_op, Fault::Crash),
        ],
    };

    let prop = |entries: &Vec<(usize, Fault)>| {
        let s = FaultScript {
            seed,
            faults: entries.clone(),
        };
        match verify_script(&cs, &expected, &s) {
            Ok(CrashVerdict::Identical { replayed }) if replayed == total => Ok(()),
            Ok(CrashVerdict::Identical { replayed }) => Err(format!(
                "resume re-simulated {} of {total} points instead of replaying them",
                total - replayed
            )),
            Ok(CrashVerdict::Refused { error }) => Err(format!("resume refused: {error}")),
            Err(err) => Err(err.to_string()),
        }
    };
    let detail = match prop(&script.faults) {
        Err(detail) => detail,
        Ok(()) => {
            return Err(ChaosError::Harness(
                "the demo script unexpectedly passed the replay-everything property".into(),
            ))
        }
    };
    let (min_entries, minimized_detail, shrink_steps) = minimize(
        &script_gen(trace.len()),
        prop,
        script.faults.clone(),
        detail.clone(),
        300,
    );
    Ok(ShrinkDemo {
        total_points: total,
        script,
        detail,
        minimized: FaultScript {
            seed,
            faults: min_entries,
        },
        minimized_detail,
        shrink_steps,
    })
}
