//! Ablations of the paper's design choices (§7 "Discussion").
//!
//! The paper identifies the g parameter's derivation as the abstraction's
//! weak point: "Since g is computed using only the bisection bandwidth of
//! the network …, it fails to capture any communication locality resulting
//! from mapping the application on to a specific network topology", and
//! suggests "we need to incorporate application characteristics in
//! computing g" — e.g. by maintaining a history of the execution.
//!
//! [`traffic_aware_g`] implements that suggestion: run the target once,
//! measure the fraction `f` of messages that actually cross the bisection,
//! and re-derive `g' = g·f` (the bisection formula implicitly assumes
//! `f = 1`). The study reports how much of the contention pessimism the
//! corrected estimate removes.

use spasm_apps::{AppId, SizeClass};
use spasm_exec::{execute, ExecConfig, JobOutput};
use spasm_machine::MachineConfig;

use crate::{Experiment, ExperimentError, Machine, Net, RunMetrics};

/// Runs a batch of independent (experiment, config) pairs on a worker
/// pool (`jobs` as in [`crate::sweep::SweepConfig::jobs`]), returning
/// per-run results in submission order. Job-level failures (escaped
/// panics, cancellations) map onto [`ExperimentError::Aborted`].
fn run_batch(
    jobs: usize,
    runs: Vec<(Experiment, MachineConfig)>,
) -> Vec<Result<RunMetrics, ExperimentError>> {
    let report = execute(
        ExecConfig::with_jobs(jobs),
        runs,
        |_ctx, (exp, config)| {
            let result = exp.run_with_config(config);
            let (cost, faults) = result
                .as_ref()
                .map_or((0, 0), |m| (m.events, m.faults_injected));
            JobOutput {
                value: result,
                cost,
                faults,
            }
        },
        |_| {},
    );
    report
        .results
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|e| Err(e.into())))
        .collect()
}

/// Results of the traffic-aware-g study for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct GStudy {
    /// The target machine's run (source of the measured locality).
    pub target: RunMetrics,
    /// CLogP with the paper's bisection-bandwidth g.
    pub naive: RunMetrics,
    /// CLogP with g scaled by the measured crossing fraction.
    pub aware: RunMetrics,
    /// The measured fraction of bisection-crossing messages.
    pub crossing_fraction: f64,
}

impl GStudy {
    /// Contention error (µs) of the naive estimate vs the target.
    pub fn naive_error(&self) -> f64 {
        (self.naive.contention_us - self.target.contention_us).abs()
    }

    /// Contention error (µs) of the traffic-aware estimate vs the target.
    pub fn aware_error(&self) -> f64 {
        (self.aware.contention_us - self.target.contention_us).abs()
    }
}

/// Runs the traffic-aware-g study: target (measurement) + CLogP with the
/// naive and corrected g.
///
/// # Errors
///
/// Propagates the first failed or unverified simulation.
pub fn traffic_aware_g(
    app: AppId,
    size: SizeClass,
    net: Net,
    procs: usize,
    seed: u64,
) -> Result<GStudy, ExperimentError> {
    traffic_aware_g_jobs(app, size, net, procs, seed, 1)
}

/// [`traffic_aware_g`] on a worker pool: the target and naive-CLogP runs
/// are independent and execute concurrently; the aware run needs the
/// target's measured crossing fraction and follows. Results are
/// identical to the serial study for the same seed.
///
/// # Errors
///
/// Propagates the first failed or unverified simulation, in the serial
/// study's order (target, then naive, then aware).
pub fn traffic_aware_g_jobs(
    app: AppId,
    size: SizeClass,
    net: Net,
    procs: usize,
    seed: u64,
    jobs: usize,
) -> Result<GStudy, ExperimentError> {
    let base = Experiment {
        app,
        size,
        net,
        machine: Machine::Target,
        procs,
        seed,
    };
    let clogp = Experiment {
        machine: Machine::CLogP,
        ..base
    };
    let mut batch = run_batch(
        jobs,
        vec![
            (base, base.machine.config()),
            (clogp, clogp.machine.config()),
        ],
    )
    .into_iter();
    let target = batch
        .next()
        .expect("executor returns one slot per submitted job (2 jobs, slot 0)")?;
    let naive = batch
        .next()
        .expect("executor returns one slot per submitted job (2 jobs, slot 1)")?;
    let crossing_fraction = target.crossing_fraction;
    let aware = clogp.run_with_config(MachineConfig {
        g_scale: crossing_fraction,
        ..MachineConfig::default()
    })?;
    Ok(GStudy {
        target,
        naive,
        aware,
        crossing_fraction,
    })
}

/// One point of the cache working-set curve.
#[derive(Debug, Clone, Copy)]
pub struct CachePoint {
    /// Cache capacity in bytes.
    pub size_bytes: usize,
    /// Metrics of the target-machine run at this capacity.
    pub metrics: RunMetrics,
}

/// Sweeps the target machine's cache capacity for one application — the
/// working-set study of Rothberg/Singh/Gupta (ISCA 1993) that the paper's
/// §2 cites for the claim that "a small-sized cache of around 64KB can
/// accommodate the important working set of many applications".
///
/// Associativity (2) and block size (32 B) stay at the paper's values;
/// capacities must keep a power-of-two set count.
///
/// # Errors
///
/// Propagates the first failed or unverified simulation.
pub fn cache_working_set(
    app: AppId,
    size: SizeClass,
    net: Net,
    procs: usize,
    seed: u64,
    capacities: &[usize],
) -> Result<Vec<CachePoint>, ExperimentError> {
    cache_working_set_jobs(app, size, net, procs, seed, capacities, 1)
}

/// [`cache_working_set`] on a worker pool: one job per capacity. The
/// returned curve (and, on failure, the error) matches the serial sweep:
/// failures surface in capacity order, so the reported error is the one
/// the serial short-circuit would have hit first.
///
/// # Errors
///
/// The first failed or unverified simulation, in capacity order.
#[allow(clippy::too_many_arguments)]
pub fn cache_working_set_jobs(
    app: AppId,
    size: SizeClass,
    net: Net,
    procs: usize,
    seed: u64,
    capacities: &[usize],
    jobs: usize,
) -> Result<Vec<CachePoint>, ExperimentError> {
    let base = Experiment {
        app,
        size,
        net,
        machine: Machine::Target,
        procs,
        seed,
    };
    let runs = capacities
        .iter()
        .map(|&size_bytes| {
            let mut config = MachineConfig::default();
            config.cache.size_bytes = size_bytes;
            (base, config)
        })
        .collect();
    run_batch(jobs, runs)
        .into_iter()
        .zip(capacities)
        .map(|(metrics, &size_bytes)| {
            Ok(CachePoint {
                size_bytes,
                metrics: metrics?,
            })
        })
        .collect()
}

/// The capacity sweep used by the working-set example and bench: 1 KB to
/// 256 KB around the paper's 64 KB operating point.
pub const CACHE_SWEEP: &[usize] = &[1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10];

/// Target-machine runs under both coherence protocols.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolStudy {
    /// Berkeley (the paper's protocol).
    pub berkeley: RunMetrics,
    /// Write-back-on-read ("memory-clean").
    pub write_back_on_read: RunMetrics,
}

impl ProtocolStudy {
    /// Relative execution-time difference between the protocols.
    pub fn exec_gap(&self) -> f64 {
        (self.write_back_on_read.exec_us - self.berkeley.exec_us).abs() / self.berkeley.exec_us
    }
}

/// Runs one application under both coherence protocols on the target —
/// the Wood et al. (ISCA 1993) observation the paper leans on: application
/// performance "is not very sensitive to different cache coherence
/// protocols", which licenses abstracting the protocol away entirely in
/// CLogP.
///
/// # Errors
///
/// Propagates the first failed or unverified simulation.
pub fn protocol_sensitivity(
    app: AppId,
    size: SizeClass,
    net: Net,
    procs: usize,
    seed: u64,
) -> Result<ProtocolStudy, ExperimentError> {
    protocol_sensitivity_jobs(app, size, net, procs, seed, 1)
}

/// [`protocol_sensitivity`] on a worker pool: the two protocol runs are
/// independent and execute concurrently, with identical results to the
/// serial study.
///
/// # Errors
///
/// Propagates the first failed or unverified simulation (Berkeley
/// first, matching the serial order).
pub fn protocol_sensitivity_jobs(
    app: AppId,
    size: SizeClass,
    net: Net,
    procs: usize,
    seed: u64,
    jobs: usize,
) -> Result<ProtocolStudy, ExperimentError> {
    let base = Experiment {
        app,
        size,
        net,
        machine: Machine::Target,
        procs,
        seed,
    };
    let mut batch = run_batch(
        jobs,
        vec![
            (base, base.machine.config()),
            (
                base,
                MachineConfig {
                    protocol: spasm_cache::ProtocolKind::WriteBackOnRead,
                    ..MachineConfig::default()
                },
            ),
        ],
    )
    .into_iter();
    let berkeley = batch
        .next()
        .expect("executor returns one slot per submitted job (2 jobs, slot 0)")?;
    let write_back_on_read = batch
        .next()
        .expect("executor returns one slot per submitted job (2 jobs, slot 1)")?;
    Ok(ProtocolStudy {
        berkeley,
        write_back_on_read,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_fraction_is_a_fraction() {
        let s = traffic_aware_g(AppId::Fft, SizeClass::Test, Net::Mesh, 8, 3).unwrap();
        assert!((0.0..=1.0).contains(&s.crossing_fraction));
        // FFT's butterfly partners are mostly nearby once the high stages
        // pass; a meaningful share of traffic must stay local.
        assert!(s.crossing_fraction < 1.0);
    }

    #[test]
    fn aware_g_reduces_contention_estimate() {
        let s = traffic_aware_g(AppId::Fft, SizeClass::Test, Net::Mesh, 8, 3).unwrap();
        assert!(
            s.aware.contention_us < s.naive.contention_us,
            "scaling g by measured locality must lower contention: {} vs {}",
            s.aware.contention_us,
            s.naive.contention_us
        );
    }

    #[test]
    fn working_set_curve_is_monotone_then_flat() {
        let points =
            cache_working_set(AppId::Cg, SizeClass::Test, Net::Full, 4, 3, CACHE_SWEEP).unwrap();
        // Larger caches never hurt (no pathological thrash in this suite).
        for w in points.windows(2) {
            assert!(
                w[1].metrics.exec_us <= w[0].metrics.exec_us * 1.02,
                "exec time must not grow with capacity: {:?} -> {:?}",
                w[0].size_bytes,
                w[1].size_bytes
            );
        }
        // And the curve flattens by 64 KB: the paper-cited working-set
        // claim. 64KB -> 256KB buys < 5%.
        let at_64k = points.iter().find(|p| p.size_bytes == 64 << 10).unwrap();
        let at_256k = points.iter().find(|p| p.size_bytes == 256 << 10).unwrap();
        assert!(at_256k.metrics.exec_us >= at_64k.metrics.exec_us * 0.95);
    }

    #[test]
    fn tiny_cache_generates_more_traffic_and_time() {
        // FFT re-reads its own chunk every stage, so a 1 KB cache thrashes.
        // (IS and CG show the *opposite* message trend — bigger caches keep
        // more shared copies alive, so writes invalidate more — which is
        // why this asserts on FFT and on time, not on a universal rule.)
        let points = cache_working_set(
            AppId::Fft,
            SizeClass::Test,
            Net::Full,
            8,
            1995,
            &[1 << 10, 64 << 10],
        )
        .unwrap();
        assert!(
            points[0].metrics.messages > points[1].metrics.messages,
            "1KB cache should miss more than 64KB: {} vs {}",
            points[0].metrics.messages,
            points[1].metrics.messages
        );
        assert!(points[0].metrics.exec_us > points[1].metrics.exec_us);
    }

    #[test]
    fn parallel_ablations_are_bit_identical_to_serial() {
        let bits = |m: &RunMetrics| {
            (
                m.exec_us.to_bits(),
                m.contention_us.to_bits(),
                m.messages,
                m.events,
            )
        };
        let a = traffic_aware_g(AppId::Fft, SizeClass::Test, Net::Mesh, 8, 3).unwrap();
        let b = traffic_aware_g_jobs(AppId::Fft, SizeClass::Test, Net::Mesh, 8, 3, 4).unwrap();
        assert_eq!(bits(&a.target), bits(&b.target));
        assert_eq!(bits(&a.naive), bits(&b.naive));
        assert_eq!(bits(&a.aware), bits(&b.aware));
        assert_eq!(a.crossing_fraction.to_bits(), b.crossing_fraction.to_bits());

        let a = protocol_sensitivity(AppId::Cg, SizeClass::Test, Net::Full, 4, 1995).unwrap();
        let b =
            protocol_sensitivity_jobs(AppId::Cg, SizeClass::Test, Net::Full, 4, 1995, 2).unwrap();
        assert_eq!(bits(&a.berkeley), bits(&b.berkeley));
        assert_eq!(bits(&a.write_back_on_read), bits(&b.write_back_on_read));

        let a =
            cache_working_set(AppId::Cg, SizeClass::Test, Net::Full, 4, 3, CACHE_SWEEP).unwrap();
        let b = cache_working_set_jobs(AppId::Cg, SizeClass::Test, Net::Full, 4, 3, CACHE_SWEEP, 4)
            .unwrap();
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.size_bytes, pb.size_bytes);
            assert_eq!(bits(&pa.metrics), bits(&pb.metrics));
        }
    }

    #[test]
    fn parallel_cache_sweep_fails_in_capacity_order() {
        // A capacity that breaks the power-of-two set-count requirement
        // fails identically under both paths, and the parallel path
        // reports the *first* bad capacity like the serial short-circuit.
        let caps = &[3 << 10, 1 << 10];
        let serial = cache_working_set(AppId::Ep, SizeClass::Test, Net::Full, 2, 1, caps);
        let parallel = cache_working_set_jobs(AppId::Ep, SizeClass::Test, Net::Full, 2, 1, caps, 2);
        match (serial, parallel) {
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            other => panic!("both paths must fail the same way, got {other:?}"),
        }
    }

    #[test]
    fn protocol_choice_barely_matters() {
        // Wood et al.'s claim, tested on all five applications: the two
        // protocols' execution times differ by well under the gap between
        // machine characterizations.
        for app in AppId::ALL {
            let s = protocol_sensitivity(app, SizeClass::Test, Net::Full, 4, 1995).unwrap();
            assert!(
                s.exec_gap() < 0.20,
                "{app}: protocols diverge by {:.0}% ({:.0}us vs {:.0}us)",
                100.0 * s.exec_gap(),
                s.berkeley.exec_us,
                s.write_back_on_read.exec_us
            );
        }
    }

    #[test]
    fn protocols_are_genuinely_different_yet_close() {
        // The two protocols produce *different* traffic (downgrade
        // writebacks trade against avoided victim writebacks) but stay
        // within a narrow band — the substance of the insensitivity claim.
        let s = protocol_sensitivity(AppId::Cg, SizeClass::Test, Net::Full, 4, 1995).unwrap();
        assert_ne!(
            (s.berkeley.messages, s.berkeley.bytes),
            (s.write_back_on_read.messages, s.write_back_on_read.bytes),
            "protocol switch must change the traffic mix"
        );
        let ratio = s.write_back_on_read.bytes as f64 / s.berkeley.bytes as f64;
        assert!((0.8..=1.25).contains(&ratio), "byte ratio {ratio:.3}");
    }

    #[test]
    fn aware_g_is_closer_to_target_for_local_apps() {
        // The correction targets apps with communication locality on
        // low-connectivity networks — exactly where the paper found the
        // naive g most pessimistic.
        let s = traffic_aware_g(AppId::Fft, SizeClass::Test, Net::Mesh, 8, 3).unwrap();
        assert!(
            s.aware_error() < s.naive_error(),
            "aware {:.1}us vs naive {:.1}us (target {:.1}us)",
            s.aware.contention_us,
            s.naive.contention_us,
            s.target.contention_us
        );
    }
}
