//! Processor sweeps over a figure's series, with table/CSV rendering.

use spasm_apps::SizeClass;

use crate::figures::{FigureSpec, Metric};
use crate::{Experiment, ExperimentError, Machine, RunMetrics};

/// One figure's regenerated data: `values[series][point]` aligned with
/// `procs[point]`.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// The figure this data regenerates.
    pub spec: FigureSpec,
    /// Processor counts swept.
    pub procs: Vec<usize>,
    /// Series, in `spec.machines` order.
    pub series: Vec<Series>,
}

/// One machine's curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// The machine simulated.
    pub machine: Machine,
    /// The plotted metric at each processor count.
    pub values: Vec<f64>,
    /// Full metrics (for secondary analysis).
    pub metrics: Vec<RunMetrics>,
}

/// Extracts a figure's plotted metric from run metrics.
pub fn extract(metric: Metric, m: &RunMetrics) -> f64 {
    match metric {
        Metric::Latency => m.latency_us,
        Metric::Contention => m.contention_us,
        Metric::ExecTime => m.exec_us,
        Metric::SimSpeed => m.wall.as_secs_f64() * 1e3,
        Metric::Events => m.events as f64,
    }
}

/// Runs the full processor sweep for one figure.
///
/// # Errors
///
/// Propagates the first simulation or verification failure.
pub fn run_figure(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
) -> Result<FigureData, ExperimentError> {
    let mut series = Vec::with_capacity(spec.machines.len());
    for &machine in spec.machines {
        let mut values = Vec::with_capacity(procs.len());
        let mut metrics = Vec::with_capacity(procs.len());
        for &p in procs {
            let m = Experiment {
                app: spec.app,
                size,
                net: spec.net,
                machine,
                procs: p,
                seed,
            }
            .run()?;
            values.push(extract(spec.metric, &m));
            metrics.push(m);
        }
        series.push(Series {
            machine,
            values,
            metrics,
        });
    }
    Ok(FigureData {
        spec: *spec,
        procs: procs.to_vec(),
        series,
    })
}

impl FigureData {
    /// Renders the figure as an aligned text table (the harness's
    /// stand-in for the paper's plots).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}: {} on {} — {}\n  expect: {}\n",
            self.spec.id, self.spec.app, self.spec.net, self.spec.metric, self.spec.expect
        ));
        out.push_str(&format!("  {:>6}", "procs"));
        for s in &self.series {
            out.push_str(&format!(" {:>14}", s.machine.to_string()));
        }
        out.push('\n');
        for (i, &p) in self.procs.iter().enumerate() {
            out.push_str(&format!("  {p:>6}"));
            for s in &self.series {
                out.push_str(&format!(" {:>14.2}", s.values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as CSV (`figure,app,net,metric,procs,series,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,app,net,metric,procs,machine,value\n");
        for s in &self.series {
            for (i, &p) in self.procs.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{:?},{},{},{}\n",
                    self.spec.id,
                    self.spec.app,
                    self.spec.net,
                    self.spec.metric,
                    p,
                    s.machine,
                    s.values[i]
                ));
            }
        }
        out
    }

    /// The series for `machine`, if present.
    pub fn series_for(&self, machine: Machine) -> Option<&Series> {
        self.series.iter().find(|s| s.machine == machine)
    }

    /// Renders the figure as an ASCII chart (the closest a terminal gets
    /// to the paper's plots): y is the metric on a linear scale from zero
    /// to the maximum observed value, x is the processor sweep, one glyph
    /// per series.
    ///
    /// Intended for eyeballing curve *shapes*; exact values are in
    /// [`FigureData::render_table`].
    pub fn render_chart(&self, height: usize) -> String {
        const GLYPHS: [char; 5] = ['T', 'L', 'C', 'P', 'G'];
        let height = height.max(4);
        let max = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .fold(0.0f64, f64::max);
        let mut out = String::new();
        out.push_str(&format!(
            "{}: {} on {} — {} (0..{max:.0})\n",
            self.spec.id, self.spec.app, self.spec.net, self.spec.metric
        ));
        if max <= 0.0 {
            out.push_str("  (all values zero)\n");
            return out;
        }
        // Column per sweep point, 6 chars wide.
        let col_w = 7;
        let mut grid = vec![vec![' '; self.procs.len() * col_w]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (pi, &v) in s.values.iter().enumerate() {
                let row = ((v / max) * (height - 1) as f64).round() as usize;
                let r = height - 1 - row.min(height - 1);
                let c = pi * col_w + col_w / 2;
                // Overlapping points show the later series' glyph with a
                // '*' marker to flag the collision.
                grid[r][c] = if grid[r][c] == ' ' { glyph } else { '*' };
            }
        }
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(self.procs.len() * col_w));
        out.push('\n');
        out.push_str("   ");
        for &p in &self.procs {
            out.push_str(&format!("{p:^col_w$}"));
        }
        out.push('\n');
        out.push_str("  key:");
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!(" {}={}", GLYPHS[si % GLYPHS.len()], s.machine));
        }
        out.push_str("  (*=overlap)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::Net;
    use spasm_apps::AppId;

    #[test]
    fn small_sweep_produces_aligned_data() {
        let spec = figures::by_id("F1").unwrap();
        let data = run_figure(spec, SizeClass::Test, &[2, 4], 5).unwrap();
        assert_eq!(data.procs, vec![2, 4]);
        assert_eq!(data.series.len(), 3);
        for s in &data.series {
            assert_eq!(s.values.len(), 2);
            assert!(s.values.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn table_and_csv_render() {
        let spec = figures::by_id("F12").unwrap();
        let data = run_figure(spec, SizeClass::Test, &[2], 5).unwrap();
        let table = data.render_table();
        assert!(table.contains("F12"));
        assert!(table.contains("target"));
        let csv = data.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3); // header + 3 series x 1 p
        assert!(csv.contains("F12,ep,full"));
    }

    #[test]
    fn chart_renders_axes_key_and_points() {
        let spec = figures::by_id("F12").unwrap();
        let data = run_figure(spec, SizeClass::Test, &[2, 4], 5).unwrap();
        let chart = data.render_chart(8);
        assert!(chart.contains("F12"));
        assert!(chart.contains("T=target"));
        assert!(chart.contains("L=logp"));
        // Axis row lists the sweep points.
        assert!(chart.contains('2') && chart.contains('4'));
        // Max point must sit on the top row of the plot area.
        let plot_rows: Vec<&str> = chart.lines().filter(|l| l.starts_with("  |")).collect();
        assert_eq!(plot_rows.len(), 8);
        assert!(
            plot_rows[0].chars().any(|c| c != ' ' && c != '|'),
            "top row should carry the maximum: {chart}"
        );
    }

    #[test]
    fn chart_handles_all_zero_series() {
        let spec = figures::FigureSpec {
            id: "Z",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::Contention,
            machines: &[Machine::Pram],
            expect: "zeros",
        };
        let data = run_figure(&spec, SizeClass::Test, &[2], 1).unwrap();
        assert!(data.render_chart(6).contains("all values zero"));
    }

    #[test]
    fn series_lookup() {
        let spec = figures::FigureSpec {
            id: "T",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::ExecTime,
            machines: &[Machine::Pram, Machine::Target],
            expect: "test",
        };
        let data = run_figure(&spec, SizeClass::Test, &[2], 1).unwrap();
        assert!(data.series_for(Machine::Pram).is_some());
        assert!(data.series_for(Machine::LogP).is_none());
        // PRAM is the ideal-time floor.
        let pram = data.series_for(Machine::Pram).unwrap().values[0];
        let target = data.series_for(Machine::Target).unwrap().values[0];
        assert!(pram <= target);
    }
}
