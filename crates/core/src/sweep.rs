//! Processor sweeps over a figure's series, with table/CSV rendering.
//!
//! Sweeps are *resilient*: a failed point (invalid configuration,
//! exhausted budget, deadlock, wrong answer) is recorded as a
//! [`Outcome::Failed`] cell instead of aborting the whole figure, and
//! budget-class failures get a bounded retry with a reseeded fault
//! stream before being declared dead.
//!
//! Sweeps are also *parallel*: every (machine × procs) point is an
//! independent simulation, so [`SweepConfig::jobs`] hands the points to
//! the `spasm-exec` worker pool. Results are reassembled in submission
//! order, and each point's simulation is internally unchanged, so the
//! resulting [`FigureData`] — table, CSV, chart, metric bits — is
//! **byte-identical** to a serial sweep of the same seeds.

use std::time::Duration;

use spasm_apps::SizeClass;
use spasm_exec::{execute, Backoff, CostBudget, ExecConfig, ExecEvent, JobCtx, JobOutput};
use spasm_machine::{
    CheckMode, EngineMode, FaultPlan, IntervalRecord, RunBudget, RunError, TelemetryConfig,
};

use crate::figures::{FigureSpec, Metric};
use crate::journal::SweepJournal;
use crate::{Experiment, ExperimentError, Machine, RunMetrics};

/// One figure's regenerated data: `values[series][point]` aligned with
/// `procs[point]`.
#[derive(Debug)]
pub struct FigureData {
    /// The figure this data regenerates.
    pub spec: FigureSpec,
    /// Processor counts swept.
    pub procs: Vec<usize>,
    /// Series, in `spec.machines` order.
    pub series: Vec<Series>,
}

/// One machine's curve.
#[derive(Debug)]
pub struct Series {
    /// The machine simulated.
    pub machine: Machine,
    /// The plotted metric at each processor count; `NaN` for failed
    /// points (renderers show `FAILED`, never a bogus number).
    pub values: Vec<f64>,
    /// Full metrics (for secondary analysis); `None` for failed points.
    pub metrics: Vec<Option<RunMetrics>>,
    /// Per-point outcome, aligned with `values`.
    pub outcomes: Vec<Outcome>,
    /// Per-point interval telemetry, aligned with `values` (empty vectors
    /// unless [`SweepConfig::telemetry`] was set; always empty for failed
    /// points).
    pub telemetry: Vec<Vec<IntervalRecord>>,
}

/// What happened at one sweep point.
#[derive(Debug)]
pub enum Outcome {
    /// The run completed and verified.
    Ok,
    /// The point failed after `attempts` attempts; the error is from the
    /// final attempt.
    Failed {
        /// The final attempt's error.
        error: ExperimentError,
        /// How many attempts were made (1 unless the failure was
        /// budget-class and a fault plan allowed reseeded retries).
        attempts: u32,
    },
}

impl Outcome {
    /// True for a completed point.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok)
    }
}

/// Sweep-level resilience knobs, applied on top of each machine's own
/// configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Deterministic fault plan injected into every run (`None` for a
    /// healthy sweep).
    pub faults: Option<FaultPlan>,
    /// Resource budget per run; an exceeded budget fails the point, not
    /// the figure.
    pub budget: RunBudget,
    /// Attempt ceiling per point. Retries happen only for budget-class
    /// failures under an active fault plan (each retry reseeds the fault
    /// stream); deterministic failures are never retried.
    pub max_attempts: u32,
    /// Worker count for the sweep's point executor: `1` (the default)
    /// runs inline on the calling thread, `0` means one worker per host
    /// hardware thread, `n > 1` spawns `n` OS workers. Output is
    /// byte-identical across all settings.
    pub jobs: usize,
    /// Global simulator-event budget for the *whole* sweep, accounted
    /// across all workers (the parallel analogue of the per-run
    /// [`RunBudget`]): once exceeded, remaining points fail with
    /// [`ExperimentError::Aborted`] instead of running. `None` is
    /// unlimited. Which points are cut depends on completion timing, so
    /// set this only as a safety valve, not in determinism-sensitive
    /// sweeps.
    pub total_events: Option<u64>,
    /// Online invariant checking applied to every run. A violated
    /// invariant fails the point (never retried — the checkers are
    /// deterministic) without failing the figure.
    pub check: CheckMode,
    /// Per-point wall-clock deadline, enforced by the executor's
    /// watchdog: an overdue point is cancelled (cooperatively — the
    /// simulation thread is never killed) and fails typed as
    /// [`ExperimentError::Deadline`]. `None` (the default) never
    /// deadlines. A scheduling knob: it does not enter the sweep's
    /// journal fingerprint, and deadline failures are never journaled,
    /// so a resume with a longer deadline re-runs exactly the points
    /// that timed out.
    pub deadline: Option<Duration>,
    /// Pause schedule between reseeded retries of budget-class failures
    /// (deterministic capped exponential, jittered per point seed).
    /// [`Backoff::NONE`] (the default) retries immediately.
    pub backoff: Backoff,
    /// Streaming interval telemetry applied to every run. `None` (the
    /// default) collects nothing. Telemetry is outcome-affecting for
    /// journaling purposes — the records ride in the journal — so it
    /// enters the sweep fingerprint, unlike the scheduling knobs.
    pub telemetry: Option<TelemetryConfig>,
    /// Which engine drives every run: sequential (the default) or
    /// optimistic with a worker budget. Results are bit-identical across
    /// engines, but the knob still enters the sweep fingerprint so a
    /// resumed journal records which engine produced its points.
    pub engine: EngineMode,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            faults: None,
            budget: RunBudget::UNLIMITED,
            max_attempts: 3,
            jobs: 1,
            total_events: None,
            check: CheckMode::Off,
            deadline: None,
            backoff: Backoff::NONE,
            telemetry: None,
            engine: EngineMode::Sequential,
        }
    }
}

impl SweepConfig {
    /// A default-resilience config that runs points on `jobs` workers.
    pub fn parallel(jobs: usize) -> Self {
        SweepConfig {
            jobs,
            ..SweepConfig::default()
        }
    }
}

/// The fault seed used for attempt `attempt` (1-based) of a point whose
/// plan is seeded with `base`: attempt 1 keeps the plan's own seed, and
/// every later attempt derives a fresh, decorrelated seed. Pure — the
/// serial and parallel paths share it, and retries are reproducible from
/// `(base, attempt)` alone.
pub fn retry_seed(base: u64, attempt: u32) -> u64 {
    if attempt <= 1 {
        base
    } else {
        // `FaultPlan::reseeded` holds the canonical derivation; routing
        // through it keeps the two in lockstep.
        FaultPlan::quiet(base).reseeded(u64::from(attempt)).seed
    }
}

/// Extracts a figure's plotted metric from run metrics.
pub fn extract(metric: Metric, m: &RunMetrics) -> f64 {
    match metric {
        Metric::Latency => m.latency_us,
        Metric::Contention => m.contention_us,
        Metric::ExecTime => m.exec_us,
        Metric::SimSpeed => m.wall.as_secs_f64() * 1e3,
        Metric::Events => m.events as f64,
    }
}

/// Runs the full processor sweep for one figure with default resilience
/// settings (no faults, no budget). Never fails as a whole: each point
/// carries its own [`Outcome`].
pub fn run_figure(spec: &FigureSpec, size: SizeClass, procs: &[usize], seed: u64) -> FigureData {
    run_figure_with(spec, size, procs, seed, SweepConfig::default())
}

/// Runs the sweep under explicit resilience settings: optional fault
/// injection, per-run budgets, bounded reseeded retries for budget-class
/// failures, and a worker pool sized by [`SweepConfig::jobs`].
pub fn run_figure_with(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: SweepConfig,
) -> FigureData {
    run_figure_observed(spec, size, procs, seed, sweep, |_| {})
}

/// [`run_figure_with`], streaming executor progress events (queue /
/// start / finish, per-point wall time and fault counts) to `observe` on
/// the calling thread — the hook the `figures` CLI uses for live timing.
///
/// Points are submitted series-major (every processor count of the first
/// machine, then the second, …), exactly the serial iteration order, and
/// results are reassembled by submission index, so the returned
/// [`FigureData`] does not depend on scheduling.
pub fn run_figure_observed(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: SweepConfig,
    observe: impl FnMut(&ExecEvent),
) -> FigureData {
    run_figure_inner(spec, size, procs, seed, sweep, None, observe)
}

/// [`run_figure_observed`] under a durable [`SweepJournal`]: points the
/// journal already holds are replayed without simulating (and without
/// entering the executor, so the observer sees only fresh points), and
/// every freshly completed point is appended to the journal before its
/// result is assembled. Kill this at any moment and re-run with a
/// resumed journal: the final [`FigureData`] is byte-identical to an
/// uninterrupted sweep.
///
/// Points that never completed an attempt cycle — cancelled by the
/// shared event budget, overrun by the deadline watchdog, or lost to
/// the crash itself — are *not* journaled, so a resume re-runs them.
pub fn run_figure_journaled(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: SweepConfig,
    journal: &SweepJournal,
    observe: impl FnMut(&ExecEvent),
) -> FigureData {
    run_figure_inner(spec, size, procs, seed, sweep, Some(journal), observe)
}

/// What one shard worker's pass over its points amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Points the shard contract assigns to this worker.
    pub owned: usize,
    /// Owned points replayed from the journal without simulating.
    pub replayed: usize,
    /// Owned points simulated (and journaled) by this pass.
    pub fresh: usize,
    /// Owned points whose verdict — replayed or fresh — is a failure,
    /// including job-level casualties that never reached the journal.
    pub failed: usize,
}

/// Runs only the points shard `shard` owns (see
/// [`crate::shard::ShardSpec::owns`]) through the journaled sweep path:
/// one worker process's slice of a fleet-wide figure sweep.
///
/// No [`FigureData`] is assembled — a shard's output *is* its journal,
/// which [`crate::shard::merge_shards`] later reassembles byte-identically
/// to a serial run. Kill this worker at any moment and re-run it with a
/// resumed journal: completed points replay, the rest re-run, and the
/// shard converges on the same records.
#[allow(clippy::too_many_arguments)] // mirrors run_figure_journaled + the shard
pub fn run_figure_shard(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: SweepConfig,
    shard: crate::shard::ShardSpec,
    journal: &SweepJournal,
    observe: impl FnMut(&ExecEvent),
) -> ShardRunReport {
    let mut owned = 0usize;
    let mut replayed = 0usize;
    let mut failed = 0usize;
    let mut points = Vec::new();
    for (i, (machine, exp)) in grid(spec, size, procs, seed).into_iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        owned += 1;
        match journal.lookup(machine, exp.procs) {
            Some((outcome, _, _)) => {
                replayed += 1;
                if !outcome.is_ok() {
                    failed += 1;
                }
            }
            None => points.push((machine, exp)),
        }
    }
    let fresh = points.len();
    let report = execute(
        exec_config(sweep, seed),
        points,
        |ctx, (machine, exp)| journaled_point(Some(journal), sweep, machine, &exp, Some(ctx)),
        observe,
    );
    for slot in &report.results {
        match slot {
            Ok((outcome, _, _)) if outcome.is_ok() => {}
            // A failed point or a job-level casualty (cancelled,
            // deadlined, panicked) — the latter never reached the
            // journal and will re-run on the next resume.
            _ => failed += 1,
        }
    }
    ShardRunReport {
        owned,
        replayed,
        fresh,
        failed,
    }
}

/// The sweep's full point grid in series-major (= serial iteration)
/// order: every processor count of the first machine, then the second,
/// …. The enumeration index of this order is the *point index* the
/// shard contract ([`crate::shard::ShardSpec::owns`]) partitions.
fn grid(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
) -> Vec<(Machine, Experiment)> {
    spec.machines
        .iter()
        .flat_map(|&machine| {
            procs.iter().map(move |&p| {
                (
                    machine,
                    Experiment {
                        app: spec.app,
                        size,
                        net: spec.net,
                        machine,
                        procs: p,
                        seed,
                    },
                )
            })
        })
        .collect()
}

/// The executor configuration shared by the full and sharded sweep
/// paths.
fn exec_config(sweep: SweepConfig, seed: u64) -> ExecConfig {
    ExecConfig {
        jobs: sweep.jobs,
        seed,
        deadline: sweep.deadline,
        cost_budget: sweep
            .total_events
            .map_or(CostBudget::UNLIMITED, CostBudget::units),
        ..ExecConfig::default()
    }
}

/// Runs one submitted point on a worker and makes it durable: the
/// journal append (an atomic whole-file commit) happens before the
/// result becomes visible to the caller, so a crash after this function
/// loses nothing.
fn journaled_point(
    journal: Option<&SweepJournal>,
    sweep: SweepConfig,
    machine: Machine,
    exp: &Experiment,
    ctx: Option<&JobCtx<'_>>,
) -> JobOutput<(Outcome, Option<RunMetrics>, Vec<IntervalRecord>)> {
    let (outcome, m, telemetry) = run_point(exp, machine, sweep, ctx);
    // A mid-run cancellation (deadline watchdog, batch cancel) is not a
    // verdict on the point — the executor discards the result anyway —
    // so it must never reach the journal: a journaled "failure" from an
    // aborted run would poison every resume with uncommitted history.
    let cancelled = matches!(
        &outcome,
        Outcome::Failed {
            error: ExperimentError::Run(RunError::Cancelled { .. }),
            ..
        }
    );
    if let Some(j) = journal {
        if !cancelled {
            j.record(machine, exp.procs, &outcome, m.as_ref(), &telemetry);
        }
    }
    let (cost, faults) = m.as_ref().map_or((0, 0), |m| (m.events, m.faults_injected));
    JobOutput {
        value: (outcome, m, telemetry),
        cost,
        faults,
    }
}

fn run_figure_inner(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: SweepConfig,
    journal: Option<&SweepJournal>,
    observe: impl FnMut(&ExecEvent),
) -> FigureData {
    // Series-major order, minus already-journaled points: submission
    // indices — and thus job seeds and results — stay deterministic for
    // a fixed replay set.
    let points: Vec<(Machine, Experiment)> = grid(spec, size, procs, seed)
        .into_iter()
        .filter(|&(machine, ref exp)| {
            journal.is_none_or(|j| j.lookup(machine, exp.procs).is_none())
        })
        .collect();
    let report = execute(
        exec_config(sweep, seed),
        points,
        |ctx, (machine, exp)| journaled_point(journal, sweep, machine, &exp, Some(ctx)),
        observe,
    );

    let mut slots = report.results.into_iter();
    let mut series = Vec::with_capacity(spec.machines.len());
    for &machine in spec.machines {
        let mut values = Vec::with_capacity(procs.len());
        let mut metrics = Vec::with_capacity(procs.len());
        let mut outcomes = Vec::with_capacity(procs.len());
        let mut telemetry = Vec::with_capacity(procs.len());
        for &p in procs {
            let (outcome, m, intervals) = match journal.and_then(|j| j.lookup(machine, p)) {
                // Replayed from the journal: this point never entered
                // the executor, so it consumes no result slot.
                Some(replayed) => replayed,
                None => match slots
                    .next()
                    .expect("one result slot per non-journaled point")
                {
                    Ok(point) => point,
                    // A job-level failure (panic past the experiment
                    // fence, a point cancelled by the shared budget, or
                    // a deadline overrun) becomes a FAILED cell like any
                    // other; attempts = 0 records that the simulation
                    // never completed an attempt cycle.
                    Err(e) => (
                        Outcome::Failed {
                            error: e.into(),
                            attempts: 0,
                        },
                        None,
                        Vec::new(),
                    ),
                },
            };
            values.push(m.as_ref().map_or(f64::NAN, |m| extract(spec.metric, m)));
            metrics.push(m);
            outcomes.push(outcome);
            telemetry.push(intervals);
        }
        series.push(Series {
            machine,
            values,
            metrics,
            outcomes,
            telemetry,
        });
    }
    FigureData {
        spec: *spec,
        procs: procs.to_vec(),
        series,
    }
}

/// Runs one sweep point with bounded retry. A retry is worthwhile only
/// when the failure is budget-class *and* a fault plan is active — a
/// reseeded fault stream changes the run; without faults the simulation
/// is deterministic and would fail identically. Shared verbatim by the
/// serial and parallel paths (the executor calls it from worker
/// threads), with [`retry_seed`] supplying the per-attempt fault seed.
/// The executor's `ctx`, when present, supplies a cancellation probe the
/// engine polls between events, so a deadline-expired point aborts
/// mid-run instead of finishing a forfeit simulation.
fn run_point(
    exp: &Experiment,
    machine: Machine,
    sweep: SweepConfig,
    ctx: Option<&JobCtx<'_>>,
) -> (Outcome, Option<RunMetrics>, Vec<IntervalRecord>) {
    let max_attempts = sweep.max_attempts.max(1);
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut config = machine.config();
        config.budget = sweep.budget;
        config.check = sweep.check;
        config.telemetry = sweep.telemetry;
        config.engine = sweep.engine;
        config.faults = sweep.faults.map(|f| FaultPlan {
            seed: retry_seed(f.seed, attempts),
            ..f
        });
        match exp.run_observed(config, ctx.map(JobCtx::cancel_probe)) {
            Ok((m, telemetry, _spec)) => return (Outcome::Ok, Some(m), telemetry),
            Err(e) if e.is_retryable() && sweep.faults.is_some() && attempts < max_attempts => {
                // Deterministic in (config, point seed, attempt): the
                // pause schedule never perturbs results, only pacing.
                let pause = sweep.backoff.delay(exp.seed, attempts);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                continue;
            }
            Err(e) => return (Outcome::Failed { error: e, attempts }, None, Vec::new()),
        }
    }
}

/// Renders a JSON string literal (quotes, backslashes, and control
/// characters escaped — the only classes our identifier-like names could
/// ever smuggle in).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Flattens an error rendering into one CSV cell: commas and newlines
/// become `;` so the row structure survives any failure message.
fn csv_sanitize(reason: &str) -> String {
    reason
        .chars()
        .map(|c| match c {
            ',' | '\n' | '\r' => ';',
            c => c,
        })
        .collect()
}

impl FigureData {
    /// Number of failed points across all series.
    pub fn failed_points(&self) -> usize {
        self.series
            .iter()
            .flat_map(|s| s.outcomes.iter())
            .filter(|o| !o.is_ok())
            .count()
    }

    /// Renders the figure as an aligned text table (the harness's
    /// stand-in for the paper's plots). Failed points render as `FAILED`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}: {} on {} — {}\n  expect: {}\n",
            self.spec.id, self.spec.app, self.spec.net, self.spec.metric, self.spec.expect
        ));
        out.push_str(&format!("  {:>6}", "procs"));
        for s in &self.series {
            out.push_str(&format!(" {:>14}", s.machine.to_string()));
        }
        out.push('\n');
        for (i, &p) in self.procs.iter().enumerate() {
            out.push_str(&format!("  {p:>6}"));
            for s in &self.series {
                let v = s.values[i];
                if v.is_finite() {
                    out.push_str(&format!(" {v:>14.2}"));
                } else {
                    out.push_str(&format!(" {:>14}", "FAILED"));
                }
            }
            out.push('\n');
        }
        let failed = self.failed_points();
        if failed > 0 {
            out.push_str(&format!("  ({failed} point(s) FAILED)\n"));
        }
        out
    }

    /// Renders the figure as CSV
    /// (`figure,app,net,metric,procs,machine,value,reason`). Failed
    /// points emit the literal `FAILED` so downstream consumers fail
    /// loudly instead of silently plotting `NaN` as zero, and carry the
    /// failure's rendering in the `reason` column (empty for completed
    /// points) so salvaged partial figures stay machine-readable.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,app,net,metric,procs,machine,value,reason\n");
        for s in &self.series {
            for (i, &p) in self.procs.iter().enumerate() {
                let v = s.values[i];
                let cell = if v.is_finite() {
                    v.to_string()
                } else {
                    "FAILED".to_string()
                };
                let reason = match &s.outcomes[i] {
                    Outcome::Ok => String::new(),
                    Outcome::Failed { error, .. } => csv_sanitize(&error.to_string()),
                };
                out.push_str(&format!(
                    "{},{},{},{:?},{},{},{},{}\n",
                    self.spec.id,
                    self.spec.app,
                    self.spec.net,
                    self.spec.metric,
                    p,
                    s.machine,
                    cell,
                    reason
                ));
            }
        }
        out
    }

    /// Renders the figure's interval telemetry as JSONL (schema `"v":1`):
    /// per point, in series-major order, one `"kind":"interval"` line per
    /// non-empty sim-time bucket followed by one `"kind":"summary"` line.
    /// Every field is simulation-deterministic and fields render in a
    /// fixed order, so the output is byte-identical across `--jobs`
    /// settings, journaled resume, and shard merges of the same sweep.
    ///
    /// Empty unless the sweep ran with [`SweepConfig::telemetry`] set
    /// (failed points still contribute their summary line).
    pub fn to_telemetry_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            for (i, &p) in self.procs.iter().enumerate() {
                let point = format!(
                    "\"figure\":{},\"app\":{},\"net\":{},\"machine\":{},\"procs\":{p}",
                    json_str(self.spec.id),
                    json_str(&self.spec.app.to_string()),
                    json_str(&self.spec.net.to_string()),
                    json_str(&s.machine.to_string()),
                );
                let intervals = &s.telemetry[i];
                if intervals.is_empty() && s.outcomes[i].is_ok() {
                    // Telemetry was off for this sweep: no lines at all.
                    continue;
                }
                for r in intervals {
                    out.push_str(&format!(
                        "{{\"v\":1,\"kind\":\"interval\",{point},\"i\":{},\"t0_ns\":{},\"t1_ns\":{},\"events\":{},\"queue\":{},\"busy_ns\":{},\"mem_ns\":{},\"comm_ns\":{},\"sync_ns\":{},\"cache_hits\":{},\"cache_misses\":{},\"faults\":{}}}\n",
                        r.index,
                        r.t0_ns,
                        r.t1_ns,
                        r.events,
                        r.queue_depth,
                        r.busy_ns,
                        r.mem_ns,
                        r.comm_ns,
                        r.sync_ns,
                        r.cache_hits,
                        r.cache_misses,
                        r.faults,
                    ));
                }
                let events: u64 = intervals.iter().map(|r| r.events).sum();
                let peak_queue = intervals.iter().map(|r| r.queue_depth).max().unwrap_or(0);
                let (exec_us, outcome) = match (&s.outcomes[i], &s.metrics[i]) {
                    (Outcome::Ok, Some(m)) => (m.exec_us.to_string(), "ok"),
                    _ => ("null".to_string(), "failed"),
                };
                out.push_str(&format!(
                    "{{\"v\":1,\"kind\":\"summary\",{point},\"intervals\":{},\"events\":{events},\"exec_us\":{exec_us},\"peak_queue\":{peak_queue},\"outcome\":\"{outcome}\"}}\n",
                    intervals.len(),
                ));
            }
        }
        out
    }

    /// The series for `machine`, if present.
    pub fn series_for(&self, machine: Machine) -> Option<&Series> {
        self.series.iter().find(|s| s.machine == machine)
    }

    /// Renders the figure as an ASCII chart (the closest a terminal gets
    /// to the paper's plots): y is the metric on a linear scale from zero
    /// to the maximum observed value, x is the processor sweep, one glyph
    /// per series. Failed points show as `?` on the baseline.
    ///
    /// Intended for eyeballing curve *shapes*; exact values are in
    /// [`FigureData::render_table`].
    pub fn render_chart(&self, height: usize) -> String {
        const GLYPHS: [char; 5] = ['T', 'L', 'C', 'P', 'G'];
        let height = height.max(4);
        let max = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        let mut out = String::new();
        out.push_str(&format!(
            "{}: {} on {} — {} (0..{max:.0})\n",
            self.spec.id, self.spec.app, self.spec.net, self.spec.metric
        ));
        if max <= 0.0 {
            out.push_str("  (all values zero)\n");
            return out;
        }
        // Column per sweep point, 6 chars wide.
        let col_w = 7;
        let mut grid = vec![vec![' '; self.procs.len() * col_w]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (pi, &v) in s.values.iter().enumerate() {
                let c = pi * col_w + col_w / 2;
                if !v.is_finite() {
                    // Failed point: a question mark on the baseline.
                    grid[height - 1][c] = '?';
                    continue;
                }
                let row = ((v / max) * (height - 1) as f64).round() as usize;
                let r = height - 1 - row.min(height - 1);
                // Overlapping points show the later series' glyph with a
                // '*' marker to flag the collision.
                grid[r][c] = if grid[r][c] == ' ' { glyph } else { '*' };
            }
        }
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(self.procs.len() * col_w));
        out.push('\n');
        out.push_str("   ");
        for &p in &self.procs {
            out.push_str(&format!("{p:^col_w$}"));
        }
        out.push('\n');
        out.push_str("  key:");
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!(" {}={}", GLYPHS[si % GLYPHS.len()], s.machine));
        }
        out.push_str("  (*=overlap, ?=failed)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::Net;
    use spasm_apps::AppId;

    #[test]
    fn small_sweep_produces_aligned_data() {
        let spec = figures::by_id("F1").unwrap();
        let data = run_figure(spec, SizeClass::Test, &[2, 4], 5);
        assert_eq!(data.procs, vec![2, 4]);
        assert_eq!(data.series.len(), 3);
        assert_eq!(data.failed_points(), 0);
        for s in &data.series {
            assert_eq!(s.values.len(), 2);
            assert_eq!(s.metrics.len(), 2);
            assert_eq!(s.outcomes.len(), 2);
            assert!(s.values.iter().all(|v| v.is_finite()));
            assert!(s.metrics.iter().all(|m| m.is_some()));
            assert!(s.outcomes.iter().all(|o| o.is_ok()));
        }
    }

    #[test]
    fn table_and_csv_render() {
        let spec = figures::by_id("F12").unwrap();
        let data = run_figure(spec, SizeClass::Test, &[2], 5);
        let table = data.render_table();
        assert!(table.contains("F12"));
        assert!(table.contains("target"));
        assert!(!table.contains("FAILED"));
        let csv = data.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3); // header + 3 series x 1 p
        assert!(csv.contains("F12,ep,full"));
    }

    #[test]
    fn chart_renders_axes_key_and_points() {
        let spec = figures::by_id("F12").unwrap();
        let data = run_figure(spec, SizeClass::Test, &[2, 4], 5);
        let chart = data.render_chart(8);
        assert!(chart.contains("F12"));
        assert!(chart.contains("T=target"));
        assert!(chart.contains("L=logp"));
        // Axis row lists the sweep points.
        assert!(chart.contains('2') && chart.contains('4'));
        // Max point must sit on the top row of the plot area.
        let plot_rows: Vec<&str> = chart.lines().filter(|l| l.starts_with("  |")).collect();
        assert_eq!(plot_rows.len(), 8);
        assert!(
            plot_rows[0].chars().any(|c| c != ' ' && c != '|'),
            "top row should carry the maximum: {chart}"
        );
    }

    #[test]
    fn chart_handles_all_zero_series() {
        let spec = figures::FigureSpec {
            id: "Z",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::Contention,
            machines: &[Machine::Pram],
            expect: "zeros",
        };
        let data = run_figure(&spec, SizeClass::Test, &[2], 1);
        assert!(data.render_chart(6).contains("all values zero"));
    }

    #[test]
    fn series_lookup() {
        let spec = figures::FigureSpec {
            id: "T",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::ExecTime,
            machines: &[Machine::Pram, Machine::Target],
            expect: "test",
        };
        let data = run_figure(&spec, SizeClass::Test, &[2], 1);
        assert!(data.series_for(Machine::Pram).is_some());
        assert!(data.series_for(Machine::LogP).is_none());
        // PRAM is the ideal-time floor.
        let pram = data.series_for(Machine::Pram).unwrap().values[0];
        let target = data.series_for(Machine::Target).unwrap().values[0];
        assert!(pram <= target);
    }

    #[test]
    fn invalid_point_fails_without_dropping_healthy_points() {
        // p = 3 is not a power of two: that single point must fail with a
        // Config error while 2 and 4 survive in every series.
        let spec = figures::FigureSpec {
            id: "R",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::ExecTime,
            machines: &[Machine::Pram, Machine::Target],
            expect: "one failed column",
        };
        let data = run_figure(&spec, SizeClass::Test, &[2, 3, 4], 1);
        assert_eq!(data.failed_points(), 2); // one per series
        for s in &data.series {
            assert!(s.values[0].is_finite());
            assert!(s.values[1].is_nan());
            assert!(s.values[2].is_finite());
            match &s.outcomes[1] {
                Outcome::Failed { error, attempts } => {
                    assert!(matches!(error, ExperimentError::Config(_)), "{error}");
                    assert_eq!(*attempts, 1, "config errors must not be retried");
                }
                other => panic!("expected Failed outcome, got {other:?}"),
            }
        }
        let table = data.render_table();
        assert!(table.contains("FAILED"), "{table}");
        let csv = data.to_csv();
        assert!(csv.contains(",3,pram,FAILED"), "{csv}");
        let chart = data.render_chart(6);
        assert!(chart.contains('?'), "{chart}");
    }

    #[test]
    fn budget_failures_retry_reseeded_then_fail_typed() {
        // An absurdly small event budget under an active fault plan: every
        // attempt exhausts the budget, so the point fails after exactly
        // `max_attempts` reseeded tries.
        let spec = figures::FigureSpec {
            id: "B",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::ExecTime,
            machines: &[Machine::Target],
            expect: "budget exceeded",
        };
        let sweep = SweepConfig {
            faults: Some(FaultPlan::quiet(7)),
            budget: RunBudget::events(3),
            max_attempts: 2,
            ..SweepConfig::default()
        };
        let data = run_figure_with(&spec, SizeClass::Test, &[2], 1, sweep);
        match &data.series[0].outcomes[0] {
            Outcome::Failed { error, attempts } => {
                assert!(
                    matches!(
                        error,
                        ExperimentError::Run(spasm_machine::RunError::BudgetExceeded { .. })
                    ),
                    "{error}"
                );
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected Failed outcome, got {other:?}"),
        }
    }

    #[test]
    fn retry_seed_is_pure_and_matches_the_fault_plan_derivation() {
        // Attempt 1 is always the plan's own seed.
        assert_eq!(retry_seed(77, 1), 77);
        assert_eq!(retry_seed(77, 0), 77);
        // Later attempts reseed exactly like FaultPlan::reseeded.
        let plan = FaultPlan::adversarial(77);
        for attempt in 2..6u32 {
            assert_eq!(
                retry_seed(77, attempt),
                plan.reseeded(u64::from(attempt)).seed,
                "attempt {attempt}"
            );
        }
        // Pure and decorrelated across attempts.
        assert_eq!(retry_seed(3, 4), retry_seed(3, 4));
        assert_ne!(retry_seed(3, 2), retry_seed(3, 3));
        assert_ne!(retry_seed(3, 2), 3);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let spec = figures::by_id("F1").unwrap();
        let serial = run_figure_with(spec, SizeClass::Test, &[2, 4], 5, SweepConfig::default());
        let parallel = run_figure_with(spec, SizeClass::Test, &[2, 4], 5, SweepConfig::parallel(4));
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.render_table(), parallel.render_table());
        assert_eq!(serial.render_chart(10), parallel.render_chart(10));
        for (a, b) in serial.series.iter().zip(&parallel.series) {
            for (va, vb) in a.values.iter().zip(&b.values) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{}", a.machine);
            }
        }
    }

    #[test]
    fn parallel_sweep_reports_failed_points_like_serial() {
        // p = 3 fails in both paths, in the same cell, with the same
        // typed error.
        let spec = figures::FigureSpec {
            id: "RP",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::ExecTime,
            machines: &[Machine::Pram, Machine::Target],
            expect: "one failed column, both paths",
        };
        let serial = run_figure(&spec, SizeClass::Test, &[2, 3, 4], 1);
        let parallel = run_figure_with(
            &spec,
            SizeClass::Test,
            &[2, 3, 4],
            1,
            SweepConfig::parallel(3),
        );
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(parallel.failed_points(), 2);
    }

    #[test]
    fn sweep_total_event_budget_aborts_the_tail() {
        // A one-event global budget: the first point to finish trips it
        // and later points abort before running. Serial pool keeps the
        // cut deterministic.
        let spec = figures::by_id("F12").unwrap();
        let sweep = SweepConfig {
            total_events: Some(1),
            ..SweepConfig::default()
        };
        let data = run_figure_with(spec, SizeClass::Test, &[2, 4], 5, sweep);
        assert!(data.series[0].outcomes[0].is_ok(), "first point still runs");
        match &data.series[2].outcomes[1] {
            Outcome::Failed { error, attempts } => {
                assert!(
                    matches!(error, ExperimentError::Aborted(_)),
                    "expected Aborted, got {error}"
                );
                assert_eq!(*attempts, 0, "cancelled points never attempt");
            }
            other => panic!("expected Failed outcome, got {other:?}"),
        }
    }

    #[test]
    fn observer_sees_every_point_of_a_parallel_sweep() {
        use std::cell::RefCell;
        let spec = figures::by_id("F12").unwrap();
        let finished = RefCell::new(0usize);
        let data = run_figure_observed(
            spec,
            SizeClass::Test,
            &[2, 4],
            5,
            SweepConfig::parallel(2),
            |ev| {
                if matches!(ev, spasm_exec::ExecEvent::Finished { .. }) {
                    *finished.borrow_mut() += 1;
                }
            },
        );
        assert_eq!(*finished.borrow(), data.series.len() * data.procs.len());
    }

    #[test]
    fn journaled_sweep_matches_plain_and_replays_without_simulating() {
        use crate::journal::SweepJournal;
        let spec = figures::by_id("F1").unwrap();
        let sweep = SweepConfig::default();
        let plain = run_figure_with(spec, SizeClass::Test, &[2, 4], 5, sweep);

        let dir = std::env::temp_dir().join("spasm-sweep-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-f1.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // First journaled run: identical output, every point recorded.
        let j = SweepJournal::create(&path, spec, SizeClass::Test, &[2, 4], 5, &sweep).unwrap();
        let first = run_figure_journaled(spec, SizeClass::Test, &[2, 4], 5, sweep, &j, |_| {});
        assert!(j.io_error().is_none());
        assert_eq!(first.to_csv(), plain.to_csv());
        drop(j);

        // Resume over the complete journal: zero fresh simulations, and
        // still byte-identical tables and CSV.
        let r = SweepJournal::resume(&path, spec, SizeClass::Test, &[2, 4], 5, &sweep).unwrap();
        assert_eq!(r.replayed(), spec.machines.len() * 2);
        let mut fresh = 0usize;
        let resumed = run_figure_journaled(spec, SizeClass::Test, &[2, 4], 5, sweep, &r, |ev| {
            if matches!(ev, ExecEvent::Finished { .. }) {
                fresh += 1;
            }
        });
        assert_eq!(fresh, 0, "a complete journal must replay every point");
        assert_eq!(resumed.to_csv(), plain.to_csv());
        assert_eq!(resumed.render_table(), plain.render_table());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_reason_column_carries_the_failure_sanitized() {
        let spec = figures::FigureSpec {
            id: "RC",
            app: AppId::Ep,
            net: Net::Full,
            metric: Metric::ExecTime,
            machines: &[Machine::Pram],
            expect: "reason column",
        };
        let data = run_figure(&spec, SizeClass::Test, &[2, 3], 1);
        let csv = data.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "figure,app,net,metric,procs,machine,value,reason"
        );
        let ok_row = lines.next().unwrap();
        assert!(
            ok_row.ends_with(','),
            "ok rows carry an empty reason: {ok_row}"
        );
        let failed_row = lines.next().unwrap();
        assert!(failed_row.contains(",3,pram,FAILED,"), "{failed_row}");
        assert!(failed_row.contains("invalid configuration"), "{failed_row}");
        // Rows stay 8 columns even though error renderings may contain
        // commas (sanitized to ';').
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 8, "{line}");
        }
        assert_eq!(csv_sanitize("a,b\nc"), "a;b;c");
    }

    #[test]
    fn faulted_sweep_is_deterministic_per_fault_seed() {
        let spec = figures::by_id("F12").unwrap();
        let sweep = SweepConfig {
            faults: Some(FaultPlan::adversarial(11)),
            ..SweepConfig::default()
        };
        let a = run_figure_with(spec, SizeClass::Test, &[2], 5, sweep);
        let b = run_figure_with(spec, SizeClass::Test, &[2], 5, sweep);
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(
                sa.values[0].to_bits(),
                sb.values[0].to_bits(),
                "{}",
                sa.machine
            );
        }
    }
}
