//! Crash-safe sweep journaling: resume a killed figure sweep.
//!
//! A [`SweepJournal`] wraps a durable `spasm-journal` file with one
//! record per *completed* sweep point — the point's identity (machine,
//! processor count), its [`Outcome`] and, for successful points, the
//! full [`RunMetrics`]. The file's header carries a fingerprint of
//! everything that determines point outcomes (figure spec, size, procs
//! grid, seed, machine configurations, resilience knobs), so a resume
//! against a journal written under a different configuration fails with
//! a typed error instead of silently mixing incompatible results.
//!
//! Only completed *attempt cycles* are journaled: a point that ran to a
//! verdict (`Ok`, or `Failed` with `attempts >= 1`) is durable, while
//! job-level casualties — points cancelled by a shared budget, killed
//! by the deadline watchdog, or lost to a SIGKILL — are not, so a
//! resumed sweep re-runs exactly those and converges on the same
//! [`crate::sweep::FigureData`] an uninterrupted run produces,
//! byte-for-byte (failure reasons replay verbatim via
//! [`ExperimentError::Replayed`]).

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spasm_apps::SizeClass;
use spasm_journal::{DirSyncWarning, Fingerprint, Journal, JournalError, RealVfs, Vfs};
use spasm_machine::IntervalRecord;

use crate::figures::FigureSpec;
use crate::sweep::{Outcome, SweepConfig};
use crate::{ExperimentError, Machine, RunMetrics};

/// Why a journal could not be created, opened, or replayed.
#[derive(Debug)]
pub enum ResumeError {
    /// The journal file itself is unusable: I/O failure, not a journal,
    /// interior corruption, or a configuration-fingerprint mismatch.
    Journal(JournalError),
    /// A record passed its checksum but does not decode as a sweep
    /// point — the journal was written by something else entirely.
    BadRecord {
        /// Zero-based index of the undecodable record.
        index: usize,
        /// What failed while decoding it.
        detail: String,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Journal(e) => e.fmt(f),
            ResumeError::BadRecord { index, detail } => {
                write!(
                    f,
                    "journal record {index} does not decode as a sweep point: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<JournalError> for ResumeError {
    fn from(e: JournalError) -> Self {
        ResumeError::Journal(e)
    }
}

impl ResumeError {
    /// True when the journal exists and is healthy but was written under
    /// a different sweep configuration.
    pub fn is_fingerprint_mismatch(&self) -> bool {
        matches!(
            self,
            ResumeError::Journal(JournalError::FingerprintMismatch { .. })
        )
    }
}

/// Fingerprint of everything that determines a sweep's point outcomes.
///
/// Scheduling knobs are deliberately excluded — `jobs`, `deadline`, and
/// `backoff` change *when* points run, not what they compute, and a
/// sweep may legitimately be resumed with more workers or a longer
/// deadline than the run that was killed. `total_events` *is* included:
/// its cuts depend on completion timing, so resuming under a different
/// global budget could not reproduce the original run either way.
pub fn sweep_fingerprint(
    spec: &FigureSpec,
    size: SizeClass,
    procs: &[usize],
    seed: u64,
    sweep: &SweepConfig,
) -> u64 {
    let mut fp = Fingerprint::new();
    // v2: records carry interval telemetry and the fingerprint absorbs
    // the telemetry knob plus dynamic-app definitions; v1 journals are
    // refused typed rather than mis-decoded.
    fp.absorb_str("spasm-sweep-v2");
    // The shard contract rides in the fingerprint: per-shard journals
    // and a serial journal of the same sweep interoperate, while shards
    // cut under a different point→shard mapping are refused by
    // `shard::merge_shards` instead of silently mis-merged.
    fp.absorb_str(crate::shard::CONTRACT);
    fp.absorb_str(spec.id);
    fp.absorb_str(&spec.app.to_string());
    // A dynamically registered app (a compiled scenario) is identified
    // by its canonical definition text, not just its name: journals
    // written under one scenario file refuse to resume under an edited
    // one even when the name is reused. Built-ins contribute a fixed
    // empty detail.
    fp.absorb_str(spec.app.fingerprint_detail().unwrap_or(""));
    fp.absorb_str(&spec.net.to_string());
    fp.absorb_str(&format!("{:?}", spec.metric));
    fp.absorb_u64(spec.machines.len() as u64);
    for &m in spec.machines {
        fp.absorb_str(&m.to_string());
        m.config().absorb_fingerprint(&mut fp);
    }
    fp.absorb_str(&format!("{size:?}"));
    fp.absorb_u64(procs.len() as u64);
    for &p in procs {
        fp.absorb_u64(p as u64);
    }
    fp.absorb_u64(seed);
    fp.absorb_str(&format!("{:?}", sweep.faults));
    fp.absorb_str(&format!("{:?}", sweep.budget));
    fp.absorb_u64(u64::from(sweep.max_attempts));
    fp.absorb_str(&format!("{:?}", sweep.check));
    fp.absorb_str(&format!("{:?}", sweep.total_events));
    fp.absorb_str(&format!("{:?}", sweep.telemetry));
    // The engine knob never changes results — the optimistic engine is
    // certified bit-identical — but it goes in anyway so a journal
    // records which engine produced its points: if an equivalence bug
    // ever slips in, resumes cannot silently mix engines. (The per-series
    // machine configs above absorb `Machine::config()` defaults, which
    // are always Sequential; only this line sees the sweep's choice.)
    fp.absorb_str(&format!("{:?}", sweep.engine));
    fp.finish()
}

/// A decoded journal record, held for replay (also the unit
/// `shard::merge_shards` reassembles figures from).
#[derive(Debug)]
pub(crate) enum ReplayPoint {
    Ok(RunMetrics, Vec<IntervalRecord>),
    Failed { reason: String, attempts: u32 },
}

/// A durable journal bound to one figure sweep, usable from worker
/// threads (appends serialize on an internal mutex; each append is a
/// full atomic rewrite, cheap next to a multi-second simulation).
#[derive(Debug)]
pub struct SweepJournal {
    inner: Mutex<Inner>,
    replay: HashMap<(Machine, usize), ReplayPoint>,
    repaired_bytes: usize,
}

#[derive(Debug)]
struct Inner {
    journal: Journal,
    /// First append failure, latched: the sweep keeps running on its
    /// in-memory results, but the caller can surface the lost
    /// durability.
    io_error: Option<JournalError>,
}

impl SweepJournal {
    /// Creates a fresh journal for this sweep. Refuses to clobber an
    /// existing file — resuming must be an explicit choice.
    pub fn create(
        path: impl AsRef<Path>,
        spec: &FigureSpec,
        size: SizeClass,
        procs: &[usize],
        seed: u64,
        sweep: &SweepConfig,
    ) -> Result<SweepJournal, ResumeError> {
        SweepJournal::create_with(Arc::new(RealVfs), path, spec, size, procs, seed, sweep)
    }

    /// [`SweepJournal::create`] on an explicit [`Vfs`] — the entry point
    /// the chaos harness drives with a fault-scripted filesystem.
    #[allow(clippy::too_many_arguments)] // mirrors create + the vfs
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        spec: &FigureSpec,
        size: SizeClass,
        procs: &[usize],
        seed: u64,
        sweep: &SweepConfig,
    ) -> Result<SweepJournal, ResumeError> {
        let fp = sweep_fingerprint(spec, size, procs, seed, sweep);
        let journal = Journal::create_with(vfs, path, fp)?;
        Ok(SweepJournal {
            inner: Mutex::new(Inner {
                journal,
                io_error: None,
            }),
            replay: HashMap::new(),
            repaired_bytes: 0,
        })
    }

    /// Opens an existing journal for resumption — validating its
    /// fingerprint against this sweep's configuration, repairing a torn
    /// tail, and loading every intact record for replay — or creates a
    /// fresh one if `path` does not exist (resuming nothing is a clean
    /// start, which makes retry loops idempotent).
    pub fn resume(
        path: impl AsRef<Path>,
        spec: &FigureSpec,
        size: SizeClass,
        procs: &[usize],
        seed: u64,
        sweep: &SweepConfig,
    ) -> Result<SweepJournal, ResumeError> {
        SweepJournal::resume_with(Arc::new(RealVfs), path, spec, size, procs, seed, sweep)
    }

    /// [`SweepJournal::resume`] on an explicit [`Vfs`] — the recovery
    /// entry point the chaos harness's crash-point oracle exercises.
    #[allow(clippy::too_many_arguments)] // mirrors resume + the vfs
    pub fn resume_with(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        spec: &FigureSpec,
        size: SizeClass,
        procs: &[usize],
        seed: u64,
        sweep: &SweepConfig,
    ) -> Result<SweepJournal, ResumeError> {
        let path = path.as_ref();
        if !vfs.exists(path) {
            return SweepJournal::create_with(vfs, path, spec, size, procs, seed, sweep);
        }
        let fp = sweep_fingerprint(spec, size, procs, seed, sweep);
        let (journal, recovery) = Journal::open_with(vfs, path, fp)?;
        let mut replay = HashMap::new();
        for (index, record) in recovery.records.iter().enumerate() {
            let (machine, procs, point) =
                decode_point(record).map_err(|detail| ResumeError::BadRecord { index, detail })?;
            replay.insert((machine, procs), point);
        }
        Ok(SweepJournal {
            inner: Mutex::new(Inner {
                journal,
                io_error: None,
            }),
            replay,
            repaired_bytes: recovery.truncated_bytes,
        })
    }

    /// Number of points loaded for replay.
    pub fn replayed(&self) -> usize {
        self.replay.len()
    }

    /// Bytes of torn tail dropped while opening (0 for a clean file).
    pub fn repaired_bytes(&self) -> usize {
        self.repaired_bytes
    }

    /// The first append failure, if any: results after it are correct in
    /// memory but will re-run on a future resume.
    pub fn io_error(&self) -> Option<String> {
        self.inner
            .lock()
            .expect("journal mutex poisoned: a journal append panicked")
            .io_error
            .as_ref()
            .map(|e| e.to_string())
    }

    /// Directory-sync failures accumulated over this journal's commits
    /// (see [`spasm_journal::DirSyncWarning`]): the appends landed, but
    /// their renames are not guaranteed to survive a power cut.
    pub fn dir_sync_warning(&self) -> Option<DirSyncWarning> {
        self.inner
            .lock()
            .expect("journal mutex poisoned: a journal append panicked")
            .journal
            .dir_sync_warning()
    }

    /// The journaled verdict for a point, if one exists. Failed points
    /// come back as [`ExperimentError::Replayed`] carrying the original
    /// error's rendering verbatim.
    pub(crate) fn lookup(
        &self,
        machine: Machine,
        procs: usize,
    ) -> Option<(Outcome, Option<RunMetrics>, Vec<IntervalRecord>)> {
        match self.replay.get(&(machine, procs))? {
            ReplayPoint::Ok(m, telemetry) => Some((Outcome::Ok, Some(*m), telemetry.clone())),
            ReplayPoint::Failed { reason, attempts } => Some((
                Outcome::Failed {
                    error: ExperimentError::Replayed(reason.clone()),
                    attempts: *attempts,
                },
                None,
                Vec::new(),
            )),
        }
    }

    /// Appends one completed point. Called from worker threads as points
    /// finish; an append failure is latched (see
    /// [`SweepJournal::io_error`]) rather than failing the sweep — the
    /// in-memory figure is still correct.
    pub(crate) fn record(
        &self,
        machine: Machine,
        procs: usize,
        outcome: &Outcome,
        metrics: Option<&RunMetrics>,
        telemetry: &[IntervalRecord],
    ) {
        let payload = encode_point(machine, procs, outcome, metrics, telemetry);
        let mut inner = self
            .inner
            .lock()
            .expect("journal mutex poisoned: a journal append panicked");
        if inner.io_error.is_some() {
            return;
        }
        if let Err(e) = inner.journal.append(&payload) {
            inner.io_error = Some(e);
        }
    }
}

// --- record codec -------------------------------------------------------
//
// Fixed-width little-endian fields and length-prefixed strings; the
// framing layer already guards integrity (CRC64) and atomicity, so the
// payload only needs to be self-describing enough to decode.

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    push_u64(buf, v.to_bits());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| format!("u64 field runs past byte {}", self.buf.len()))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = usize::try_from(self.u64()?).map_err(|_| "string length overflow".to_string())?;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| format!("{len}-byte string runs past the record"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|e| format!("string is not UTF-8: {e}"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes", self.buf.len() - self.pos))
        }
    }
}

const TAG_OK: u64 = 0;
const TAG_FAILED: u64 = 1;

fn encode_point(
    machine: Machine,
    procs: usize,
    outcome: &Outcome,
    metrics: Option<&RunMetrics>,
    telemetry: &[IntervalRecord],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(160 + telemetry.len() * 96);
    push_str(&mut buf, &machine.to_string());
    push_u64(&mut buf, procs as u64);
    match outcome {
        Outcome::Ok => {
            let m = metrics.expect("an Ok outcome always carries metrics");
            push_u64(&mut buf, TAG_OK);
            push_f64(&mut buf, m.exec_us);
            push_f64(&mut buf, m.latency_us);
            push_f64(&mut buf, m.contention_us);
            push_f64(&mut buf, m.sync_us);
            push_f64(&mut buf, m.dir_wait_us);
            push_u64(&mut buf, m.messages);
            push_u64(&mut buf, m.bytes);
            push_u64(&mut buf, m.events);
            push_f64(&mut buf, m.crossing_fraction);
            push_u64(&mut buf, m.cache_hits);
            push_u64(&mut buf, m.cache_misses);
            push_u64(&mut buf, m.faults_injected);
            push_u64(&mut buf, m.wall.as_nanos() as u64);
            // The point's interval telemetry rides in the same record,
            // so a replayed point reproduces its JSONL byte-for-byte.
            push_u64(&mut buf, telemetry.len() as u64);
            for r in telemetry {
                push_u64(&mut buf, r.index);
                push_u64(&mut buf, r.t0_ns);
                push_u64(&mut buf, r.t1_ns);
                push_u64(&mut buf, r.events);
                push_u64(&mut buf, r.queue_depth);
                push_u64(&mut buf, r.busy_ns);
                push_u64(&mut buf, r.mem_ns);
                push_u64(&mut buf, r.comm_ns);
                push_u64(&mut buf, r.sync_ns);
                push_u64(&mut buf, r.cache_hits);
                push_u64(&mut buf, r.cache_misses);
                push_u64(&mut buf, r.faults);
            }
        }
        Outcome::Failed { error, attempts } => {
            push_u64(&mut buf, TAG_FAILED);
            push_u64(&mut buf, u64::from(*attempts));
            push_str(&mut buf, &error.to_string());
        }
    }
    buf
}

pub(crate) fn decode_point(record: &[u8]) -> Result<(Machine, usize, ReplayPoint), String> {
    let mut c = Cursor {
        buf: record,
        pos: 0,
    };
    let name = c.str()?;
    let machine = Machine::from_name(&name).map_err(|e| e.to_string())?;
    let procs = usize::try_from(c.u64()?).map_err(|_| "procs overflows usize".to_string())?;
    let point = match c.u64()? {
        TAG_OK => {
            let metrics = RunMetrics {
                exec_us: c.f64()?,
                latency_us: c.f64()?,
                contention_us: c.f64()?,
                sync_us: c.f64()?,
                dir_wait_us: c.f64()?,
                messages: c.u64()?,
                bytes: c.u64()?,
                events: c.u64()?,
                crossing_fraction: c.f64()?,
                cache_hits: c.u64()?,
                cache_misses: c.u64()?,
                faults_injected: c.u64()?,
                wall: Duration::from_nanos(c.u64()?),
            };
            let count = usize::try_from(c.u64()?)
                .map_err(|_| "interval count overflows usize".to_string())?;
            // 12 u64 fields per interval; bound the claim against the
            // remaining bytes before allocating.
            if count > record.len() / 96 {
                return Err(format!("{count} intervals cannot fit the record"));
            }
            let mut telemetry = Vec::with_capacity(count);
            for _ in 0..count {
                telemetry.push(IntervalRecord {
                    index: c.u64()?,
                    t0_ns: c.u64()?,
                    t1_ns: c.u64()?,
                    events: c.u64()?,
                    queue_depth: c.u64()?,
                    busy_ns: c.u64()?,
                    mem_ns: c.u64()?,
                    comm_ns: c.u64()?,
                    sync_ns: c.u64()?,
                    cache_hits: c.u64()?,
                    cache_misses: c.u64()?,
                    faults: c.u64()?,
                });
            }
            ReplayPoint::Ok(metrics, telemetry)
        }
        TAG_FAILED => {
            let attempts = u32::try_from(c.u64()?).map_err(|_| "attempts overflow".to_string())?;
            let reason = c.str()?;
            ReplayPoint::Failed { reason, attempts }
        }
        tag => return Err(format!("unknown outcome tag {tag}")),
    };
    c.done()?;
    Ok((machine, procs, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spasm-core-journal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        let path = dir.join(format!("{}-{name}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_metrics() -> RunMetrics {
        RunMetrics {
            exec_us: 1.5,
            latency_us: 0.25,
            contention_us: 0.125,
            sync_us: 3.0,
            dir_wait_us: 0.0,
            messages: 42,
            bytes: 1024,
            events: 9001,
            crossing_fraction: 0.5,
            cache_hits: 7,
            cache_misses: 3,
            faults_injected: 1,
            wall: Duration::from_micros(1234),
        }
    }

    fn sample_telemetry() -> Vec<IntervalRecord> {
        vec![
            IntervalRecord {
                index: 0,
                t0_ns: 0,
                t1_ns: 100_000,
                events: 12,
                queue_depth: 3,
                busy_ns: 9_000,
                mem_ns: 600,
                comm_ns: 1_200,
                sync_ns: 0,
                cache_hits: 5,
                cache_misses: 2,
                faults: 0,
            },
            IntervalRecord {
                index: 3,
                t0_ns: 300_000,
                t1_ns: 400_000,
                events: 1,
                queue_depth: 0,
                busy_ns: 30,
                mem_ns: 0,
                comm_ns: 0,
                sync_ns: 90,
                cache_hits: 0,
                cache_misses: 1,
                faults: 1,
            },
        ]
    }

    #[test]
    fn point_codec_roundtrips_both_outcomes() {
        let m = sample_metrics();
        let telemetry = sample_telemetry();
        let ok = encode_point(Machine::CLogP, 8, &Outcome::Ok, Some(&m), &telemetry);
        let (machine, procs, point) = decode_point(&ok).unwrap();
        assert_eq!(machine, Machine::CLogP);
        assert_eq!(procs, 8);
        match point {
            ReplayPoint::Ok(got, got_telemetry) => {
                assert_eq!(got.exec_us.to_bits(), m.exec_us.to_bits());
                assert_eq!(got.messages, m.messages);
                assert_eq!(got.wall, m.wall);
                assert_eq!(got_telemetry, telemetry);
            }
            ReplayPoint::Failed { .. } => panic!("expected Ok"),
        }

        let failed = Outcome::Failed {
            error: ExperimentError::Config("3 is not a power of two".into()),
            attempts: 2,
        };
        let enc = encode_point(Machine::Pram, 3, &failed, None, &[]);
        let (machine, procs, point) = decode_point(&enc).unwrap();
        assert_eq!((machine, procs), (Machine::Pram, 3));
        match point {
            ReplayPoint::Failed { reason, attempts } => {
                assert_eq!(reason, "invalid configuration: 3 is not a power of two");
                assert_eq!(attempts, 2);
            }
            ReplayPoint::Ok(..) => panic!("expected Failed"),
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_point(&[]).is_err());
        // A valid record with trailing garbage must not decode.
        let mut enc = encode_point(
            Machine::Pram,
            2,
            &Outcome::Ok,
            Some(&sample_metrics()),
            &sample_telemetry(),
        );
        enc.push(0);
        assert!(decode_point(&enc).unwrap_err().contains("trailing"));
        // A truncated telemetry section must not decode either.
        let whole = encode_point(
            Machine::Pram,
            2,
            &Outcome::Ok,
            Some(&sample_metrics()),
            &sample_telemetry(),
        );
        assert!(decode_point(&whole[..whole.len() - 4]).is_err());
        // An absurd interval count is rejected before allocating.
        let mut counted =
            encode_point(Machine::Pram, 2, &Outcome::Ok, Some(&sample_metrics()), &[]);
        let tail = counted.len() - 8;
        counted[tail..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_point(&counted).unwrap_err().contains("intervals"));
        // An unknown machine name is named in the error.
        let mut bad = Vec::new();
        push_str(&mut bad, "bsp");
        push_u64(&mut bad, 2);
        push_u64(&mut bad, TAG_OK);
        assert!(decode_point(&bad).unwrap_err().contains("bsp"));
    }

    #[test]
    fn fingerprint_separates_every_outcome_affecting_knob() {
        let spec = figures::by_id("F1").unwrap();
        let base = sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 5, &SweepConfig::default());
        // Same inputs, same fingerprint.
        assert_eq!(
            base,
            sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 5, &SweepConfig::default())
        );
        // Each knob separates.
        let other_spec = figures::by_id("F2").unwrap();
        assert_ne!(
            base,
            sweep_fingerprint(
                other_spec,
                SizeClass::Test,
                &[2, 4],
                5,
                &SweepConfig::default()
            )
        );
        assert_ne!(
            base,
            sweep_fingerprint(spec, SizeClass::Small, &[2, 4], 5, &SweepConfig::default())
        );
        assert_ne!(
            base,
            sweep_fingerprint(
                spec,
                SizeClass::Test,
                &[2, 4, 8],
                5,
                &SweepConfig::default()
            )
        );
        assert_ne!(
            base,
            sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 6, &SweepConfig::default())
        );
        let budgeted = SweepConfig {
            total_events: Some(10),
            ..SweepConfig::default()
        };
        assert_ne!(
            base,
            sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 5, &budgeted)
        );
        // Telemetry changes what every record carries, so it separates.
        let instrumented = SweepConfig {
            telemetry: Some(spasm_machine::TelemetryConfig::every_us(100)),
            ..SweepConfig::default()
        };
        assert_ne!(
            base,
            sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 5, &instrumented)
        );
        // The engine knob separates even though results are identical:
        // the journal records which engine produced its points.
        let optimistic = SweepConfig {
            engine: spasm_machine::EngineMode::Optimistic { workers: 4 },
            ..SweepConfig::default()
        };
        assert_ne!(
            base,
            sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 5, &optimistic)
        );
        // Scheduling knobs do NOT separate: resume may change them.
        let rescheduled = SweepConfig {
            jobs: 7,
            deadline: Some(Duration::from_secs(30)),
            backoff: spasm_exec::Backoff::exponential(
                Duration::from_millis(1),
                Duration::from_millis(8),
            ),
            ..SweepConfig::default()
        };
        assert_eq!(
            base,
            sweep_fingerprint(spec, SizeClass::Test, &[2, 4], 5, &rescheduled)
        );
    }

    #[test]
    fn create_refuses_existing_and_resume_replays() {
        let spec = figures::by_id("F12").unwrap();
        let sweep = SweepConfig::default();
        let path = scratch("create-resume");
        let j = SweepJournal::create(&path, spec, SizeClass::Test, &[2], 5, &sweep).unwrap();
        j.record(
            Machine::Pram,
            2,
            &Outcome::Ok,
            Some(&sample_metrics()),
            &sample_telemetry(),
        );
        j.record(
            Machine::Target,
            2,
            &Outcome::Failed {
                error: ExperimentError::Verify("wrong sum".into()),
                attempts: 1,
            },
            None,
            &[],
        );
        assert!(j.io_error().is_none());
        drop(j);

        // A second create must refuse the existing file.
        match SweepJournal::create(&path, spec, SizeClass::Test, &[2], 5, &sweep) {
            Err(ResumeError::Journal(JournalError::AlreadyExists { .. })) => {}
            other => panic!("expected AlreadyExists, got {other:?}"),
        }

        // Resume replays both points, typed and verbatim.
        let r = SweepJournal::resume(&path, spec, SizeClass::Test, &[2], 5, &sweep).unwrap();
        assert_eq!(r.replayed(), 2);
        assert_eq!(r.repaired_bytes(), 0);
        let (outcome, metrics, telemetry) = r.lookup(Machine::Pram, 2).unwrap();
        assert!(outcome.is_ok());
        assert_eq!(metrics.unwrap().events, 9001);
        assert_eq!(telemetry, sample_telemetry());
        let (outcome, metrics, telemetry) = r.lookup(Machine::Target, 2).unwrap();
        assert!(metrics.is_none());
        assert!(telemetry.is_empty());
        match outcome {
            Outcome::Failed { error, attempts } => {
                assert_eq!(error.to_string(), "verification failed: wrong sum");
                assert!(matches!(error, ExperimentError::Replayed(_)));
                assert_eq!(attempts, 1);
            }
            Outcome::Ok => panic!("expected Failed"),
        }
        assert!(r.lookup(Machine::LogP, 2).is_none());

        // Resume under a different seed must refuse the journal.
        match SweepJournal::resume(&path, spec, SizeClass::Test, &[2], 6, &sweep) {
            Err(e) => assert!(e.is_fingerprint_mismatch(), "{e}"),
            Ok(_) => panic!("fingerprint mismatch accepted"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_of_a_missing_path_is_a_clean_start() {
        let spec = figures::by_id("F12").unwrap();
        let path = scratch("resume-fresh");
        let j = SweepJournal::resume(
            &path,
            spec,
            SizeClass::Test,
            &[2],
            5,
            &SweepConfig::default(),
        )
        .unwrap();
        assert_eq!(j.replayed(), 0);
        assert!(
            path.exists(),
            "resume-of-nothing must still create the file"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
