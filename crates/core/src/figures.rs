//! Declarative specifications of every figure in the paper's evaluation.
//!
//! Each [`FigureSpec`] names the application, network, metric, and machine
//! series of one figure; [`crate::sweep::run_figure`] executes the
//! processor sweep. The qualitative expectation recorded in `expect` is
//! what EXPERIMENTS.md checks the reproduction against.

use spasm_apps::AppId;

use crate::{Machine, Net};

/// Which quantity a figure plots against processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Mean per-processor latency overhead (µs).
    Latency,
    /// Mean per-processor contention overhead (µs).
    Contention,
    /// Total execution time (µs).
    ExecTime,
    /// Host wall-clock simulation time (ms) — §7 "Speed of Simulation".
    SimSpeed,
    /// Simulator events processed.
    Events,
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Metric::Latency => "latency (us)",
            Metric::Contention => "contention (us)",
            Metric::ExecTime => "execution time (us)",
            Metric::SimSpeed => "simulation wall time (ms)",
            Metric::Events => "simulator events",
        };
        f.write_str(s)
    }
}

/// One figure of the evaluation section.
#[derive(Debug, Clone, Copy)]
pub struct FigureSpec {
    /// Identifier: "F1".."F20", "S1", "A1".
    pub id: &'static str,
    /// Application under test.
    pub app: AppId,
    /// Interconnect.
    pub net: Net,
    /// Plotted metric.
    pub metric: Metric,
    /// One simulated series per machine.
    pub machines: &'static [Machine],
    /// The paper's qualitative claim about this figure.
    pub expect: &'static str,
}

/// The three main-series machines.
const TLC: &[Machine] = &[Machine::Target, Machine::LogP, Machine::CLogP];
/// Target vs the abstractions' contention (LogP included to expose the
/// cache-less blow-up on the dynamic apps, as in Figures 19/20).
const TC: &[Machine] = &[Machine::Target, Machine::CLogP];
const TCL: &[Machine] = &[Machine::Target, Machine::CLogP, Machine::LogP];
/// A1 ablation series.
const GAP_ABLATION: &[Machine] = &[Machine::Target, Machine::CLogP, Machine::CLogPPerEventGap];

/// Every table/figure of the evaluation, in paper order.
pub const FIGURES: &[FigureSpec] = &[
    FigureSpec {
        id: "F1",
        app: AppId::Fft,
        net: Net::Full,
        metric: Metric::Latency,
        machines: TLC,
        expect: "CLogP tracks target; LogP ~4x higher (spatial locality lost)",
    },
    FigureSpec {
        id: "F2",
        app: AppId::Cg,
        net: Net::Full,
        metric: Metric::Latency,
        machines: TLC,
        expect: "CLogP slightly pessimistic vs target; LogP far higher",
    },
    FigureSpec {
        id: "F3",
        app: AppId::Ep,
        net: Net::Full,
        metric: Metric::Latency,
        machines: TLC,
        expect: "LogP much higher (condition-variable polling); CLogP ~ target",
    },
    FigureSpec {
        id: "F4",
        app: AppId::Is,
        net: Net::Full,
        metric: Metric::Latency,
        machines: TLC,
        expect: "CLogP slightly optimistic (coherence traffic unmodeled)",
    },
    FigureSpec {
        id: "F5",
        app: AppId::Cholesky,
        net: Net::Full,
        metric: Metric::Latency,
        machines: TLC,
        expect: "CLogP slightly optimistic, same trend as target",
    },
    FigureSpec {
        id: "F6",
        app: AppId::Is,
        net: Net::Full,
        metric: Metric::Contention,
        machines: TC,
        expect: "CLogP (g-model) pessimistic vs target, same trend",
    },
    FigureSpec {
        id: "F7",
        app: AppId::Is,
        net: Net::Mesh,
        metric: Metric::Contention,
        machines: TC,
        expect: "pessimism amplified on the lower-connectivity mesh",
    },
    FigureSpec {
        id: "F8",
        app: AppId::Fft,
        net: Net::Cube,
        metric: Metric::Contention,
        machines: TC,
        expect: "g-model pessimistic; see A1 for the per-event-type fix",
    },
    FigureSpec {
        id: "F9",
        app: AppId::Cholesky,
        net: Net::Full,
        metric: Metric::Contention,
        machines: TC,
        expect: "pessimistic, same trend",
    },
    FigureSpec {
        id: "F10",
        app: AppId::Ep,
        net: Net::Full,
        metric: Metric::Contention,
        machines: TC,
        expect: "amplified pessimism; trend differs from target",
    },
    FigureSpec {
        id: "F11",
        app: AppId::Ep,
        net: Net::Mesh,
        metric: Metric::Contention,
        machines: TC,
        expect: "worst case: g-model contention shape departs from target",
    },
    FigureSpec {
        id: "F12",
        app: AppId::Ep,
        net: Net::Full,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "all three agree (computation dominates)",
    },
    FigureSpec {
        id: "F13",
        app: AppId::Fft,
        net: Net::Mesh,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "LogP diverges on the mesh; CLogP ~ target",
    },
    FigureSpec {
        id: "F14",
        app: AppId::Is,
        net: Net::Full,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "LogP clearly above; CLogP ~ target",
    },
    FigureSpec {
        id: "F15",
        app: AppId::Cg,
        net: Net::Full,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "LogP far above; CLogP ~ target",
    },
    FigureSpec {
        id: "F16",
        app: AppId::Cholesky,
        net: Net::Full,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "LogP far above; CLogP ~ target",
    },
    FigureSpec {
        id: "F17",
        app: AppId::Cg,
        net: Net::Mesh,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "LogP execution shape departs from target on the mesh",
    },
    FigureSpec {
        id: "F18",
        app: AppId::Cholesky,
        net: Net::Mesh,
        metric: Metric::ExecTime,
        machines: TLC,
        expect: "LogP execution shape departs from target on the mesh",
    },
    FigureSpec {
        id: "F19",
        app: AppId::Cg,
        net: Net::Mesh,
        metric: Metric::Contention,
        machines: TCL,
        expect: "LogP contention explodes (no cache, low connectivity)",
    },
    FigureSpec {
        id: "F20",
        app: AppId::Cholesky,
        net: Net::Mesh,
        metric: Metric::Contention,
        machines: TCL,
        expect: "LogP contention explodes",
    },
    FigureSpec {
        id: "S1",
        app: AppId::Cholesky,
        net: Net::Full,
        metric: Metric::SimSpeed,
        machines: TLC,
        expect: "CLogP simulates ~25-30% faster than target; LogP slower than target",
    },
    FigureSpec {
        id: "A1",
        app: AppId::Fft,
        net: Net::Cube,
        metric: Metric::Contention,
        machines: GAP_ABLATION,
        expect: "per-event-type gap contention much closer to the target",
    },
];

/// Looks up a figure by id (case-insensitive).
pub fn by_id(id: &str) -> Option<&'static FigureSpec> {
    FIGURES.iter().find(|f| f.id.eq_ignore_ascii_case(id))
}

/// The default processor sweep: the paper restricts processor counts to
/// powers of two and reports up to 32.
pub const PROC_SWEEP: &[usize] = &[2, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_specs_with_unique_ids() {
        assert_eq!(FIGURES.len(), 22);
        let mut ids: Vec<&str> = FIGURES.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 22);
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(by_id("f8").unwrap().id, "F8");
        assert_eq!(by_id("A1").unwrap().metric, Metric::Contention);
        assert!(by_id("F99").is_none());
    }

    #[test]
    fn every_app_and_net_appears() {
        for app in AppId::ALL {
            assert!(FIGURES.iter().any(|f| f.app == app), "{app} missing");
        }
        for net in Net::ALL {
            assert!(FIGURES.iter().any(|f| f.net == net), "{net} missing");
        }
    }

    #[test]
    fn latency_figures_cover_all_five_apps_on_full() {
        let latency_apps: Vec<AppId> = FIGURES
            .iter()
            .filter(|f| f.metric == Metric::Latency && f.net == Net::Full)
            .map(|f| f.app)
            .collect();
        assert_eq!(latency_apps.len(), 5);
    }
}
