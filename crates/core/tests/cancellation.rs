//! Cancellation under speculation: aborting an optimistic run — at any
//! poll point, including mid-rollback — must be clean. Clean means a
//! typed [`RunError::Cancelled`], no panic, and *nothing from
//! uncommitted history becoming durable*: a cancelled point never
//! reaches the sweep journal, so a later resume re-runs it from scratch
//! and converges on the same bytes as an uninterrupted sweep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spasm_apps::SizeClass;
use spasm_core::journal::SweepJournal;
use spasm_core::sweep::{run_figure_journaled, run_figure_with, SweepConfig};
use spasm_core::{figures, Machine};
use spasm_machine::{CheckMode, Engine, EngineMode, MemCtx, ProcBody, RunError, SetupCtx};
use spasm_topology::Topology;

/// The rollback-heavy schedule from the equivalence suite: two
/// processors race bare `fetch_add`s on a word homed at node 0, so the
/// remote RMW's dispatch-to-commit window keeps swallowing the local
/// one's commit.
fn straggler_bodies(counter: spasm_machine::Addr) -> Vec<ProcBody> {
    (0..2)
        .map(|_| {
            let b: ProcBody = Box::new(move |_, ctx| {
                let mem = MemCtx::new(ctx);
                for _ in 0..30 {
                    mem.fetch_add(counter, 1);
                    mem.compute(5);
                }
            });
            b
        })
        .collect()
}

fn straggler_engine() -> Engine {
    let topo = Topology::full(2);
    let mut setup = SetupCtx::new(2);
    let counter = setup.alloc(0, 1);
    let mut config = Machine::CLogP.config();
    config.engine = EngineMode::Optimistic { workers: 4 };
    config.check = CheckMode::Strict;
    let mut eng = Engine::with_config(
        spasm_machine::MachineKind::CLogP,
        &topo,
        config,
        setup,
        straggler_bodies(counter),
    );
    eng.set_body_factory(Box::new(move |proc| {
        straggler_bodies(counter)
            .into_iter()
            .nth(proc)
            .expect("two bodies")
    }));
    eng
}

/// Exhaustive kill sweep: count how many times an uncancelled run polls
/// the probe (the poll sites include one *before every rollback*), then
/// re-run the identical schedule killing it at each poll index in turn.
/// Every kill — including the ones landing exactly on the mid-rollback
/// polls — must surface as a typed `Cancelled`, never a panic, hang, or
/// silently completed run.
#[test]
fn killing_an_optimistic_run_at_every_poll_point_aborts_cleanly() {
    // Pass 1: count polls without cancelling; prove the schedule rolls
    // back so the sweep below necessarily covers mid-rollback polls.
    let polls = Arc::new(AtomicU64::new(0));
    let mut eng = straggler_engine();
    let seen = Arc::clone(&polls);
    eng.set_cancel_probe(Box::new(move |/* poll */| {
        seen.fetch_add(1, Ordering::Relaxed);
        false
    }));
    let report = eng.run().expect("uncancelled run completes");
    let total_polls = polls.load(Ordering::Relaxed);
    assert!(
        report.spec.rollbacks > 0,
        "schedule must roll back so the kill sweep reaches mid-rollback polls"
    );
    assert!(
        total_polls >= report.spec.rollbacks,
        "every rollback polls the probe first"
    );

    // Pass 2: kill at each poll index.
    for kill_at in 1..=total_polls {
        let mut eng = straggler_engine();
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        eng.set_cancel_probe(Box::new(move || {
            seen.fetch_add(1, Ordering::Relaxed) + 1 >= kill_at
        }));
        match eng.run() {
            Err(RunError::Cancelled { .. }) => {}
            other => {
                panic!("kill at poll {kill_at}/{total_polls}: expected Cancelled, got {other:?}")
            }
        }
    }
}

/// The durability half of the contract, through the public sweep path:
/// a zero deadline cancels every point of an optimistic journaled sweep
/// mid-speculation, the journal must end *empty* — an aborted run's
/// uncommitted history is not a verdict — and resuming that journal
/// without the deadline converges byte-for-byte on an uninterrupted
/// sweep's output.
#[test]
fn cancelled_points_never_reach_the_journal() {
    let spec = figures::by_id("F1").expect("F1 exists");
    let procs = [8usize];
    let seed = 1995;
    let sweep = SweepConfig {
        engine: EngineMode::Optimistic { workers: 4 },
        ..SweepConfig::default()
    };

    let dir = std::env::temp_dir().join("spasm-cancel-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-cancel.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Pass 1: every point is expired by the watchdog the moment it
    // starts running (the deadline is a scheduling knob — it stays out
    // of the journal fingerprint, so pass 2 can drop it).
    let doomed = SweepConfig {
        deadline: Some(Duration::ZERO),
        ..sweep
    };
    let j = SweepJournal::create(&path, spec, SizeClass::Small, &procs, seed, &doomed).unwrap();
    let data = run_figure_journaled(spec, SizeClass::Small, &procs, seed, doomed, &j, |_| {});
    assert!(j.io_error().is_none());
    assert_eq!(
        data.failed_points(),
        spec.machines.len(),
        "a zero deadline must cancel every point mid-run"
    );
    drop(j);

    // The journal recorded nothing from the aborted speculation.
    let resumed =
        SweepJournal::resume(&path, spec, SizeClass::Small, &procs, seed, &sweep).unwrap();
    assert_eq!(
        resumed.replayed(),
        0,
        "cancelled points leaked uncommitted history into the journal"
    );

    // Pass 2: resume without the deadline; the re-run must match an
    // uninterrupted sweep exactly.
    let clean = run_figure_with(spec, SizeClass::Small, &procs, seed, sweep);
    let recovered = run_figure_journaled(
        spec,
        SizeClass::Small,
        &procs,
        seed,
        sweep,
        &resumed,
        |_| {},
    );
    assert_eq!(recovered.failed_points(), 0);
    assert_eq!(recovered.to_csv(), clean.to_csv(), "recovery diverged");
    std::fs::remove_file(&path).unwrap();
}
