//! Differential certification of the optimistic (Time Warp) engine.
//!
//! The optimistic engine's contract is *bit-identical output*: for every
//! application × machine × fault-plan cell, the `RunReport` — simulated
//! times, per-processor buckets, event counts, traffic summaries, final
//! memory, fault counters, interval telemetry — must equal the
//! sequential engine's byte for byte. Equivalence is proven here, not
//! assumed: the full matrix runs on both engines and the reports are
//! compared field by field (only host wall time and the speculation
//! counters, which are execution metadata, are excluded).

use spasm_apps::{AppId, SizeClass};
use spasm_core::sweep::{run_figure_with, SweepConfig};
use spasm_core::{figures, Machine};
use spasm_machine::{
    CheckMode, Engine, EngineMode, FaultPlan, MemCtx, ProcBody, RunReport, SetupCtx,
    TelemetryConfig,
};
use spasm_topology::Topology;

/// The four machine characterizations of the paper (the A1 variant is
/// exercised by the ablation suite, not the equivalence matrix).
const MACHINES: [Machine; 4] = [
    Machine::Pram,
    Machine::Target,
    Machine::LogP,
    Machine::CLogP,
];

/// Processor counts swept per cell.
const PROCS: [usize; 4] = [1, 2, 4, 8];

/// Fault streams per cell: a healthy run plus two adversarial seeds.
const FAULT_SEEDS: [Option<u64>; 3] = [None, Some(11), Some(29)];

/// Everything in a [`RunReport`] that both engines must reproduce
/// bit-identically, rendered through the fields' `Debug` forms (exact —
/// `SimTime` is integral nanoseconds and the f64s print with full
/// roundtrip precision under `{:?}`). Host wall time and the speculation
/// counters are execution metadata and deliberately absent.
fn report_digest(r: &RunReport) -> String {
    format!(
        "kind={:?} exec={:?} per_proc={:?} totals={:?} events={} summary={:?} \
         regions={:?} faults={:?} telemetry={:?} store={:?}",
        r.kind,
        r.exec_time,
        r.per_proc,
        r.totals,
        r.events,
        r.summary,
        r.region_traffic,
        r.faults,
        r.telemetry,
        r.final_store,
    )
}

/// Runs one cell of the matrix and returns its report. Mirrors the
/// experiment layer's setup (builder, engine, body factory) without the
/// metric extraction, so the test can compare whole reports.
fn run_cell(
    app: AppId,
    machine: Machine,
    procs: usize,
    seed: u64,
    faults: Option<u64>,
    engine: EngineMode,
) -> RunReport {
    let topo = Topology::try_of_kind(spasm_topology::TopologyKind::Hypercube, procs)
        .expect("power-of-two processor counts");
    let mut config = machine.config();
    config.engine = engine;
    config.telemetry = Some(TelemetryConfig::every_us(50));
    config.faults = faults.map(FaultPlan::adversarial);
    // Strict checking on healthy runs certifies the speculation ledger
    // exactly; injected faults are credited only leniently, so faulted
    // cells run the lenient checker.
    config.check = if faults.is_some() {
        CheckMode::On
    } else {
        CheckMode::Strict
    };
    let mut setup = SetupCtx::new(procs);
    let built = app.instantiate(SizeClass::Test).build(&mut setup, seed);
    let mut eng = Engine::with_config(machine.kind(), &topo, config, setup, built.bodies);
    if engine != EngineMode::Sequential {
        eng.set_body_factory(Box::new(move |proc| {
            let mut s = SetupCtx::new(procs);
            let built = app.instantiate(SizeClass::Test).build(&mut s, seed);
            built
                .bodies
                .into_iter()
                .nth(proc)
                .expect("factory proc within range")
        }));
    }
    let report = eng
        .run()
        .unwrap_or_else(|e| panic!("{app} {machine} p={procs} faults={faults:?} {engine}: {e}"));
    (built.verify)(&report.final_store)
        .unwrap_or_else(|e| panic!("{app} {machine} p={procs} {engine}: verify: {e}"));
    report
}

/// The tentpole acceptance bar: every app × machine × procs × fault-plan
/// cell produces a byte-identical report on both engines, and the
/// optimistic engine demonstrably speculates (and rolls back) somewhere
/// in the matrix rather than degenerating to sequential execution.
#[test]
fn full_matrix_is_bit_identical_across_engines() {
    let mut cells = 0u64;
    let mut speculated = 0u64;
    let mut rollbacks = 0u64;
    for app in AppId::ALL {
        for machine in MACHINES {
            for procs in PROCS {
                for faults in FAULT_SEEDS {
                    let seq = run_cell(app, machine, procs, 1995, faults, EngineMode::Sequential);
                    let opt = run_cell(
                        app,
                        machine,
                        procs,
                        1995,
                        faults,
                        EngineMode::Optimistic { workers: 4 },
                    );
                    assert_eq!(
                        report_digest(&seq),
                        report_digest(&opt),
                        "{app} {machine} p={procs} faults={faults:?}: engines diverged"
                    );
                    assert_eq!(seq.spec.spec_resumes, 0, "sequential engine speculated");
                    cells += 1;
                    speculated += opt.spec.spec_resumes;
                    rollbacks += opt.spec.rollbacks;
                }
            }
        }
    }
    assert_eq!(cells, 240, "the matrix shrank; the certificate is weaker");
    assert!(
        speculated > 0,
        "no cell speculated: the optimistic engine degenerated to sequential"
    );
    assert!(
        rollbacks > 0,
        "no cell rolled back: mis-speculation recovery is untested by the matrix"
    );
}

/// An adversarial straggler schedule that *provably* triggers rollback:
/// two processors race bare `fetch_add`s on one shared word with no lock
/// between them. Each RMW's prediction samples memory at dispatch, but
/// the word is homed at node 0, so the remote processor's RMW spans a
/// full round trip — a window the local processor's RMW commits inside
/// again and again. The speculated value is stale, the commit refutes
/// it, and the engine must annihilate and replay. The increments are
/// commutative, so the committed result — and the whole report — stays
/// bit-identical to the sequential engine.
#[test]
fn straggler_write_forces_rollback_with_identical_results() {
    fn bodies(counter: spasm_machine::Addr) -> Vec<ProcBody> {
        (0..2)
            .map(|_| {
                let b: ProcBody = Box::new(move |_, ctx| {
                    let mem = MemCtx::new(ctx);
                    for _ in 0..30 {
                        mem.fetch_add(counter, 1);
                        mem.compute(5);
                    }
                });
                b
            })
            .collect()
    }

    let run = |engine: EngineMode| -> RunReport {
        let topo = Topology::full(2);
        let mut setup = SetupCtx::new(2);
        let counter = setup.alloc(0, 1);
        let mut config = Machine::CLogP.config();
        config.engine = engine;
        config.check = CheckMode::Strict;
        let mut eng = Engine::with_config(
            spasm_machine::MachineKind::CLogP,
            &topo,
            config,
            setup,
            bodies(counter),
        );
        if engine != EngineMode::Sequential {
            eng.set_body_factory(Box::new(move |proc| {
                bodies(counter).into_iter().nth(proc).expect("two bodies")
            }));
        }
        let r = eng.run().expect("straggler schedule completes");
        assert_eq!(r.final_store.read_word(counter), 60, "lost increment");
        r
    };

    let seq = run(EngineMode::Sequential);
    let opt = run(EngineMode::Optimistic { workers: 4 });
    assert!(
        opt.spec.rollbacks > 0,
        "the contended lock must refute at least one speculated RMW \
         (got {} speculations, {} rollbacks)",
        opt.spec.spec_resumes,
        opt.spec.rollbacks
    );
    assert_eq!(
        opt.spec.annihilated, opt.spec.rollbacks,
        "every rollback must annihilate exactly one speculation"
    );
    assert_eq!(
        report_digest(&seq),
        report_digest(&opt),
        "rollback recovery perturbed committed state"
    );
}

/// The sweep layer built on top inherits the equivalence: a whole figure
/// swept under `SweepConfig::engine = optimistic` renders byte-identical
/// CSV and telemetry JSONL to the sequential sweep.
#[test]
fn figure_sweep_output_is_byte_identical_across_engines() {
    let spec = figures::by_id("F1").expect("F1 exists");
    let sweep = |engine| SweepConfig {
        engine,
        telemetry: Some(TelemetryConfig::every_us(100)),
        check: CheckMode::Strict,
        ..SweepConfig::default()
    };
    let seq = run_figure_with(
        spec,
        SizeClass::Test,
        &[1, 2, 4],
        1995,
        sweep(EngineMode::Sequential),
    );
    let opt = run_figure_with(
        spec,
        SizeClass::Test,
        &[1, 2, 4],
        1995,
        sweep(EngineMode::Optimistic { workers: 4 }),
    );
    assert_eq!(seq.failed_points(), 0);
    assert_eq!(opt.failed_points(), 0);
    assert_eq!(seq.to_csv(), opt.to_csv(), "CSV diverged across engines");
    assert_eq!(
        seq.to_telemetry_jsonl(),
        opt.to_telemetry_jsonl(),
        "telemetry JSONL diverged across engines"
    );
    assert_eq!(
        seq.render_table(),
        opt.render_table(),
        "rendered table diverged across engines"
    );
}

/// Diagnostic probe (run with `--ignored --nocapture`): prints which
/// cells of the matrix actually roll back.
#[test]
#[ignore]
fn probe_rollback_cells() {
    for app in AppId::ALL {
        for machine in MACHINES {
            for procs in PROCS {
                for faults in FAULT_SEEDS {
                    let opt = run_cell(
                        app,
                        machine,
                        procs,
                        1995,
                        faults,
                        EngineMode::Optimistic { workers: 4 },
                    );
                    if opt.spec.rollbacks > 0 {
                        println!(
                            "{app} {machine} p={procs} faults={faults:?}: \
                             spec={} hits={} rollbacks={}",
                            opt.spec.spec_resumes, opt.spec.spec_hits, opt.spec.rollbacks
                        );
                    }
                }
            }
        }
    }
}
